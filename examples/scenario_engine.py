"""Scenario engine demo: declarative grids, workers, and result caching.

Runs the ``snr-sweep`` scenario preset (BER vs operating SNR for ideal /
802.11 / SplitBeam feedback on dataset D1) through
``repro.runtime.ExperimentEngine`` twice, to show the two multipliers
the engine adds on top of the vectorized kernels:

- the first run executes every grid point (optionally on worker
  processes — results are bit-identical to serial execution);
- the second run serves every point from the content-addressed result
  cache and executes nothing.

Run:  python examples/scenario_engine.py
      REPRO_RUNTIME_WORKERS=4 python examples/scenario_engine.py
"""

import tempfile

from repro import SMOKE
from repro.runtime import ExperimentEngine, ResultCache, get_scenario
from repro.utils.tables import render_table


def main() -> None:
    # SMOKE keeps the demo in seconds; drop fidelity= for the real grid.
    scenario = get_scenario("snr-sweep", fidelity=SMOKE, dataset_id="D1")
    print(f"scenario {scenario.name!r}: {scenario.n_points} points")

    cache = ResultCache(tempfile.mkdtemp(prefix="repro-scenario-cache-"))
    engine = ExperimentEngine(cache=cache)  # workers: $REPRO_RUNTIME_WORKERS

    run = engine.run(scenario)
    print(
        f"cold run: executed {run.n_executed}/{run.n_tasks} points "
        f"with {run.n_workers} worker(s) in {run.wall_s:.2f} s"
    )

    warm = engine.run(scenario)
    print(
        f"warm run: executed {warm.n_executed}/{warm.n_tasks} points "
        f"(all {warm.n_cached} served from {cache.root}) in {warm.wall_s:.3f} s"
    )

    rows = [
        [entry["label"], entry["result"]["ber"], entry["result"]["feedback_bits"]]
        for entry in warm.points
    ]
    print()
    print(render_table(["point", "BER", "feedback bits"], rows,
                       title=scenario.title))
    print(
        "\nEvery point is a pure seeded task: re-runs, overlapping "
        "scenarios, and worker pools all reproduce these exact numbers "
        "(see docs/runtime.md)."
    )


if __name__ == "__main__":
    main()
