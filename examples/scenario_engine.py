"""Scenario engine demo: declarative grids, workers, and result caching.

Runs the ``snr-sweep`` scenario preset (BER vs operating SNR for ideal /
802.11 / SplitBeam feedback on dataset D1) through
``repro.runtime.ExperimentEngine`` twice, to show the two multipliers
the engine adds on top of the vectorized kernels:

- the first run executes every grid point (optionally on worker
  processes — results are bit-identical to serial execution);
- the second run serves every point from the content-addressed result
  cache and executes nothing.

With ``--trace DIR`` both runs record their span timelines and metrics
into ``DIR/cold`` and ``DIR/warm`` (``trace.jsonl`` +
``chrome_trace.json`` + ``summary.txt``), the run-health counters are
printed, and the cold run's trace report — critical path, slowest
tasks, cache statistics — is rendered inline.  Tracing never changes
result bytes (docs/observability.md).

Run:  python examples/scenario_engine.py
      REPRO_RUNTIME_WORKERS=4 python examples/scenario_engine.py
      python examples/scenario_engine.py --trace /tmp/engine-trace
"""

import argparse
import os
import tempfile

from repro import SMOKE
from repro.runtime import ExperimentEngine, ResultCache, get_scenario
from repro.utils.tables import render_table


def print_health(run, label: str) -> None:
    """One line per health family (executor retries, store quarantines)."""
    for family, counters in run.health.items():
        if not isinstance(counters, dict):
            continue
        interesting = {
            key: value for key, value in sorted(counters.items())
            if isinstance(value, (int, float)) and value
        }
        print(f"{label} health[{family}]: {interesting or 'clean'}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record cold/warm run traces under DIR and print the "
        "cold run's trace report",
    )
    args = parser.parse_args()

    # SMOKE keeps the demo in seconds; drop fidelity= for the real grid.
    scenario = get_scenario("snr-sweep", fidelity=SMOKE, dataset_id="D1")
    print(f"scenario {scenario.name!r}: {scenario.n_points} points")

    cache = ResultCache(tempfile.mkdtemp(prefix="repro-scenario-cache-"))

    def engine(trace_leg: str):
        trace = os.path.join(args.trace, trace_leg) if args.trace else False
        # workers: $REPRO_RUNTIME_WORKERS
        return ExperimentEngine(cache=cache, trace=trace)

    run = engine("cold").run(scenario)
    print(
        f"cold run: executed {run.n_executed}/{run.n_tasks} points "
        f"with {run.n_workers} worker(s) in {run.wall_s:.2f} s"
    )

    warm = engine("warm").run(scenario)
    print(
        f"warm run: executed {warm.n_executed}/{warm.n_tasks} points "
        f"(all {warm.n_cached} served from {cache.root}) in {warm.wall_s:.3f} s"
    )

    rows = [
        [entry["label"], entry["result"]["ber"], entry["result"]["feedback_bits"]]
        for entry in warm.points
    ]
    print()
    print(render_table(["point", "BER", "feedback bits"], rows,
                       title=scenario.title))

    if args.trace:
        from repro.obs import load_trace, render_report

        print()
        print_health(run, "cold")
        print_health(warm, "warm")
        print(f"\ntraces written: {run.trace_dir} and {warm.trace_dir}")
        print("cold-run trace report:\n")
        print(render_report(load_trace(run.trace_dir), top_k=5))

    print(
        "\nEvery point is a pure seeded task: re-runs, overlapping "
        "scenarios, and worker pools all reproduce these exact numbers "
        "(see docs/runtime.md)."
    )


if __name__ == "__main__":
    main()
