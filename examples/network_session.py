"""Network session: sounding, feedback, and goodput over time.

The system-level payoff of SplitBeam: an AP sounding a 2x2 MU-MIMO
group every 10 ms spends part of the medium on beamforming reports.
This example simulates ten sounding rounds twice — once with standard
802.11 feedback and once with a SplitBeam model ladder managed by the
adaptive controller — and compares BER, medium occupancy, and the
goodput left for data at the SINR-selected MCS.

Run:  python examples/network_session.py
"""

from repro import FAST, QosProfile, build_dataset, dataset_spec, train_zoo
from repro.core.session import NetworkSession
from repro.utils.tables import render_table

ROUNDS = 10


def main() -> None:
    spec = dataset_spec("D1")  # 2x2 @ 20 MHz in E1
    print(f"Building dataset {spec} ...")
    dataset = build_dataset(spec, fidelity=FAST, seed=7)

    print("Training the SplitBeam ladder (K = 1/8, 1/4) through repro.runtime ...")
    # The grid runs on the engine's executor ($REPRO_RUNTIME_WORKERS
    # fans it out) and the session deploys the zoo entries directly —
    # see examples/zoo_training.py for checkpoint-store warm rebuilds.
    result = train_zoo(
        "compression-ladder", fidelity=FAST, compressions=(1 / 8, 1 / 4)
    )
    zoo = result.zoo()
    for row in result.entries:
        print(f"  {row['label']}: measured BER {row['measured_ber']:.4f}")

    qos = QosProfile(max_ber=0.05, mu=0.6)
    sessions = {
        "802.11": NetworkSession(dataset, samples_per_round=6, seed=11),
        "SplitBeam": NetworkSession(
            dataset,
            zoo=zoo,
            qos=qos,
            samples_per_round=6,
            seed=11,
        ),
    }

    summary_rows = []
    reports = {}
    for name, session in sessions.items():
        report = session.run(ROUNDS)
        reports[name] = report
        print()
        print(
            render_table(
                ["round", "scheme", "fb bits", "BER", "MCS", "goodput Mb/s",
                 "action"],
                report.rows(),
                title=f"{name} session ({ROUNDS} sounding rounds @ 10 ms)",
            )
        )
        summary_rows.append(
            [
                name,
                report.mean_ber,
                f"{100 * report.mean_occupancy:.2f}%",
                report.mean_goodput_bps / 1e6,
            ]
        )

    print()
    print(
        render_table(
            ["session", "mean BER", "sounding occupancy", "mean goodput Mb/s"],
            summary_rows,
            title="Summary",
        )
    )
    saved = (
        reports["802.11"].mean_occupancy - reports["SplitBeam"].mean_occupancy
    )
    print(
        f"\nSplitBeam's compressed reports cut the sounding occupancy by "
        f"{100 * saved:.2f} percentage points.  At this small configuration "
        "(2x2, 20 MHz) the fixed NDPA/NDP/BRP overheads dominate and the "
        "DNN's slightly lower post-beamforming SINR can cost an MCS step, "
        "so 802.11 may still win on goodput; the airtime saving scales "
        "with antennas x subcarriers (Fig. 7) while the SINR gap shrinks "
        "with training budget — rerun with D10 (3x3 @ 80 MHz) and the "
        "'paper' fidelity to see the balance flip."
    )


if __name__ == "__main__":
    main()
