"""FPGA latency projections (paper Table III) plus custom architectures.

Prints the full Table III grid from the calibrated HLS latency model
(6.3 MACs/cycle @ 200 MHz, fitted to the paper's own numbers with < 3%
error) and then projects a few deeper Table II architectures to show how
depth trades latency.

Run:  python examples/fpga_latency_report.py
"""

from repro import SplitBeamNet, splitbeam_latency_s, table3_latency_s
from repro.utils.tables import render_table

PAPER_TABLE3_MS = {
    (2, 20): 0.0202, (2, 40): 0.0824, (2, 80): 0.3686, (2, 160): 1.477,
    (3, 20): 0.0459, (3, 40): 0.1867, (3, 80): 0.8337, (3, 160): 3.314,
    (4, 20): 0.0808, (4, 40): 0.3298, (4, 80): 1.4782, (4, 160): 5.883,
}


def main() -> None:
    rows = []
    for mimo in (2, 3, 4):
        for bw in (20, 40, 80, 160):
            ours_ms = table3_latency_s(mimo, bw) * 1e3
            paper_ms = PAPER_TABLE3_MS[(mimo, bw)]
            rows.append(
                [
                    f"{mimo}x{mimo}",
                    bw,
                    ours_ms,
                    paper_ms,
                    f"{100 * (ours_ms - paper_ms) / paper_ms:+.1f}%",
                ]
            )
    print(
        render_table(
            ["MIMO", "BW (MHz)", "model (ms)", "paper (ms)", "delta"],
            rows,
            title="Table III: SplitBeam latency vs MIMO dimensions and bandwidth",
        )
    )

    print("\nDeeper Table II architectures at 20 MHz (2x2):")
    arch_rows = []
    for widths in ([224, 28, 28, 224],
                   [224, 896, 1792, 1792, 896, 224],
                   [224, 896, 896, 448, 448, 224, 224]):
        model = SplitBeamNet(widths)
        arch_rows.append(
            [
                model.label(),
                model.bottleneck_dim,
                model.head_macs() + model.tail_macs(),
                splitbeam_latency_s(model) * 1e3,
            ]
        )
    print(
        render_table(
            ["architecture", "|B|", "MACs", "latency (ms)"], arch_rows
        )
    )
    print(
        "\nAll configurations stay well below the 10 ms MU-MIMO sounding "
        "budget; the worst case (4x4 @ 160 MHz) is ~6 ms as in the paper."
    )


if __name__ == "__main__":
    main()
