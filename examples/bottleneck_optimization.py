"""Solving the Bottleneck Optimization Problem for two device classes.

The BOP (paper Sec. IV-B/IV-C) picks the bottleneck size meeting an
application's BER ceiling and delay budget while minimizing a weighted
mix of STA overhead and feedback airtime.  This example runs the
heuristic twice on the same dataset:

- a *wearable* profile (mu = 0.9: STA energy dominates — accept larger
  feedback if it saves STA compute);
- a *dense-deployment* profile (mu = 0.1: airtime dominates — compress
  harder, spend STA cycles).

Run:  python examples/bottleneck_optimization.py
"""

from repro import FAST, BopConstraints, build_dataset, dataset_spec, solve_bop
from repro.errors import ConstraintViolation
from repro.utils.tables import render_table


def run_profile(dataset, label: str, constraints: BopConstraints) -> None:
    print(f"\n--- {label}: gamma={constraints.max_ber}, "
          f"tau={constraints.max_delay_s * 1e3:.0f} ms, mu={constraints.mu}")
    try:
        result = solve_bop(dataset, constraints, fidelity=FAST, seed=0)
    except ConstraintViolation as error:
        print(f"  infeasible: {error}")
        return
    rows = [
        [
            trial.label(),
            f"1/{round(1 / trial.compression)}",
            trial.ber,
            trial.delay_s * 1e3,
            trial.objective,
            "<- selected" if trial is result.selected else "",
        ]
        for trial in result.trials
    ]
    print(
        render_table(
            ["architecture", "K", "val BER", "delay (ms)", "Eq.(7a) obj", ""],
            rows,
        )
    )


def main() -> None:
    spec = dataset_spec("D2")  # 3x3 MU-MIMO at 20 MHz in E1
    print(f"Building dataset {spec} ...")
    dataset = build_dataset(spec, fidelity=FAST, seed=11)

    run_profile(
        dataset,
        "Wearable STA (compute-constrained)",
        BopConstraints(max_ber=0.08, max_delay_s=10e-3, mu=0.9),
    )
    run_profile(
        dataset,
        "Dense deployment (airtime-constrained)",
        BopConstraints(max_ber=0.04, max_delay_s=10e-3, mu=0.1),
    )
    print(
        "\nThe heuristic walks the compression ladder from the smallest "
        "bottleneck upward and stops at the first architecture meeting "
        "both constraints (Sec. IV-C)."
    )


if __name__ == "__main__":
    main()
