"""Zoo training demo: parallel grids, checkpoints, and warm rebuilds.

Builds the Fig. 1 ``ModelZoo`` — "SplitBeam is trained offline for
various network configurations" — through ``repro.runtime`` twice, to
show the two multipliers the zoo builder adds on top of the trainer:

- the first build trains every (configuration x compression) entry of
  the grid, optionally on worker processes (weights are bit-identical
  to serial training);
- the second build loads every model from the content-addressed
  checkpoint store and trains for zero epochs.

Run:  python examples/zoo_training.py
      REPRO_RUNTIME_WORKERS=4 python examples/zoo_training.py
      python examples/zoo_training.py --fidelity smoke   # CI-sized
"""

import argparse
import tempfile

from repro import fidelity as fidelity_preset
from repro.core.zoo_builder import train_zoo
from repro.runtime import CheckpointStore
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fidelity",
        default="fast",
        help="fidelity preset (smoke keeps the demo to a couple of seconds)",
    )
    parser.add_argument(
        "--compressions",
        default="1/8,1/4",
        help="comma-separated compression ladder, e.g. '1/16,1/8,1/4'",
    )
    args = parser.parse_args()
    fidelity = fidelity_preset(args.fidelity)

    def parse_compression(text: str) -> float:
        try:
            if "/" in text:
                numerator, denominator = text.split("/")
                return float(numerator) / float(denominator)
            return float(text)
        except (ValueError, ZeroDivisionError):
            parser.error(f"bad compression {text!r}; expected e.g. 1/8 or 0.125")

    compressions = tuple(
        parse_compression(k) for k in args.compressions.split(",")
    )

    store = CheckpointStore(tempfile.mkdtemp(prefix="repro-zoo-ckpt-"))
    print(
        f"Building the 'compression-ladder' grid on D1 "
        f"({len(compressions)} models, fidelity={fidelity.name}) ..."
    )
    cold = train_zoo(
        "compression-ladder",
        fidelity=fidelity,
        compressions=compressions,
        store=store,
    )
    print(
        f"cold build: trained {cold.n_trained}/{cold.n_entries} entries "
        f"with {cold.n_workers} worker(s) in {cold.wall_s:.2f} s"
    )

    warm = train_zoo(
        "compression-ladder",
        fidelity=fidelity,
        compressions=compressions,
        store=store,
    )
    print(
        f"warm build: trained {warm.n_trained}/{warm.n_entries} entries "
        f"(all {warm.n_cached} loaded from {store.root}) in {warm.wall_s:.2f} s"
    )
    assert warm.n_trained == 0, "warm rebuild must not spend an epoch"

    zoo = warm.zoo()
    rows = [
        [
            row["label"],
            warm.entry(row["label"]).model.label(),
            row["measured_ber"],
            warm.entry(row["label"]).feedback_bits,
            "checkpoint" if row["cached"] else "trained",
        ]
        for row in warm.entries
    ]
    print()
    print(
        render_table(
            ["entry", "architecture", "measured BER", "fb bits", "source"],
            rows,
            title=warm.title,
        )
    )
    config = zoo.configurations()[0]
    print(
        f"\nThe zoo serves {len(zoo)} models for {config.label()}; an AP "
        "ships it to STAs with zoo.save(dir), and a NetworkSession deploys "
        "it directly (see examples/network_session.py).  Checkpoint keys "
        "hash the dataset spec, architecture, training recipe, and source "
        "digest, so any library edit retrains while a grid tweak retrains "
        "only what changed (docs/runtime.md)."
    )


if __name__ == "__main__":
    main()
