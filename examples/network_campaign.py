"""Network campaign demo: heterogeneous STAs at scale on the runtime engine.

The paper's headline scenario (Sec. I + IV-B): an AP sounding many
heterogeneous STAs — different bandwidths, QoS profiles, device cost
models, Doppler spreads, and feedback schemes — every 10 ms, with each
SplitBeam STA's adaptive controller walking its compression ladder as
mobility episodes push the measured BER around.  The campaign runs
twice to show the caching contract: the cold run trains the ladders
and measures every STA-round; the warm run replays everything from the
content-addressed stores and executes zero link simulations.

With ``--chaos`` the campaign runs a third time on a fresh round cache
under an injected fault plan — worker hard-crashes, first-attempt task
errors, torn cache writes — and asserts the manifest is byte-identical
to the fault-free run: chaos costs retries, never bytes
(docs/runtime.md, "Fault tolerance").

With ``--trace DIR`` the cold campaign records its span timeline —
zoo training, STA-round dispatch, every worker-side task, store
get/put — into ``DIR`` (``trace.jsonl`` + ``chrome_trace.json`` +
``summary.txt``), the run-health counters are printed, and the trace
report (critical path, slowest rounds, cache statistics) is rendered
inline.  Tracing never changes manifest bytes (docs/observability.md).

Run:  python examples/network_campaign.py
      python examples/network_campaign.py --preset mobility-episodes
      REPRO_RUNTIME_WORKERS=4 python examples/network_campaign.py
      python examples/network_campaign.py --fidelity smoke --stas 6 --rounds 3
      python examples/network_campaign.py --fidelity smoke --stas 6 --rounds 3 --chaos
      python examples/network_campaign.py --fidelity smoke --trace /tmp/campaign-trace
"""

import argparse
import json
import shutil
import tempfile

from repro import fidelity as fidelity_preset
from repro.core.network import run_campaign
from repro.runtime import (
    CheckpointStore,
    ResultCache,
    campaign_names,
    parse_plan,
)
from repro.utils.tables import render_table

#: The ``--chaos`` fault schedule: one-shot worker crashes on 40% of
#: first rounds, a 30% first-attempt error rate, and torn writes on
#: half the cache entries — all recoverable within the default retry
#: budget.
CHAOS_PLAN = (
    "crash,*/round-0000,rate=0.4,count=1;"
    "error,*/round-*,rate=0.3,count=1;"
    "torn,cache:*,rate=0.5"
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset",
        default="network-scale",
        choices=campaign_names(),
        help="registered campaign preset to run",
    )
    parser.add_argument(
        "--fidelity",
        default="fast",
        help="fidelity preset (smoke keeps the demo to a few seconds)",
    )
    parser.add_argument(
        "--stas", type=int, default=None, help="override the STA count"
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="override the round count"
    )
    parser.add_argument(
        "--gamma-scale",
        type=float,
        default=None,
        help="loosen every QoS tier's BER ceiling by this factor "
        "(network-scale only; smoke-fidelity models need ~10x to stay "
        "selectable)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="re-run the campaign under an injected fault plan (worker "
        "crashes, task errors, torn cache writes) and assert the "
        "manifest is byte-identical to the fault-free run",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record the cold campaign's trace under DIR and print "
        "the run-health counters plus the trace report",
    )
    args = parser.parse_args()
    fidelity = fidelity_preset(args.fidelity)

    overrides = {}
    if args.stas is not None:
        overrides["n_stas"] = args.stas
    if args.rounds is not None:
        overrides["n_rounds"] = args.rounds
    if args.gamma_scale is not None:
        if args.preset != "network-scale":
            parser.error(
                f"--gamma-scale applies to the network-scale preset only; "
                f"{args.preset!r} has no QoS-tier scaling override"
            )
        overrides["gamma_scale"] = args.gamma_scale

    workdir = tempfile.mkdtemp(prefix="repro-campaign-")
    cache = ResultCache(f"{workdir}/rounds")
    store = CheckpointStore(f"{workdir}/checkpoints")

    try:
        cold = demo(args, fidelity, overrides, cache, store)
        if args.chaos:
            chaos_demo(
                args,
                fidelity,
                overrides,
                cold,
                ResultCache(f"{workdir}/rounds-chaos"),
                store,
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def chaos_demo(args, fidelity, overrides, cold, cache, store) -> None:
    print(f"\nchaos run: injecting '{CHAOS_PLAN}' ...")
    chaotic = run_campaign(
        args.preset,
        fidelity=fidelity,
        cache=cache,
        store=store,
        n_workers=2,
        faults=parse_plan(CHAOS_PLAN),
        **overrides,
    )
    executor = chaotic.health["executor"]
    print(
        f"chaos run: {executor['injected_faults']} injected fault(s), "
        f"{executor['worker_crashes']} worker crash(es), "
        f"{executor['retries']} retrie(s), "
        f"{executor['pool_rebuilds']} pool rebuild(s) in "
        f"{chaotic.wall_s:.2f} s"
    )
    clean_bytes = json.dumps(cold.to_dict(), sort_keys=True)
    chaos_bytes = json.dumps(chaotic.to_dict(), sort_keys=True)
    assert chaos_bytes == clean_bytes, "chaos changed the manifest bytes"
    assert not chaotic.summary["partial_coverage"], (
        "chaos run should recover every STA within the retry budget"
    )
    print(
        "chaos run: manifest is byte-identical to the fault-free run — "
        "chaos cost retries, never bytes."
    )


def print_health(result, label: str) -> None:
    """One line per health family (executor retries, store quarantines)."""
    for family, counters in (result.health or {}).items():
        if not isinstance(counters, dict):
            continue
        interesting = {
            key: value for key, value in sorted(counters.items())
            if isinstance(value, (int, float)) and value
        }
        print(f"{label} health[{family}]: {interesting or 'clean'}")


def demo(args, fidelity, overrides, cache, store):
    print(f"Running campaign preset {args.preset!r} (fidelity={fidelity.name}) ...")
    cold = run_campaign(
        args.preset,
        fidelity=fidelity,
        cache=cache,
        store=store,
        trace=args.trace if args.trace else False,
        **overrides,
    )
    print(
        f"cold run: trained {cold.zoo_trained} ladder model(s), executed "
        f"{cold.n_executed_rounds} STA-rounds with {cold.n_workers} "
        f"worker(s) in {cold.wall_s:.2f} s"
    )

    warm = run_campaign(
        args.preset, fidelity=fidelity, cache=cache, store=store, **overrides
    )
    print(
        f"warm run: executed {warm.n_executed_rounds} STA-rounds "
        f"({warm.n_cached_rounds} replayed from {cache.root}) in "
        f"{warm.wall_s:.2f} s"
    )
    assert warm.n_executed_rounds == 0, "warm re-run must not simulate a link"

    sta_rows = [
        [
            row["name"],
            row["config"],
            row["mode"],
            row["summary"]["mean_ber"],
            int(row["summary"]["mean_feedback_bits"]),
            row["summary"]["qos_violations"],
            row["summary"]["saturated"],
            "/".join(
                f"{row['summary'][key]}" for key in ("step_downs", "step_ups")
            ),
        ]
        for row in warm.stas
    ]
    print()
    print(
        render_table(
            ["STA", "config", "mode", "mean BER", "fb bits", "γ viol",
             "saturated", "down/up"],
            sta_rows,
            title=warm.title,
        )
    )

    round_rows = [
        [
            row["round"] + 1,
            f"{100 * row['occupancy']:.1f}%",
            f"{row['occupancy_ratio']:.3f}",
            "yes" if row["feasible"] else "NO",
            row["goodput_bps"] / 1e6,
        ]
        for row in warm.rounds
    ]
    print()
    print(
        render_table(
            ["round", "occupancy", "raw ratio", "fits 10 ms", "goodput Mb/s"],
            round_rows,
            title="Aggregate sounding cost per round",
        )
    )

    if args.trace:
        from repro.obs import load_trace, render_report

        print()
        print_health(cold, "cold")
        print(f"\ntrace written: {cold.trace_dir}")
        print("trace report:\n")
        print(render_report(load_trace(cold.trace_dir), top_k=5))

    summary = warm.summary
    print(
        f"\n{summary['n_stas']} STAs, {summary['n_rounds']} rounds: modes "
        f"{summary['modes']}, mean occupancy "
        f"{100 * summary['mean_occupancy']:.1f}% (max raw ratio "
        f"{summary['max_occupancy_ratio']:.3f}), "
        f"{summary['hard_qos_failures']} hard QoS failure(s), "
        f"{summary['deadline_misses']} deadline miss(es).  Manifests are "
        "byte-identical for any worker count, and warm re-runs replay "
        "entirely from the content-addressed caches (docs/runtime.md)."
    )
    return cold


if __name__ == "__main__":
    main()
