"""Adaptive feedback: a model zoo plus a runtime compression controller.

Reproduces the deployment story of Fig. 1 ("online utilization"):

1. train a ladder of SplitBeam models at several compression levels for
   one network configuration (offline);
2. publish them in a :class:`ModelZoo`, the catalog STAs consult when an
   NDP preamble announces the configuration;
3. let a QoS-aware selector pick the cheapest model meeting a BER
   ceiling and a 10 ms delay budget (Eq. (7));
4. drive an :class:`AdaptiveCompressionController` with *measured* BER
   from the link simulator while the propagation environment changes
   under its feet (E1 -> E2), and watch it walk the compression ladder.

Run:  python examples/adaptive_feedback.py
"""

import numpy as np

from repro import (
    FAST,
    BottleneckQuantizer,
    LinkConfig,
    LinkSimulator,
    QosProfile,
    build_dataset,
    dataset_spec,
    train_zoo,
)
from repro.core.adaptive import AdaptiveCompressionController, select_model
from repro.core.training import predict_bf
from repro.core.zoo import NetworkConfiguration
from repro.utils.tables import render_table

COMPRESSIONS = (1 / 16, 1 / 8, 1 / 4)
QOS = QosProfile(max_ber=0.045, max_delay_s=10e-3, mu=0.7)


def main() -> None:
    spec = dataset_spec("D1")  # 2x2, 20 MHz, E1
    print(f"Building dataset {spec} ...")
    dataset = build_dataset(spec, fidelity=FAST, seed=7)

    print("Training the compression ladder (offline phase, repro.runtime) ...")
    result = train_zoo(
        "compression-ladder",
        fidelity=FAST,
        compressions=COMPRESSIONS,
        train_seed=1,
    )
    zoo = result.zoo()
    quantizer_by_b = {
        entry.model.bottleneck_dim: BottleneckQuantizer(entry.quantizer_bits)
        for entry in (result.entry(label) for label in result.labels())
    }
    for label in result.labels():
        entry = result.entry(label)
        print(
            f"  {entry.notes:<7} {entry.model.label():>16} | "
            f"measured BER {entry.measured_ber:.4f} | "
            f"feedback {entry.feedback_bits} bits"
        )

    config = NetworkConfiguration(
        n_tx=spec.n_tx, n_rx=spec.n_rx, bandwidth_mhz=spec.bandwidth_mhz
    )
    print(f"\nQoS: BER <= {QOS.max_ber}, delay < {QOS.max_delay_s * 1e3:.0f} ms, "
          f"mu = {QOS.mu} (STA-overhead-weighted)")
    outcome = select_model(zoo, config, QOS)
    print(outcome.explain())
    if outcome.fell_back:
        print("Selector found no feasible model; stopping.")
        return

    print("\nOnline phase: environment drifts E1 -> E2 after round 5.")
    controller = AdaptiveCompressionController(
        zoo.candidates(config), QOS, patience=2
    )
    drifted = build_dataset(dataset_spec("D3"), fidelity=FAST, seed=8)  # E2
    simulator = LinkSimulator(LinkConfig(snr_db=20.0, seed=3))

    rows = []
    rng = np.random.default_rng(0)
    for round_index in range(10):
        active = dataset if round_index < 5 else drifted
        entry = controller.current
        indices = rng.choice(active.splits.test, size=8, replace=False)
        bf = predict_bf(
            entry.model,
            active,
            indices,
            quantizer=quantizer_by_b[entry.model.bottleneck_dim],
        )
        ber = simulator.measure_ber(active.link_channels(indices), bf).ber
        controller.observe(ber)
        rows.append(
            [
                round_index + 1,
                "E1" if round_index < 5 else "E2",
                entry.model.label(),
                ber,
                controller.history[-1][1],
                f"{100 * controller.airtime_savings:.0f}%",
            ]
        )
    print()
    print(
        render_table(
            ["round", "env", "model in use", "measured BER", "action",
             "airtime saved vs safest"],
            rows,
            title="Adaptive compression under environment drift",
        )
    )
    print(
        "\nThe controller rides the most compressed rung while the BER "
        "budget holds, and backs off when the unseen environment (E2) "
        "pushes the measured BER past the application ceiling."
    )


if __name__ == "__main__":
    main()
