"""Cross-environment generalization (paper Fig. 13).

Trains SplitBeam (K = 1/8) on environment E1 and tests on E2's data —
and vice versa — for a 2x2 network at 20 MHz.  The paper's observation:
cross-environment BER stays close to the single-environment BER, and
models trained in the *richer* environment (E2) generalize better.

Uses the TRANSFER fidelity preset: generalizing across campaigns needs
the model to learn the channel-to-beamforming map itself, which takes
more independent channel realizations than the single-environment
protocol (see DESIGN.md Sec. 7).  Expect a few minutes of runtime.

Run:  python examples/cross_environment.py
"""

from repro import (
    TRANSFER,
    LinkConfig,
    SplitBeamFeedback,
    build_dataset,
    dataset_spec,
    train_splitbeam,
)
from repro.core.pipeline import evaluate_scheme
from repro.utils.tables import render_table


def main() -> None:
    # D1 = 2x2 @ 20 MHz in E1; D3 = same configuration in E2 (Table I).
    print("Building datasets D1 (E1) and D3 (E2) ...")
    ds_e1 = build_dataset(dataset_spec("D1"), fidelity=TRANSFER, seed=7)
    ds_e2 = build_dataset(dataset_spec("D3"), fidelity=TRANSFER, seed=8)
    link = LinkConfig(snr_db=20.0)

    print("Training one model per environment (K = 1/8) ...")
    model_e1 = SplitBeamFeedback(
        train_splitbeam(ds_e1, compression=1 / 8, fidelity=TRANSFER, seed=0)
    )
    model_e2 = SplitBeamFeedback(
        train_splitbeam(ds_e2, compression=1 / 8, fidelity=TRANSFER, seed=0)
    )

    rows = []
    for label, scheme, train_ds, test_ds in (
        ("E1 -> E1 (single-env)", model_e1, ds_e1, None),
        ("E1 -> E2 (cross-env)", model_e1, ds_e1, ds_e2),
        ("E2 -> E2 (single-env)", model_e2, ds_e2, None),
        ("E2 -> E1 (cross-env)", model_e2, ds_e2, ds_e1),
    ):
        evaluation = evaluate_scheme(
            scheme, train_ds, link_config=link, eval_dataset=test_ds
        )
        rows.append([label, evaluation.ber])
    print()
    print(
        render_table(
            ["protocol (train -> test)", "BER"],
            rows,
            title="Cross-environment test, 2x2 @ 20 MHz, K = 1/8",
        )
    )
    print(
        "\nExpected shape (paper Fig. 13): cross-environment BER close to "
        "single-environment; E2-trained models transfer better because E2 "
        "has the more complex propagation profile."
    )


if __name__ == "__main__":
    main()
