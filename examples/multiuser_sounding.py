"""Multi-user channel-sounding airtime: 802.11 vs SplitBeam (Fig. 3).

Simulates the full NDPA/NDP/BRP/BMR exchange for a 4x4 network at
160 MHz and compares the standard Givens-angle reports against
SplitBeam's compressed bottleneck reports, including each side's
compute time (SVD+GR on the STA CPU vs the head model on the paper's
FPGA target).  Verifies the paper's headline claim that the end-to-end
BM reporting delay stays below the 10 ms MU-MIMO sounding budget.

Run:  python examples/multiuser_sounding.py
"""

from repro import bm_reporting_delay, table3_latency_s
from repro.core.costs import StaCostModel, splitbeam_feedback_bits
from repro.phy.ofdm import band_plan
from repro.standard.feedback import Dot11FeedbackConfig, bmr_bits
from repro.standard.flopmodel import dot11_flops
from repro.utils.tables import render_table

N_USERS = 4
BANDWIDTH_MHZ = 160
COMPRESSION = 1 / 4  # Table III operating point (lowest-BER ladder step)
DELAY_BUDGET_S = 10e-3


def main() -> None:
    n_sc = band_plan(BANDWIDTH_MHZ).n_subcarriers
    costs = StaCostModel(feedback_bandwidth_mhz=BANDWIDTH_MHZ)

    # --- 802.11: Givens-angle reports, SVD+GR compute on the STA CPU.
    dot11_config = Dot11FeedbackConfig(
        n_tx=N_USERS, n_rx=1, n_streams=1, bandwidth_mhz=BANDWIDTH_MHZ
    )
    dot11_bits = bmr_bits(dot11_config)
    dot11_compute = costs.head_time_s(
        dot11_flops(N_USERS, 1, n_subcarriers=n_sc)
    )
    dot11 = bm_reporting_delay(
        n_users=N_USERS,
        bandwidth_mhz=BANDWIDTH_MHZ,
        feedback_bits=dot11_bits,
        head_time_s=dot11_compute,
        tail_time_s=0.0,  # the AP only applies inverse rotations
    )

    # --- SplitBeam: bottleneck reports, head on the STA FPGA/NPU.
    bottleneck = round(COMPRESSION * 2 * N_USERS * n_sc)
    sb_bits = splitbeam_feedback_bits(bottleneck)
    sb_head = table3_latency_s(N_USERS, BANDWIDTH_MHZ, COMPRESSION) / 2
    sb_tail = table3_latency_s(N_USERS, BANDWIDTH_MHZ, COMPRESSION) / 2
    splitbeam = bm_reporting_delay(
        n_users=N_USERS,
        bandwidth_mhz=BANDWIDTH_MHZ,
        feedback_bits=sb_bits,
        head_time_s=sb_head,
        tail_time_s=N_USERS * sb_tail,
    )

    rows = []
    for name, bits, schedule in (
        ("802.11 (9,7) angles", dot11_bits, dot11),
        (f"SplitBeam K=1/{round(1 / COMPRESSION)}", sb_bits, splitbeam),
    ):
        rows.append(
            [
                name,
                bits,
                schedule.airtime_s * 1e3,
                schedule.schedule.feedback_airtime_s * 1e3,
                schedule.total_s * 1e3,
                "yes" if schedule.meets(DELAY_BUDGET_S) else "NO",
            ]
        )
    print(
        render_table(
            ["scheme", "BMR bits/STA", "exchange (ms)", "BMR airtime (ms)",
             "end-to-end (ms)", "< 10 ms"],
            rows,
            title=f"{N_USERS}x{N_USERS} MU-MIMO sounding @ {BANDWIDTH_MHZ} MHz",
        )
    )

    print("\nSplitBeam event timeline:")
    for event in splitbeam.schedule.events:
        who = f" STA{event.station}" if event.station is not None else ""
        print(
            f"  {event.start_s * 1e3:7.3f} ms  {event.kind:<5s}{who}"
            f"  ({event.duration_s * 1e6:7.1f} us)"
        )


if __name__ == "__main__":
    main()
