"""Quickstart: train SplitBeam on one dataset and compare feedback schemes.

Builds the Table I dataset D1 (2x2 MU-MIMO, 20 MHz, environment E1),
trains a SplitBeam model with compression K = 1/8, and compares it with
the IEEE 802.11 compressed-feedback baseline and the ideal (unquantized
SVD) feedback on the paper's three axes: BER, STA computational load,
and feedback size.

To run whole experiment *grids* like this one declaratively — with
worker-pool parallelism and content-addressed result caching — see
``examples/scenario_engine.py`` and ``docs/runtime.md``
(``repro.runtime``).  Training a whole *zoo* of models (many
configurations and compression levels, with warm weight-checkpoint
rebuilds) works the same way: ``examples/zoo_training.py`` and the
"Training grids and the checkpoint store" section of
``docs/runtime.md``.

Run:  python examples/quickstart.py
"""

from repro import (
    FAST,
    Dot11Feedback,
    IdealSvdFeedback,
    LinkConfig,
    SplitBeamFeedback,
    build_dataset,
    compare_schemes,
    dataset_spec,
    train_splitbeam,
)
from repro.utils.tables import render_table


def main() -> None:
    spec = dataset_spec("D1")
    print(f"Building dataset {spec} ...")
    dataset = build_dataset(spec, fidelity=FAST, seed=7)

    print("Training SplitBeam (K = 1/8, the paper's sweet spot) ...")
    trained = train_splitbeam(dataset, compression=1 / 8, fidelity=FAST, seed=0)
    print(
        f"  architecture {trained.model.label()} | "
        f"best val metric {trained.history.best_val_metric:.4f} "
        f"(epoch {trained.history.best_epoch + 1})"
    )

    schemes = [IdealSvdFeedback(), Dot11Feedback(), SplitBeamFeedback(trained)]
    evaluations = compare_schemes(
        schemes, dataset, link_config=LinkConfig(snr_db=20.0)
    )

    rows = []
    dot11 = next(e for e in evaluations if e.scheme_name.startswith("802.11"))
    for e in evaluations:
        rows.append(
            [
                e.scheme_name,
                e.ber,
                int(e.sta_flops),
                e.feedback_bits,
                f"{100 * (1 - e.sta_flops / dot11.sta_flops):.0f}%",
                f"{100 * (1 - e.feedback_bits / dot11.feedback_bits):.0f}%",
            ]
        )
    print()
    print(
        render_table(
            ["scheme", "BER", "STA FLOPs", "feedback bits",
             "FLOP cut vs 802.11", "size cut vs 802.11"],
            rows,
            title=f"{spec} | 16-QAM, zero-forcing, 20 dB SNR",
        )
    )
    print(
        "\nSplitBeam should sit near the 802.11 BER while cutting both "
        "the STA load and the feedback size (paper Figs. 9-11)."
    )


if __name__ == "__main__":
    main()
