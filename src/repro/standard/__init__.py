"""IEEE 802.11ac/ax beamforming-feedback baseline.

Implements the standard's compressed beamforming pipeline the paper
compares against: Algorithm 1 (Givens-rotation decomposition of the
beamforming matrix into phi/psi angles), the standard angle quantizers,
the compressed-beamforming-report size model of Sec. IV-E2 / Eq. (9),
and the SVD/GR computational-load model of Sec. IV-E1.
"""

from repro.standard.givens import (
    GivensAngles,
    givens_decompose,
    givens_reconstruct,
    angle_counts,
)
from repro.standard.quantization import (
    AngleQuantizer,
    CODEBOOKS,
    quantize_angles,
    dequantize_angles,
)
from repro.standard.feedback import (
    bmr_bits,
    csi_bits,
    compression_ratio,
    Dot11FeedbackConfig,
)
from repro.standard.flopmodel import (
    svd_flops,
    givens_flops,
    dot11_flops,
    COMPLEX_FLOP_FACTOR,
)
from repro.standard.cbf import (
    MimoControl,
    CbfReport,
    Dot11CbfCodec,
    codebook_for,
    grouped_tone_indices,
    encode_cbf,
    decode_cbf,
    reconstruct_bf_from_report,
    cbf_payload_bits,
)

__all__ = [
    "GivensAngles",
    "givens_decompose",
    "givens_reconstruct",
    "angle_counts",
    "AngleQuantizer",
    "CODEBOOKS",
    "quantize_angles",
    "dequantize_angles",
    "bmr_bits",
    "csi_bits",
    "compression_ratio",
    "Dot11FeedbackConfig",
    "svd_flops",
    "givens_flops",
    "dot11_flops",
    "COMPLEX_FLOP_FACTOR",
    "MimoControl",
    "CbfReport",
    "Dot11CbfCodec",
    "codebook_for",
    "grouped_tone_indices",
    "encode_cbf",
    "decode_cbf",
    "reconstruct_bf_from_report",
    "cbf_payload_bits",
]
