"""Bit-exact VHT Compressed Beamforming report codec (802.11ac wire format).

``repro.standard.givens`` and ``repro.standard.quantization`` produce
the *values* the standard feeds back; this module produces the *frame*:
the VHT MIMO Control field, per-stream average-SNR fields, the packed
angle payload (optionally subcarrier-grouped), and the MU Exclusive
Beamforming Report with its per-tone delta-SNR fields.

Supported standard features
---------------------------
- SU and MU codebooks: ``(b_psi, b_phi)`` of (2,4)/(4,6) for SU and
  (5,7)/(7,9) for MU, selected by the Codebook Information bit;
- subcarrier grouping ``Ng in {1, 2, 4}``: angles are reported only for
  every ``Ng``-th tone (plus the band edge) and the beamformer
  interpolates the missing tones — the standard's complexity/accuracy
  trade the paper discusses in Sec. II;
- the standard's angle ordering: for each Givens round ``t``, the
  ``phi_{l,t}`` column phases then the ``psi_{l,t}`` rotations.

The payload layout is MSB-first with the frame zero-padded to whole
octets, so a report round-trips bit-exactly through
:func:`encode_cbf` / :func:`decode_cbf`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError, FeedbackError, ShapeError
from repro.perf.profile import profiled
from repro.phy.ofdm import band_plan
from repro.standard.givens import (
    GivensAngles,
    angle_counts,
    givens_decompose,
    givens_reconstruct,
)
from repro.standard.quantization import AngleQuantizer
from repro.utils.bits import (
    BitReader,
    BitWriter,
    _shifts,
    _weights,
    bits_to_bytes,
)

__all__ = [
    "MimoControl",
    "CbfReport",
    "codebook_for",
    "grouped_tone_indices",
    "encode_cbf",
    "decode_cbf",
    "reconstruct_bf_from_report",
    "cbf_payload_bits",
    "Dot11CbfCodec",
]

#: Channel-width code in the VHT MIMO Control field.
_BW_CODES = {20: 0, 40: 1, 80: 2, 160: 3}
_BW_FROM_CODE = {v: k for k, v in _BW_CODES.items()}

#: Grouping code (Ng) in the VHT MIMO Control field.
_NG_CODES = {1: 0, 2: 1, 4: 2}
_NG_FROM_CODE = {v: k for k, v in _NG_CODES.items()}

#: (b_psi, b_phi) per (feedback type, codebook bit) — 802.11ac Table 8-53c.
_CODEBOOKS = {
    ("su", 0): (2, 4),
    ("su", 1): (4, 6),
    ("mu", 0): (5, 7),
    ("mu", 1): (7, 9),
}

#: Average-SNR field: 8 bits, 0.25 dB steps, -10 dB offset (802.11ac).
_SNR_STEP_DB = 0.25
_SNR_OFFSET_DB = -10.0

#: MU Exclusive report delta-SNR field: 4 bits two's complement, 1 dB steps.
_DELTA_SNR_BITS = 4


def codebook_for(feedback_type: str, codebook: int) -> AngleQuantizer:
    """Angle quantizer selected by (Feedback Type, Codebook Information)."""
    try:
        b_psi, b_phi = _CODEBOOKS[(feedback_type, codebook)]
    except KeyError:
        raise ConfigurationError(
            f"unknown codebook selector ({feedback_type!r}, {codebook!r}); "
            "feedback_type must be 'su' or 'mu', codebook 0 or 1"
        ) from None
    return AngleQuantizer(b_phi=b_phi, b_psi=b_psi)


@dataclass(frozen=True)
class MimoControl:
    """The VHT MIMO Control field (24 bits on the wire).

    ``n_columns``/``n_rows`` are the actual Nc (streams fed back) and Nr
    (beamformer antennas); the wire carries them minus one in 3 bits.
    """

    n_columns: int
    n_rows: int
    bandwidth_mhz: int
    grouping: int = 1
    codebook: int = 1
    feedback_type: str = "mu"
    remaining_segments: int = 0
    first_segment: bool = True
    token: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.n_columns <= 8:
            raise ConfigurationError(f"Nc must be in [1, 8], got {self.n_columns}")
        if not 1 <= self.n_rows <= 8:
            raise ConfigurationError(f"Nr must be in [1, 8], got {self.n_rows}")
        if self.n_columns > self.n_rows:
            raise ConfigurationError(
                f"Nc={self.n_columns} cannot exceed Nr={self.n_rows}"
            )
        if self.bandwidth_mhz not in _BW_CODES:
            raise ConfigurationError(
                f"bandwidth {self.bandwidth_mhz} MHz has no VHT width code; "
                f"options: {sorted(_BW_CODES)}"
            )
        if self.grouping not in _NG_CODES:
            raise ConfigurationError(
                f"grouping Ng={self.grouping} not in {sorted(_NG_CODES)}"
            )
        if self.codebook not in (0, 1):
            raise ConfigurationError("codebook bit must be 0 or 1")
        if self.feedback_type not in ("su", "mu"):
            raise ConfigurationError("feedback_type must be 'su' or 'mu'")
        if not 0 <= self.remaining_segments <= 7:
            raise ConfigurationError("remaining_segments must fit 3 bits")
        if not 0 <= self.token <= 63:
            raise ConfigurationError("sounding token must fit 6 bits")

    @property
    def quantizer(self) -> AngleQuantizer:
        return codebook_for(self.feedback_type, self.codebook)

    @property
    def n_subcarriers(self) -> int:
        return band_plan(self.bandwidth_mhz).n_subcarriers

    def pack(self, writer: BitWriter) -> None:
        """Append the 24-bit control field."""
        writer.write(self.n_columns - 1, 3)
        writer.write(self.n_rows - 1, 3)
        writer.write(_BW_CODES[self.bandwidth_mhz], 2)
        writer.write(_NG_CODES[self.grouping], 2)
        writer.write(self.codebook, 1)
        writer.write(1 if self.feedback_type == "mu" else 0, 1)
        writer.write(self.remaining_segments, 3)
        writer.write(1 if self.first_segment else 0, 1)
        writer.write(self.token, 6)
        writer.write(0, 2)  # reserved

    @classmethod
    def unpack(cls, reader: BitReader) -> "MimoControl":
        """Parse the 24-bit control field."""
        nc = reader.read(3) + 1
        nr = reader.read(3) + 1
        bw_code = reader.read(2)
        ng_code = reader.read(2)
        codebook = reader.read(1)
        fb_type = "mu" if reader.read(1) else "su"
        remaining = reader.read(3)
        first = bool(reader.read(1))
        token = reader.read(6)
        reader.read(2)  # reserved
        if ng_code not in _NG_FROM_CODE:
            raise FeedbackError(f"reserved grouping code {ng_code}")
        return cls(
            n_columns=nc,
            n_rows=nr,
            bandwidth_mhz=_BW_FROM_CODE[bw_code],
            grouping=_NG_FROM_CODE[ng_code],
            codebook=codebook,
            feedback_type=fb_type,
            remaining_segments=remaining,
            first_segment=first,
            token=token,
        )


def grouped_tone_indices(n_subcarriers: int, grouping: int) -> np.ndarray:
    """Tone indices actually fed back under grouping ``Ng``.

    Every ``Ng``-th tone starting from the band edge, with the final tone
    always included so the interpolation never extrapolates.
    """
    if n_subcarriers < 1:
        raise ConfigurationError("n_subcarriers must be >= 1")
    if grouping not in _NG_CODES:
        raise ConfigurationError(f"grouping Ng={grouping} not in {sorted(_NG_CODES)}")
    indices = np.arange(0, n_subcarriers, grouping)
    if indices[-1] != n_subcarriers - 1:
        indices = np.append(indices, n_subcarriers - 1)
    return indices


@dataclass
class CbfReport:
    """A decoded VHT compressed beamforming report.

    ``phi_codes``/``psi_codes`` are the integer angle codes on the
    *grouped* tone grid, shape ``(n_grouped, n_phi)`` / ``(n_grouped,
    n_psi)``; ``snr_codes`` is the per-stream average-SNR field.
    """

    control: MimoControl
    snr_codes: np.ndarray
    phi_codes: np.ndarray
    psi_codes: np.ndarray
    mu_delta_codes: np.ndarray | None = None  # (n_subcarriers, Nc)

    @property
    def snr_db(self) -> np.ndarray:
        """Per-stream average SNR in dB."""
        return self.snr_codes * _SNR_STEP_DB + _SNR_OFFSET_DB

    @property
    def mu_delta_db(self) -> np.ndarray | None:
        """Per-tone delta SNR (dB) from the MU exclusive segment."""
        if self.mu_delta_codes is None:
            return None
        codes = self.mu_delta_codes.astype(np.int64)
        signed = np.where(codes >= 8, codes - 16, codes)
        return signed.astype(np.float64)

    @property
    def tone_indices(self) -> np.ndarray:
        return grouped_tone_indices(self.control.n_subcarriers, self.control.grouping)


def _snr_to_code(snr_db: np.ndarray) -> np.ndarray:
    code = np.round((np.asarray(snr_db, dtype=np.float64) - _SNR_OFFSET_DB) / _SNR_STEP_DB)
    return np.clip(code, 0, 255).astype(np.int64)


def _delta_to_code(delta_db: np.ndarray) -> np.ndarray:
    signed = np.clip(np.round(np.asarray(delta_db, dtype=np.float64)), -8, 7).astype(np.int64)
    return np.where(signed < 0, signed + 16, signed)


def cbf_payload_bits(control: MimoControl, include_mu_exclusive: bool = False) -> int:
    """Exact frame-body size in bits (before octet padding).

    24 control bits + 8 bits average SNR per column + the grouped angle
    payload + (optionally) 4 delta-SNR bits per tone per column.
    """
    n_phi, n_psi = angle_counts(control.n_rows, control.n_columns)
    quantizer = control.quantizer
    n_tones = grouped_tone_indices(control.n_subcarriers, control.grouping).size
    bits = 24 + 8 * control.n_columns
    bits += n_tones * (n_phi * quantizer.b_phi + n_psi * quantizer.b_psi)
    if include_mu_exclusive:
        bits += control.n_subcarriers * control.n_columns * _DELTA_SNR_BITS
    return bits


def _interleave_order(n_rows: int, n_columns: int) -> tuple[list[tuple[str, int]], int]:
    """Wire order of the angles within one tone.

    Returns ``[(kind, index), ...]`` where ``kind`` is ``"phi"``/``"psi"``
    and ``index`` is the position within that angle family, plus the
    total number of Givens rounds ``m``.  Order per the standard: for
    each round ``t``, first the phi block, then the psi block.
    """
    order: list[tuple[str, int]] = []
    m = min(n_columns, n_rows - 1)
    phi_base = 0
    psi_base = 0
    for t in range(1, m + 1):
        block = n_rows - t
        order.extend(("phi", phi_base + k) for k in range(block))
        order.extend(("psi", psi_base + k) for k in range(block))
        phi_base += block
        psi_base += block
    return order, m


def _round_blocks(n_rows: int, n_columns: int) -> list[tuple[int, int]]:
    """Per Givens round: (start index into the angle family, block size).

    Both angle families share the same block structure (``n_rows - t``
    angles in round ``t``), so one list serves phi and psi.
    """
    blocks: list[tuple[int, int]] = []
    base = 0
    for t in range(1, min(n_columns, n_rows - 1) + 1):
        blocks.append((base, n_rows - t))
        base += n_rows - t
    return blocks


def _unpack_codes(codes: np.ndarray, width: int) -> np.ndarray:
    """Expand ``(tones, n_angles)`` codes to MSB-first bits.

    Returns ``(tones, n_angles, width)`` uint8; raises if any code does
    not fit the field.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if codes.size and (codes.min() < 0 or codes.max() >= (1 << width)):
        raise FeedbackError(
            f"angle codes outside [0, 2^{width}) cannot be packed"
        )
    return ((codes[..., None] >> _shifts(width)) & 1).astype(np.uint8)


def _pack_angle_payload(
    phi_codes: np.ndarray,
    psi_codes: np.ndarray,
    control: MimoControl,
) -> np.ndarray:
    """All grouped-tone angle fields as one flat MSB-first bit array.

    Builds the standard's wire layout (per tone: per round, phi block
    then psi block) with one bit-expansion per angle family and one
    concatenation per Givens round — no per-field Python loop.
    """
    quantizer = control.quantizer
    phi_bits = _unpack_codes(phi_codes, quantizer.b_phi)
    psi_bits = _unpack_codes(psi_codes, quantizer.b_psi)
    n_tones = phi_bits.shape[0]
    parts: list[np.ndarray] = []
    for base, block in _round_blocks(control.n_rows, control.n_columns):
        parts.append(phi_bits[:, base : base + block].reshape(n_tones, -1))
        parts.append(psi_bits[:, base : base + block].reshape(n_tones, -1))
    return np.concatenate(parts, axis=1).reshape(-1)


def _unpack_angle_payload(
    bits: np.ndarray,
    control: MimoControl,
    n_tones: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`_pack_angle_payload`: bits -> (phi, psi) codes."""
    quantizer = control.quantizer
    n_phi, n_psi = angle_counts(control.n_rows, control.n_columns)
    phi_codes = np.empty((n_tones, n_phi), dtype=np.int64)
    psi_codes = np.empty((n_tones, n_psi), dtype=np.int64)
    phi_weights = _weights(quantizer.b_phi)
    psi_weights = _weights(quantizer.b_psi)
    per_tone = bits.reshape(n_tones, -1)
    column = 0
    for base, block in _round_blocks(control.n_rows, control.n_columns):
        width = block * quantizer.b_phi
        chunk = per_tone[:, column : column + width]
        phi_codes[:, base : base + block] = (
            chunk.reshape(n_tones, block, quantizer.b_phi).astype(np.int64)
            @ phi_weights
        )
        column += width
        width = block * quantizer.b_psi
        chunk = per_tone[:, column : column + width]
        psi_codes[:, base : base + block] = (
            chunk.reshape(n_tones, block, quantizer.b_psi).astype(np.int64)
            @ psi_weights
        )
        column += width
    return phi_codes, psi_codes


@profiled("cbf.encode")
def encode_cbf(
    bf: np.ndarray,
    control: MimoControl,
    snr_db: "np.ndarray | float" = 30.0,
    mu_delta_db: np.ndarray | None = None,
) -> bytes:
    """Encode beamforming matrices into a compressed beamforming frame.

    Parameters
    ----------
    bf:
        Per-tone beamforming matrices, shape ``(S, Nr, Nc)`` — the full
        tone grid; grouping subsamples internally.
    control:
        Frame metadata (dimensions, bandwidth, grouping, codebook).
    snr_db:
        Per-stream average SNR (scalar or ``(Nc,)``).
    mu_delta_db:
        Optional per-tone delta SNR ``(S, Nc)``; appends the MU
        Exclusive Beamforming Report segment.
    """
    bf = np.asarray(bf, dtype=np.complex128)
    expected = (control.n_subcarriers, control.n_rows, control.n_columns)
    if bf.shape != expected:
        raise ShapeError(f"bf shape {bf.shape} != expected {expected}")

    tones = grouped_tone_indices(control.n_subcarriers, control.grouping)
    angles = givens_decompose(bf[tones])
    quantizer = control.quantizer
    phi_codes = quantizer.quantize_phi(angles.phi)
    psi_codes = quantizer.quantize_psi(angles.psi)

    snr = np.broadcast_to(
        np.atleast_1d(np.asarray(snr_db, dtype=np.float64)), (control.n_columns,)
    )

    writer = BitWriter(
        capacity=cbf_payload_bits(control, include_mu_exclusive=mu_delta_db is not None)
    )
    control.pack(writer)
    writer.write_array(_snr_to_code(snr), 8)
    writer.write_bits(_pack_angle_payload(phi_codes, psi_codes, control))
    if mu_delta_db is not None:
        mu_delta_db = np.asarray(mu_delta_db, dtype=np.float64)
        if mu_delta_db.shape != (control.n_subcarriers, control.n_columns):
            raise ShapeError(
                f"mu_delta_db shape {mu_delta_db.shape} != "
                f"({control.n_subcarriers}, {control.n_columns})"
            )
        writer.write_array(_delta_to_code(mu_delta_db), _DELTA_SNR_BITS)
    return writer.getvalue()


@profiled("cbf.decode")
def decode_cbf(data: bytes, expect_mu_exclusive: bool | None = None) -> CbfReport:
    """Parse a compressed beamforming frame back into codes.

    ``expect_mu_exclusive=None`` auto-detects the MU segment from the
    frame length.
    """
    reader = BitReader(data)
    control = MimoControl.unpack(reader)
    snr_codes = reader.read_array(control.n_columns, 8)

    n_phi, n_psi = angle_counts(control.n_rows, control.n_columns)
    quantizer = control.quantizer
    tones = grouped_tone_indices(control.n_subcarriers, control.grouping)
    angle_bits = reader.read_bits(
        tones.size * (n_phi * quantizer.b_phi + n_psi * quantizer.b_psi)
    )
    phi_codes, psi_codes = _unpack_angle_payload(angle_bits, control, tones.size)

    mu_codes: np.ndarray | None = None
    mu_bits = control.n_subcarriers * control.n_columns * _DELTA_SNR_BITS
    if expect_mu_exclusive is None:
        expect_mu_exclusive = reader.bits_remaining >= mu_bits
    if expect_mu_exclusive:
        mu_codes = reader.read_array(
            control.n_subcarriers * control.n_columns, _DELTA_SNR_BITS
        ).reshape(control.n_subcarriers, control.n_columns)
    return CbfReport(
        control=control,
        snr_codes=snr_codes,
        phi_codes=phi_codes,
        psi_codes=psi_codes,
        mu_delta_codes=mu_codes,
    )


def _interpolate_angles(
    values: np.ndarray,
    tones: np.ndarray,
    n_subcarriers: int,
    circular: bool,
) -> np.ndarray:
    """Linearly interpolate grouped angle tracks onto the full tone grid.

    ``circular=True`` unwraps phases before interpolation so a phi track
    crossing the 0/2pi seam does not sweep through the whole circle.
    """
    if tones.size == n_subcarriers:
        return values
    full = np.arange(n_subcarriers, dtype=np.float64)
    out = np.empty((n_subcarriers, values.shape[1]), dtype=np.float64)
    for col in range(values.shape[1]):
        track = values[:, col]
        if circular:
            track = np.unwrap(track)
        out[:, col] = np.interp(full, tones.astype(np.float64), track)
    if circular:
        out = np.mod(out, 2.0 * np.pi)
    return out


def reconstruct_bf_from_report(report: CbfReport) -> np.ndarray:
    """AP-side reconstruction: dequantize, interpolate, rebuild ``V``.

    Returns the beamforming-equivalent ``V_tilde`` on the full tone grid,
    shape ``(S, Nr, Nc)``.
    """
    control = report.control
    quantizer = control.quantizer
    tones = report.tone_indices
    phi = quantizer.dequantize_phi(report.phi_codes)
    psi = quantizer.dequantize_psi(report.psi_codes)
    phi_full = _interpolate_angles(phi, tones, control.n_subcarriers, circular=True)
    psi_full = _interpolate_angles(psi, tones, control.n_subcarriers, circular=False)
    angles = GivensAngles(
        phi=phi_full,
        psi=psi_full,
        n_tx=control.n_rows,
        n_streams=control.n_columns,
    )
    return givens_reconstruct(angles)


class Dot11CbfCodec:
    """Convenience wrapper: ``V -> frame bytes -> V_hat`` for one config.

    This is the full 802.11 feedback round trip at the *bit* level — the
    array-level pipeline in ``repro.baselines.dot11`` is its fast path,
    and the test suite asserts the two agree.
    """

    def __init__(self, control: MimoControl) -> None:
        self.control = control

    def with_grouping(self, grouping: int) -> "Dot11CbfCodec":
        """Same codec with a different subcarrier grouping."""
        return Dot11CbfCodec(replace(self.control, grouping=grouping))

    def frame_bytes(self) -> int:
        """Encoded frame size in octets."""
        return bits_to_bytes(cbf_payload_bits(self.control))

    def encode(self, bf: np.ndarray, snr_db: "np.ndarray | float" = 30.0) -> bytes:
        return encode_cbf(bf, self.control, snr_db=snr_db)

    def decode(self, data: bytes) -> np.ndarray:
        return reconstruct_bf_from_report(decode_cbf(data))

    def roundtrip(self, bf: np.ndarray) -> np.ndarray:
        """Encode then decode one sample's beamforming matrices."""
        return self.decode(self.encode(bf))
