"""Givens-rotation decomposition of the beamforming matrix (Algorithm 1).

The 802.11 standard feeds back the beamforming matrix ``V`` as a set of
``phi`` (column phases) and ``psi`` (rotation) angles.  This module
implements the paper's Algorithm 1 and its inverse, batched over leading
axes (samples, subcarriers):

- :func:`givens_decompose` — ``V -> (phi, psi)``;
- :func:`givens_reconstruct` — ``(phi, psi) -> V_tilde`` where
  ``V_tilde = V @ D_tilde†`` (the standard's beamforming-equivalent
  representative with a real, non-negative last row);
- :func:`angle_counts` — number of angles per subcarrier.

Inputs must have orthonormal columns (as SVD beamforming matrices do);
the decomposition is exact for such matrices and the round trip
``reconstruct(decompose(V))`` equals ``fix_phase_gauge(V)`` to machine
precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.perf.profile import profiled

__all__ = ["GivensAngles", "givens_decompose", "givens_reconstruct", "angle_counts"]


def angle_counts(n_tx: int, n_streams: int) -> tuple[int, int]:
    """Number of (phi, psi) angles per subcarrier for ``Nt x Nss``.

    ``n_phi = n_psi = sum_{t=1..min(Nss, Nt-1)} (Nt - t)`` — e.g. (1, 1)
    for 2x1, (2, 2) for 3x1, (6, 6) for 4x4 (the standard's tables).
    """
    if n_tx < 1 or n_streams < 1:
        raise ShapeError("n_tx and n_streams must be >= 1")
    m = min(n_streams, n_tx - 1)
    count = sum(n_tx - t for t in range(1, m + 1))
    return count, count


@dataclass
class GivensAngles:
    """Angles produced by :func:`givens_decompose`.

    ``phi`` and ``psi`` have shape ``(..., n_phi)`` / ``(..., n_psi)``
    where the leading axes match the input batch.  Angle ordering is the
    standard's: for each ``t`` ascending, first the ``phi_{l,t}`` for
    ``l = t..Nt-1``, then the ``psi_{l,t}`` for ``l = t+1..Nt``.
    """

    phi: np.ndarray
    psi: np.ndarray
    n_tx: int
    n_streams: int

    @property
    def per_subcarrier(self) -> int:
        """Total angles per subcarrier (phi + psi)."""
        return self.phi.shape[-1] + self.psi.shape[-1]


def _decompose_single_stream(column: np.ndarray) -> GivensAngles:
    """Closed-form Algorithm 1 for one-column (Nss = 1) inputs.

    With a single stream every Givens round rotates the same column, so
    the psi recurrence telescopes: after the D_1† de-rotation the
    column is (almost-surely) non-negative real and each rotation's
    running "top" equals the cumulative norm of the entries processed
    so far.  One cumulative sum replaces the per-row rotation loop;
    results match the loop to machine precision (the loop's
    ``cos*top + sin*low`` accumulator and ``hypot`` agree exactly in
    real arithmetic).
    """
    n_tx = column.shape[-1]
    phase = np.exp(-1j * np.angle(column[..., -1:]))
    rotated = column * phase
    phi = np.angle(rotated[..., :-1])
    magnitudes = np.abs(rotated)
    radii = np.sqrt(np.cumsum(magnitudes**2, axis=-1))
    tops = np.concatenate(
        [magnitudes[..., :1], radii[..., 1:-1]], axis=-1
    )
    ratios = tops / np.maximum(radii[..., 1:], 1e-300)
    psi = np.arccos(np.clip(ratios, -1.0, 1.0))
    return GivensAngles(phi=phi, psi=psi, n_tx=n_tx, n_streams=1)


def _reconstruct_single_stream(
    phi: np.ndarray, psi: np.ndarray, n_tx: int
) -> np.ndarray:
    """Closed-form Eq. (5) for one-column (Nss = 1) angle sets.

    ``v_0 = e^{i phi_0} prod_k cos(psi_k)``; row ``k >= 1`` is
    ``e^{i phi_k} sin(psi_k) prod_{j > k} cos(psi_j)`` (no phase on the
    last row) — one reversed cumulative product instead of the rotation
    loop.
    """
    if phi.shape[-1] != n_tx - 1 or psi.shape[-1] != n_tx - 1:
        raise ShapeError("angle arrays inconsistent with (n_tx, n_streams)")
    batch_shape = phi.shape[:-1]
    cos = np.cos(psi)
    sin = np.sin(psi)
    # suffix[k] = prod_{j >= k} cos(psi_j), built in the rotation
    # loop's (descending) multiplication order.
    suffix = np.cumprod(cos[..., ::-1], axis=-1)[..., ::-1]
    result = np.empty(batch_shape + (n_tx, 1), dtype=np.complex128)
    result[..., 0, 0] = suffix[..., 0]
    result[..., 1 : n_tx - 1, 0] = sin[..., :-1] * suffix[..., 1:]
    result[..., n_tx - 1, 0] = sin[..., -1]
    result[..., : n_tx - 1, 0] *= np.exp(1j * phi)
    return result


@profiled("givens.decompose")
def givens_decompose(bf: np.ndarray) -> GivensAngles:
    """Decompose beamforming matrices ``(..., Nt, Nss)`` into GR angles.

    Implements Algorithm 1 of the paper, batched over leading axes.
    The ubiquitous single-stream case (per-user beamforming vectors)
    takes a closed-form path that replaces the per-round rotation loop
    with one cumulative sum over the column.
    """
    omega = np.asarray(bf, dtype=np.complex128)
    if omega.ndim < 2:
        raise ShapeError("expected (..., Nt, Nss) beamforming matrices")
    n_tx, n_streams = omega.shape[-2:]
    if n_tx < n_streams:
        raise ShapeError(f"Nt={n_tx} must be >= Nss={n_streams}")
    if n_streams == 1 and n_tx > 1:
        return _decompose_single_stream(omega[..., 0])
    omega = omega.copy()
    batch_shape = omega.shape[:-2]

    # Step 1: remove last-row phases (the D_tilde† multiply).
    last_phase = np.exp(-1j * np.angle(omega[..., -1:, :]))
    omega *= last_phase

    m = min(n_streams, n_tx - 1)
    phis: list[np.ndarray] = []
    psis: list[np.ndarray] = []
    for t in range(1, m + 1):
        # phi_{l,t} = angle(omega[l, t]) for l = t..Nt-1 (1-indexed).
        column = omega[..., t - 1 : n_tx - 1, t - 1]
        phi_t = np.angle(column)
        phis.append(phi_t)
        # Apply D_t†: de-rotate rows t..Nt-1 in place (one multiply over
        # all tones, no full-size rotation matrix).
        omega[..., t - 1 : n_tx - 1, :] *= np.exp(-1j * phi_t)[..., None]
        for ell in range(t + 1, n_tx + 1):
            top = omega[..., t - 1, t - 1].real
            low = omega[..., ell - 1, t - 1].real
            radius = np.hypot(top, low)
            safe = np.maximum(radius, 1e-300)
            cos_psi = np.clip(top / safe, -1.0, 1.0)
            psi_lt = np.arccos(cos_psi)
            psis.append(psi_lt)
            # Apply G_{l,t} to rows (t, l): a 2x2 real rotation, both new
            # rows computed before either is overwritten (no copies).
            sin_psi = np.sin(psi_lt)
            row_t = omega[..., t - 1, :]
            row_l = omega[..., ell - 1, :]
            new_t = cos_psi[..., None] * row_t + sin_psi[..., None] * row_l
            new_l = -sin_psi[..., None] * row_t + cos_psi[..., None] * row_l
            omega[..., t - 1, :] = new_t
            omega[..., ell - 1, :] = new_l

    n_phi, n_psi = angle_counts(n_tx, n_streams)
    phi = (
        np.concatenate([p.reshape(batch_shape + (-1,)) for p in phis], axis=-1)
        if phis
        else np.zeros(batch_shape + (0,))
    )
    psi = (
        np.stack(psis, axis=-1).reshape(batch_shape + (-1,))
        if psis
        else np.zeros(batch_shape + (0,))
    )
    if phi.shape[-1] != n_phi or psi.shape[-1] != n_psi:
        raise ShapeError(
            f"internal angle-count mismatch: got ({phi.shape[-1]}, "
            f"{psi.shape[-1]}), expected ({n_phi}, {n_psi})"
        )
    return GivensAngles(phi=phi, psi=psi, n_tx=n_tx, n_streams=n_streams)


@profiled("givens.reconstruct")
def givens_reconstruct(angles: GivensAngles) -> np.ndarray:
    """Rebuild ``V_tilde`` from GR angles (Eq. (5)).

    ``V_tilde = prod_t ( D_t * prod_l G_{l,t}^T ) * I_{Nt x Nss}``.
    Returns shape ``(..., Nt, Nss)``.
    """
    n_tx, n_streams = angles.n_tx, angles.n_streams
    phi, psi = np.asarray(angles.phi), np.asarray(angles.psi)
    if n_streams == 1 and n_tx > 1:
        return _reconstruct_single_stream(phi, psi, n_tx)
    batch_shape = phi.shape[:-1]
    m = min(n_streams, n_tx - 1)

    result = np.zeros(batch_shape + (n_tx, n_streams), dtype=np.complex128)
    identity = np.eye(n_tx, n_streams, dtype=np.complex128)
    result[...] = identity

    # Build the product right-to-left: result = D_1 G^T... applied from
    # the innermost (t = m) factor outwards.
    phi_index = phi.shape[-1]
    psi_index = psi.shape[-1]
    for t in range(m, 0, -1):
        # G^T factors for l = Nt down to t+1 (right-most first).
        n_psi_t = n_tx - t
        psi_block = psi[..., psi_index - n_psi_t : psi_index]
        psi_index -= n_psi_t
        for offset, ell in enumerate(range(n_tx, t, -1)):
            psi_lt = psi_block[..., ell - t - 1]
            cos_psi = np.cos(psi_lt)[..., None]
            sin_psi = np.sin(psi_lt)[..., None]
            row_t = result[..., t - 1, :].copy()
            row_l = result[..., ell - 1, :].copy()
            # G^T has [cos, -sin; sin, cos] in the (t, l) plane.
            result[..., t - 1, :] = cos_psi * row_t - sin_psi * row_l
            result[..., ell - 1, :] = sin_psi * row_t + cos_psi * row_l
        # D_t factor.
        n_phi_t = n_tx - t
        phi_block = phi[..., phi_index - n_phi_t : phi_index]
        phi_index -= n_phi_t
        rotation = np.ones(batch_shape + (n_tx, 1), dtype=np.complex128)
        rotation[..., t - 1 : n_tx - 1, 0] = np.exp(1j * phi_block)
        result = result * rotation
    if phi_index != 0 or psi_index != 0:
        raise ShapeError("angle arrays inconsistent with (n_tx, n_streams)")
    return result
