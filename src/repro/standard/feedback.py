"""Feedback-size models: BMR bits, CSI bits, and Eq. (9) compression.

From Sec. IV-E2 of the paper:

- compressed beamforming report size
  ``BMR = 8*Nt + Na * S * (b_phi + b_psi) / 2`` bits, where ``Na`` is
  the number of Givens angles per subcarrier;
- raw channel-state feedback ``S * Nt * Nr * b`` bits with ``b = 16``
  (16 bits per complex element, i.e. 8 bits per real component);
- 802.11 compression ratio ``CR = BMR / (S * Nt * Nr * b)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.phy.ofdm import band_plan
from repro.standard.givens import angle_counts
from repro.standard.quantization import AngleQuantizer

__all__ = ["Dot11FeedbackConfig", "bmr_bits", "csi_bits", "compression_ratio"]

#: Bits per complex channel element in the Eq. (9) denominator.
CSI_BITS_PER_ELEMENT: int = 16


@dataclass(frozen=True)
class Dot11FeedbackConfig:
    """One 802.11 feedback configuration (antennas, streams, band, bits)."""

    n_tx: int
    n_rx: int
    n_streams: int
    bandwidth_mhz: int
    quantizer: AngleQuantizer = AngleQuantizer(b_phi=9, b_psi=7)

    def __post_init__(self) -> None:
        if self.n_tx < 1 or self.n_rx < 1 or self.n_streams < 1:
            raise ConfigurationError("antenna/stream counts must be >= 1")
        if self.n_streams > self.n_tx:
            raise ConfigurationError(
                f"Nss={self.n_streams} cannot exceed Nt={self.n_tx}"
            )

    @property
    def n_subcarriers(self) -> int:
        return band_plan(self.bandwidth_mhz).n_subcarriers


def bmr_bits(config: Dot11FeedbackConfig) -> int:
    """Beamforming-report size in bits (Sec. IV-E2).

    ``8*Nt`` covers the per-antenna SNR/overhead fields; each of the
    ``Na`` angles costs ``(b_phi + b_psi)/2`` bits on average because
    half the angles are phi and half are psi.
    """
    n_phi, n_psi = angle_counts(config.n_tx, config.n_streams)
    q = config.quantizer
    angle_bits = config.n_subcarriers * (
        n_phi * q.b_phi + n_psi * q.b_psi
    )
    # n_phi == n_psi, so this equals Na * S * (b_phi + b_psi) / 2.
    return 8 * config.n_tx + angle_bits


def csi_bits(config: Dot11FeedbackConfig) -> int:
    """Uncompressed CSI feedback size: ``S * Nt * Nr * 16`` bits."""
    return (
        config.n_subcarriers
        * config.n_tx
        * config.n_rx
        * CSI_BITS_PER_ELEMENT
    )


def compression_ratio(config: Dot11FeedbackConfig) -> float:
    """Eq. (9): BMR bits over raw CSI bits.

    About 1/2 for 2x2 and 2/3 for 3x3 with the (9, 7) MU-MIMO codebook,
    as the paper notes under Fig. 9.
    """
    return bmr_bits(config) / csi_bits(config)
