"""Computational-load models for the 802.11 feedback pipeline.

Sec. IV-E1 of the paper cites (from Golub & Van Loan [8]):

- SVD of the channel: ``O((4*Nt*Nr^2 + 22*Nt^3) * S)`` complex ops;
- Givens decomposition: ``O(Nt^3 * Nr^3 * S)`` complex ops.

We convert complex operations to real FLOPs with a factor of 6 (one
complex multiply-accumulate = 4 real multiplies + 2 real adds).  The
paper's own constants are unpublished ("computed through a MATLAB
program"); DESIGN.md Sec. 3.4 documents this convention and
EXPERIMENTS.md records the resulting deltas.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.phy.ofdm import band_plan

__all__ = ["COMPLEX_FLOP_FACTOR", "svd_flops", "givens_flops", "dot11_flops"]

#: Real FLOPs per complex multiply-accumulate.
COMPLEX_FLOP_FACTOR: int = 6


def _check(n_tx: int, n_rx: int, n_subcarriers: int) -> None:
    if n_tx < 1 or n_rx < 1 or n_subcarriers < 1:
        raise ConfigurationError("n_tx, n_rx, n_subcarriers must be >= 1")


def svd_flops(n_tx: int, n_rx: int, n_subcarriers: int) -> float:
    """Real FLOPs for per-subcarrier SVD of an ``Nr x Nt`` channel."""
    _check(n_tx, n_rx, n_subcarriers)
    complex_ops = (4 * n_tx * n_rx**2 + 22 * n_tx**3) * n_subcarriers
    return float(COMPLEX_FLOP_FACTOR * complex_ops)


def givens_flops(n_tx: int, n_rx: int, n_subcarriers: int) -> float:
    """Real FLOPs for the Givens-rotation angle decomposition."""
    _check(n_tx, n_rx, n_subcarriers)
    complex_ops = (n_tx**3) * (n_rx**3) * n_subcarriers
    return float(COMPLEX_FLOP_FACTOR * complex_ops)


def dot11_flops(
    n_tx: int, n_rx: int, bandwidth_mhz: int | None = None, n_subcarriers: int | None = None
) -> float:
    """Total STA FLOPs for the standard pipeline (SVD + GR).

    Pass either ``bandwidth_mhz`` (resolved through the band plan) or an
    explicit ``n_subcarriers``.
    """
    if n_subcarriers is None:
        if bandwidth_mhz is None:
            raise ConfigurationError(
                "provide bandwidth_mhz or n_subcarriers"
            )
        n_subcarriers = band_plan(bandwidth_mhz).n_subcarriers
    return svd_flops(n_tx, n_rx, n_subcarriers) + givens_flops(
        n_tx, n_rx, n_subcarriers
    )
