"""IEEE 802.11 Givens-angle quantizers.

The standard quantizes ``phi`` over [0, 2pi) with ``b_phi`` bits and
``psi`` over [0, pi/2) with ``b_psi = b_phi - 2`` bits using mid-rise
uniform codebooks:

- ``phi_q(k) = k*pi/2^(b_phi-1) + pi/2^b_phi``
- ``psi_q(k) = k*pi/2^(b_psi+1) + pi/2^(b_psi+2)``

MU-MIMO feedback uses (b_phi, b_psi) = (7, 5) or (9, 7); SU-MIMO uses
(4, 2) or (6, 4).  The paper's BF-size analysis assumes the MU-MIMO
codebooks (Sec. III-A2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.standard.givens import GivensAngles

__all__ = ["AngleQuantizer", "CODEBOOKS", "quantize_angles", "dequantize_angles"]

#: Named (b_phi, b_psi) pairs from the standard.
CODEBOOKS: dict[str, tuple[int, int]] = {
    "su_low": (4, 2),
    "su_high": (6, 4),
    "mu_low": (7, 5),
    "mu_high": (9, 7),
}


@dataclass(frozen=True)
class AngleQuantizer:
    """Uniform mid-rise quantizer pair for (phi, psi) angles."""

    b_phi: int = 9
    b_psi: int = 7

    def __post_init__(self) -> None:
        if not 1 <= self.b_psi <= self.b_phi <= 16:
            raise ConfigurationError(
                f"invalid angle bit widths (b_phi={self.b_phi}, "
                f"b_psi={self.b_psi})"
            )

    # -- phi ------------------------------------------------------------------

    def quantize_phi(self, phi: np.ndarray) -> np.ndarray:
        """Map phases (any real values) to integer codes 0..2^b_phi - 1."""
        phi = np.mod(np.asarray(phi, dtype=np.float64), 2.0 * np.pi)
        step = np.pi / 2.0 ** (self.b_phi - 1)
        offset = np.pi / 2.0**self.b_phi
        codes = np.round((phi - offset) / step).astype(np.int64)
        return np.mod(codes, 2**self.b_phi)

    def dequantize_phi(self, codes: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`quantize_phi` (codebook centers)."""
        codes = np.asarray(codes, dtype=np.int64)
        step = np.pi / 2.0 ** (self.b_phi - 1)
        offset = np.pi / 2.0**self.b_phi
        return codes * step + offset

    # -- psi ------------------------------------------------------------------

    def quantize_psi(self, psi: np.ndarray) -> np.ndarray:
        """Map rotation angles in [0, pi/2] to codes 0..2^b_psi - 1."""
        psi = np.clip(np.asarray(psi, dtype=np.float64), 0.0, np.pi / 2.0)
        step = np.pi / 2.0 ** (self.b_psi + 1)
        offset = np.pi / 2.0 ** (self.b_psi + 2)
        codes = np.round((psi - offset) / step).astype(np.int64)
        return np.clip(codes, 0, 2**self.b_psi - 1)

    def dequantize_psi(self, codes: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`quantize_psi` (codebook centers)."""
        codes = np.asarray(codes, dtype=np.int64)
        step = np.pi / 2.0 ** (self.b_psi + 1)
        offset = np.pi / 2.0 ** (self.b_psi + 2)
        return codes * step + offset

    # -- convenience -------------------------------------------------------------

    @property
    def bits_per_angle_pair(self) -> int:
        """Bits for one phi plus one psi angle."""
        return self.b_phi + self.b_psi

    @classmethod
    def from_codebook(cls, name: str) -> "AngleQuantizer":
        """Build from a named standard codebook (see :data:`CODEBOOKS`)."""
        try:
            b_phi, b_psi = CODEBOOKS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown codebook {name!r}; options: {sorted(CODEBOOKS)}"
            ) from None
        return cls(b_phi=b_phi, b_psi=b_psi)


def quantize_angles(
    angles: GivensAngles, quantizer: AngleQuantizer
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize a :class:`GivensAngles` bundle to integer code arrays."""
    return (
        quantizer.quantize_phi(angles.phi),
        quantizer.quantize_psi(angles.psi),
    )


def dequantize_angles(
    phi_codes: np.ndarray,
    psi_codes: np.ndarray,
    quantizer: AngleQuantizer,
    n_tx: int,
    n_streams: int,
) -> GivensAngles:
    """Rebuild a :class:`GivensAngles` bundle from integer codes."""
    return GivensAngles(
        phi=quantizer.dequantize_phi(phi_codes),
        psi=quantizer.dequantize_psi(psi_codes),
        n_tx=n_tx,
        n_streams=n_streams,
    )
