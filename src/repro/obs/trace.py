"""Run-scoped span tracing for the runtime engine.

A :class:`Tracer` records **spans** — named, nested intervals measured
with monotonic timestamps — for one engine run: engine run → plan →
wave → dispatch → per-task execute, plus store get/put, retries,
backoff, pool rebuilds, and payload spills.  Workers record their own
task-execute spans locally and ship them back piggybacked on the
executor's outcome tuples, so coordinator and worker telemetry merge
into a single timeline.

Determinism contract: the span *tree* is content-derived.  A span's id
is a short hash of ``(parent_id, name, occurrence_index)`` — never a
pid, never a timestamp — so two runs of the same configuration produce
the same span set, the same tree, and the same ids; only the recorded
timestamps (and the pid *attributes* used to lay out worker lanes)
vary.  Telemetry lives entirely outside the result artifacts:
manifests are byte-identical with tracing on or off.

Cost contract: the disabled path is a near-zero no-op.  Library
instrumentation points call :func:`current_tracer` — one module-global
read and a ``None`` check — and skip everything else when no tracer is
installed.

Activation (mirrors :mod:`repro.runtime.faults`):

- pass ``trace=<dir>`` (or a :class:`Tracer`) to ``ExperimentEngine``,
  ``ZooBuilder``, or ``NetworkCampaign``;
- set ``$REPRO_RUNTIME_TRACE=<dir>`` to trace every engine run in the
  process;
- or :func:`install_tracer` one explicitly (tests do this).

Timestamps are ``time.perf_counter`` readings relative to the trace
epoch.  Worker processes are forked from the coordinator, so their
clock shares the same base and the merged timeline is coherent; on
platforms without fork the worker lanes are still internally
consistent but may be offset from the coordinator's.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import Metrics

__all__ = [
    "TRACE_ENV",
    "Span",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "span_id",
    "tracer_for_run",
]

#: Environment variable naming a directory to write traces into.
TRACE_ENV = "REPRO_RUNTIME_TRACE"

#: Length of the hex span ids (48 bits: collision-safe for any real run).
_ID_HEX = 12

#: Id of every root span's implicit parent.
ROOT_PARENT = ""


def span_id(parent: str, name: str, index: int) -> str:
    """Content-derived span id: hash of (parent id, name, occurrence).

    Pure function of the span's position in the tree — two runs of the
    same configuration assign identical ids, whatever the worker count
    or wall clock, and a worker can derive its task span's id from the
    coordinator-provided parent without any shared counter.
    """
    text = f"{parent}|{name}|{index}"
    return hashlib.sha256(text.encode()).hexdigest()[:_ID_HEX]


@dataclass
class Span:
    """One recorded interval (see module docstring for the id contract)."""

    span_id: str
    parent_id: str
    name: str
    category: str
    start_s: float
    end_s: float = 0.0
    pid: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "pid": self.pid,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects one run's spans and metrics (see module docstring).

    Parameters
    ----------
    name:
        The root label (``"engine:fig09"``, ``"campaign:network-scale"``).
    out_dir:
        Directory the owning engine writes the trace into at run end
        (``None`` = in-memory only; export explicitly via
        :func:`repro.obs.export.write_trace`).
    epoch:
        ``perf_counter`` origin for timestamps; workers receive the
        coordinator's epoch so the merged timeline is coherent.
    """

    def __init__(
        self,
        name: str = "run",
        out_dir: "str | os.PathLike | None" = None,
        epoch: "float | None" = None,
    ) -> None:
        self.name = name
        self.out_dir = None if out_dir is None else str(out_dir)
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.pid = os.getpid()
        self.spans: "list[Span]" = []
        self.metrics = Metrics()
        self._stack: "list[str]" = []
        self._counts: "dict[tuple[str, str], int]" = {}
        self._lock = threading.RLock()

    # -- span recording ----------------------------------------------------------

    def now(self) -> float:
        """Seconds since the trace epoch (monotonic)."""
        return time.perf_counter() - self.epoch

    def current_span_id(self) -> str:
        """Id of the innermost open span (root parent when none is)."""
        return self._stack[-1] if self._stack else ROOT_PARENT

    def _next_id(self, parent: str, name: str) -> str:
        with self._lock:
            key = (parent, name)
            index = self._counts.get(key, 0)
            self._counts[key] = index + 1
        return span_id(parent, name, index)

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "run",
        parent: "str | None" = None,
        fixed_id: "str | None" = None,
        **attrs,
    ):
        """Record the enclosed block as a span (nests via a stack).

        ``parent``/``fixed_id`` override the stack-derived tree — the
        executor uses them to give task spans *logical* parents (the
        run's execute phase) rather than transport-dependent ones, so
        the tree does not change shape with the worker count.
        """
        parent_id = self.current_span_id() if parent is None else parent
        sid = fixed_id or self._next_id(parent_id, name)
        entry = Span(
            span_id=sid,
            parent_id=parent_id,
            name=name,
            category=category,
            start_s=self.now(),
            pid=self.pid,
            attrs=dict(attrs),
        )
        self._stack.append(sid)
        try:
            yield entry
        finally:
            self._stack.pop()
            entry.end_s = self.now()
            with self._lock:
                self.spans.append(entry)

    def event(self, name: str, category: str = "run", **attrs) -> None:
        """Record an instantaneous marker (a zero-duration span)."""
        parent = self.current_span_id()
        sid = self._next_id(parent, name)
        now = self.now()
        with self._lock:
            self.spans.append(
                Span(
                    span_id=sid,
                    parent_id=parent,
                    name=name,
                    category=category,
                    start_s=now,
                    end_s=now,
                    pid=self.pid,
                    attrs=dict(attrs),
                )
            )

    # -- worker telemetry merge --------------------------------------------------

    def absorb(self, span_dicts) -> None:
        """Merge spans recorded in a worker process (already id-assigned)."""
        with self._lock:
            for payload in span_dicts:
                self.spans.append(
                    Span(
                        span_id=payload["id"],
                        parent_id=payload["parent"],
                        name=payload["name"],
                        category=payload["cat"],
                        start_s=payload["start_s"],
                        end_s=payload["end_s"],
                        pid=payload["pid"],
                        attrs=dict(payload["attrs"]),
                    )
                )

    def export_spans(self) -> "list[dict]":
        """The recorded spans as JSON-able dicts (IPC and exporters)."""
        with self._lock:
            return [span.to_dict() for span in self.spans]


#: The process-wide tracer instrumentation points consult.  ``None``
#: (the steady state) is the module flag that makes every disabled-path
#: check a single global read.
_ACTIVE: "Tracer | None" = None


def current_tracer() -> "Tracer | None":
    """The installed tracer, or ``None`` (the near-zero disabled path)."""
    return _ACTIVE


def install_tracer(tracer: "Tracer | None") -> "Tracer | None":
    """Install ``tracer`` process-wide; returns the previous one.

    The engines install their run's tracer for the run's duration so
    store get/put instrumentation (which happens far from any engine
    kwarg) lands in the same timeline, then restore the previous value.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def tracer_for_run(trace, name: str) -> "tuple[Tracer | None, bool]":
    """Resolve a run's ``trace=`` kwarg into ``(tracer, owned)``.

    Resolution order: an explicit value wins (``False`` disables even
    under ``$REPRO_RUNTIME_TRACE``; a :class:`Tracer` is used as-is and
    the caller exports it; a path creates an owned tracer written there
    at run end), then an already-installed tracer (a campaign's nested
    zoo build joins the campaign's timeline instead of starting its
    own), then the environment variable.  ``owned=True`` means the
    engine created the tracer and must write it out when the run ends.
    """
    if trace is False:
        return None, False
    if isinstance(trace, Tracer):
        return trace, False
    if trace is not None:
        return Tracer(name=name, out_dir=trace), True
    if _ACTIVE is not None:
        return _ACTIVE, False
    # Lazy import: repro.runtime.__init__ -> engine -> this module, so a
    # module-level knobs import would re-enter a partially-initialised
    # package when repro.obs.trace is imported first.
    from repro.runtime.knobs import read_knob

    configured = read_knob(TRACE_ENV)
    if configured:
        return Tracer(name=name, out_dir=configured), True
    return None, False
