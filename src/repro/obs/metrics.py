"""Run-wide metrics: counters, gauges, and summary histograms.

A :class:`Metrics` registry rides on each :class:`~repro.obs.trace.
Tracer` and captures the run's scalar telemetry — cache hit ratios,
retries, quarantines, queue depths, IPC message/byte counts, payload
dedupe ratios — as one coherent surface next to the span timeline.
The engines fold their :class:`~repro.runtime.executor.RunHealth` and
per-store :class:`~repro.runtime.cache.StoreHealth` counters in at run
end, so everything PR 6 counts is queryable from the trace too.

All three families are plain dicts of floats with deterministic
(sorted) export order; histograms keep summary statistics (count,
total, min, max) rather than samples, so a trace's metric *structure*
is as reproducible as its span tree — only the measured values vary.
Updates are lock-guarded: worker chunks merge their telemetry from the
coordinator thread while engine code may still be recording.
"""

from __future__ import annotations

import threading

__all__ = ["Metrics"]


class Metrics:
    """Counter / gauge / histogram registry (see module docstring)."""

    def __init__(self) -> None:
        self.counters: "dict[str, float]" = {}
        self.gauges: "dict[str, float]" = {}
        self.histograms: "dict[str, dict]" = {}
        self._lock = threading.Lock()

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into histogram ``name``'s summary statistics."""
        value = float(value)
        with self._lock:
            entry = self.histograms.get(name)
            if entry is None:
                entry = {"count": 0, "total": 0.0, "min": value, "max": value}
                self.histograms[name] = entry
            entry["count"] += 1
            entry["total"] += value
            entry["min"] = min(entry["min"], value)
            entry["max"] = max(entry["max"], value)

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 when never touched)."""
        with self._lock:
            return self.counters.get(name, 0.0)

    def merge_counters(self, counters: "dict[str, float]") -> None:
        """Fold a mapping of counter deltas in (worker telemetry)."""
        with self._lock:
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0.0) + value

    def ratio_gauge(self, name: str, numerator: float, denominator: float) -> None:
        """Record ``numerator/denominator`` (0.0 when empty) as a gauge."""
        self.set_gauge(
            name, numerator / denominator if denominator else 0.0
        )

    def to_dict(self) -> dict:
        """Deterministically ordered JSON-able snapshot."""
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "histograms": {
                    name: {
                        "count": entry["count"],
                        "total": entry["total"],
                        "mean": (
                            entry["total"] / entry["count"]
                            if entry["count"]
                            else 0.0
                        ),
                        "min": entry["min"],
                        "max": entry["max"],
                    }
                    for name, entry in sorted(self.histograms.items())
                },
            }
