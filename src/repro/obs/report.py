"""Trace analysis: critical path, slowest tasks, cache statistics.

``python -m repro.obs report <trace>`` loads a trace (a directory
containing ``trace.jsonl``, or the JSONL file itself) and prints the
text summary this module renders: the run's wall time, a per-category
time rollup, the **critical path** — the dependency chain of task
spans with the largest cumulative duration, i.e. the lower bound on
wall time no worker count can beat — the top-k slowest tasks, and the
cache/retry counters.

The critical path is computed over the recorded task spans using the
``deps`` attribute the executor stamps on each one (the task DAG's
edges), via a longest-path dynamic program in topological order —
re-deriving it from the trace alone, with no access to the original
scenario.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "critical_path",
    "load_trace",
    "render_report",
    "task_rows",
]

#: Category the executor stamps on per-task execute spans.
TASK_CATEGORY = "task"


def load_trace(path: "str | Path") -> "list[dict]":
    """Parse a trace into its event dicts.

    ``path`` may be the trace directory (reads ``trace.jsonl`` inside)
    or any JSONL event file.
    """
    target = Path(path)
    if target.is_dir():
        target = target / "trace.jsonl"
    if not target.is_file():
        raise ConfigurationError(f"no trace at {target}")
    events = []
    with open(target) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                raise ConfigurationError(
                    f"{target}:{line_no}: not valid JSON ({exc})"
                ) from None
    return events


def _spans(events) -> "list[dict]":
    return [event for event in events if event.get("type") == "span"]


def _metrics(events) -> dict:
    for event in events:
        if event.get("type") == "metrics":
            return event
    return {"counters": {}, "gauges": {}, "histograms": {}}


def _duration(span: dict) -> float:
    return max(0.0, span["end_s"] - span["start_s"])


def task_rows(events) -> "list[dict]":
    """All task-execute spans, latest attempt per task id."""
    rows: "dict[str, dict]" = {}
    for span in _spans(events):
        if span.get("cat") != TASK_CATEGORY:
            continue
        task = span["attrs"].get("task", span["name"])
        attempt = span["attrs"].get("attempt", 0)
        held = rows.get(task)
        if held is None or held["attrs"].get("attempt", 0) <= attempt:
            rows[task] = span
    return list(rows.values())


def critical_path(events) -> "tuple[list[str], float]":
    """``(task chain, cumulative seconds)`` of the longest dependency path.

    Longest-path DP over the task spans' recorded ``deps`` edges; ties
    break lexicographically so the named chain is deterministic.
    Dependencies without a recorded span (cache-served points never
    execute) contribute zero time, which is exactly their cost.
    """
    rows = {row["attrs"].get("task", row["name"]): row for row in task_rows(events)}
    best: "dict[str, tuple[float, tuple[str, ...]]]" = {}

    order = sorted(rows)
    resolved: "set[str]" = set()
    # Dependencies always precede their dependents in the DAG; iterate
    # until the fixed point so recording order cannot matter.
    while order:
        progressed = False
        deferred = []
        for task in order:
            deps = [
                dep
                for dep in rows[task]["attrs"].get("deps", [])
                if dep in rows
            ]
            if any(dep not in resolved for dep in deps):
                deferred.append(task)
                continue
            chains = [best[dep] for dep in deps]
            base_s, base_chain = max(
                chains, default=(0.0, ()), key=lambda item: (item[0], item[1])
            )
            best[task] = (
                base_s + _duration(rows[task]),
                base_chain + (task,),
            )
            resolved.add(task)
            progressed = True
        if not progressed:
            # A dependency cycle can only come from a mangled trace;
            # fall back to treating the remainder as independent.
            for task in deferred:
                best[task] = (_duration(rows[task]), (task,))
            break
        order = deferred
    if not best:
        return [], 0.0
    total, chain = max(
        best.values(), key=lambda item: (item[0], item[1])
    )
    return list(chain), total


def _format_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1e3:.1f} ms"


def render_report(events, top_k: int = 10) -> str:
    """The human-readable summary for one trace's events."""
    meta = next(
        (event for event in events if event.get("type") == "meta"), {}
    )
    spans = _spans(events)
    metrics = _metrics(events)
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})

    title = f"trace report: {meta.get('name', '<unnamed>')}"
    lines = [title, "=" * len(title)]
    if spans:
        start = min(span["start_s"] for span in spans)
        end = max(span["end_s"] for span in spans)
        pids = sorted({span["pid"] for span in spans})
        lines.append(
            f"wall time {_format_s(end - start)} across "
            f"{len(spans)} span(s), {len(pids)} process(es)"
        )
    else:
        lines.append("no spans recorded")

    by_category: "dict[str, tuple[int, float]]" = {}
    for span in spans:
        count, total = by_category.get(span["cat"], (0, 0.0))
        by_category[span["cat"]] = (count + 1, total + _duration(span))
    if by_category:
        lines.append("")
        lines.append("time by category (wall, overlapping):")
        for category, (count, total) in sorted(
            by_category.items(), key=lambda item: (-item[1][1], item[0])
        ):
            lines.append(
                f"  {category:<12} {count:>5} span(s)  {_format_s(total)}"
            )

    chain, chain_s = critical_path(events)
    lines.append("")
    if chain:
        lines.append(
            f"critical path ({len(chain)} task(s), {_format_s(chain_s)}):"
        )
        for task in chain:
            lines.append(f"  -> {task}")
    else:
        lines.append("critical path: none (no task spans)")

    tasks = sorted(
        task_rows(events),
        key=lambda row: (-_duration(row), row["attrs"].get("task", row["name"])),
    )
    if tasks:
        lines.append("")
        lines.append(f"top {min(top_k, len(tasks))} slowest task(s):")
        for row in tasks[:top_k]:
            label = row["attrs"].get("task", row["name"])
            where = "worker" if row["pid"] != meta.get("pid") else "coordinator"
            lines.append(
                f"  {_format_s(_duration(row)):>10}  {label}  [{where}]"
            )

    cache_keys = [
        ("cache.hits", "cache hits"),
        ("cache.misses", "cache misses"),
        ("checkpoint.hits", "checkpoint hits"),
        ("checkpoint.misses", "checkpoint misses"),
        ("store.quarantined", "store quarantines"),
        ("executor.retries", "retries"),
        ("executor.worker_crashes", "worker crashes"),
        ("executor.messages", "IPC messages"),
        ("executor.message_bytes", "IPC bytes"),
        ("payloads.interned", "payload interns"),
        ("payloads.unique", "unique payloads"),
    ]
    stat_lines = []
    for key, label in cache_keys:
        if key in counters:
            stat_lines.append(f"  {label:<18} {counters[key]:g}")
    for key in sorted(gauges):
        stat_lines.append(f"  {key:<18} {gauges[key]:.3f}")
    if stat_lines:
        lines.append("")
        lines.append("cache / runtime statistics:")
        lines.extend(stat_lines)
    return "\n".join(lines)
