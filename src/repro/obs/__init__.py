"""Observability for the runtime engine: tracing, metrics, reports.

See :mod:`repro.obs.trace` for the span/determinism model,
:mod:`repro.obs.export` for the artifact formats, and
``python -m repro.obs report <trace>`` for the CLI.
"""

from repro.obs.export import (
    CHROME_NAME,
    JSONL_NAME,
    SUMMARY_NAME,
    TRACE_SCHEMA_VERSION,
    chrome_trace_payload,
    trace_events,
    validate_events,
    write_trace,
)
from repro.obs.metrics import Metrics
from repro.obs.report import critical_path, load_trace, render_report
from repro.obs.trace import (
    TRACE_ENV,
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    span_id,
    tracer_for_run,
)

__all__ = [
    "CHROME_NAME",
    "JSONL_NAME",
    "Metrics",
    "SUMMARY_NAME",
    "Span",
    "TRACE_ENV",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "chrome_trace_payload",
    "critical_path",
    "current_tracer",
    "install_tracer",
    "load_trace",
    "render_report",
    "span_id",
    "trace_events",
    "tracer_for_run",
    "validate_events",
    "write_trace",
]
