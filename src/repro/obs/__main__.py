"""Trace CLI: ``python -m repro.obs <command> <trace>``.

Commands
--------
``report <trace> [--top N]``
    Print the text summary (critical path, slowest tasks, cache stats)
    for a trace directory or ``trace.jsonl`` file.
``validate <trace>``
    Check every event against the trace schema; exit non-zero and list
    the violations if any.  CI runs this on freshly written traces.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError
from repro.obs.export import validate_events
from repro.obs.report import load_trace, render_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="inspect runtime traces written by $REPRO_RUNTIME_TRACE or trace=",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser(
        "report", help="print the trace summary (critical path, slowest tasks)"
    )
    report.add_argument("trace", help="trace directory or trace.jsonl file")
    report.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many slowest tasks to list (default 10)",
    )

    validate = commands.add_parser(
        "validate", help="check the trace against the event schema"
    )
    validate.add_argument("trace", help="trace directory or trace.jsonl file")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        events = load_trace(args.trace)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.command == "validate":
        errors = validate_events(events)
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            print(f"invalid trace: {len(errors)} error(s)", file=sys.stderr)
            return 1
        print(f"valid trace: {len(events)} event(s)")
        return 0
    print(render_report(events, top_k=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
