"""Trace exporters: JSONL event log, Chrome trace-event JSON, summary.

One traced run exports three artifacts into its trace directory:

``trace.jsonl``
    The source of truth: one JSON object per line.  The first line is
    a ``meta`` record (schema version, run name, coordinator pid), the
    following lines are ``span`` records (see
    :meth:`repro.obs.trace.Span.to_dict`) and one ``metrics`` record.
    :func:`validate_events` checks every line against
    :data:`EVENT_SCHEMA`; the CI smoke step runs it on a fresh trace.

``chrome_trace.json``
    The same spans in Chrome trace-event format — load it in Perfetto
    or ``chrome://tracing``.  Processes are mapped to stable lanes
    (coordinator = lane 0, workers in ascending pid order) with ``M``
    metadata rows naming them; span events are complete (``"ph": "X"``)
    events carrying the span id/parent in ``args``.

``summary.txt``
    The text report (critical path, top-k slowest tasks, cache stats)
    also available via ``python -m repro.obs report <trace>``.

Span records never carry result values — only names, ids, timestamps,
and small scalar attributes — so exporting a trace cannot perturb the
byte-deterministic result artifacts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = [
    "EVENT_SCHEMA",
    "JSONL_NAME",
    "CHROME_NAME",
    "SUMMARY_NAME",
    "TRACE_SCHEMA_VERSION",
    "chrome_trace_payload",
    "validate_events",
    "write_trace",
]

#: Bump when the trace event layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

JSONL_NAME = "trace.jsonl"
CHROME_NAME = "chrome_trace.json"
SUMMARY_NAME = "summary.txt"

#: Required keys (and their types) per event ``type``.  ``validate_events``
#: checks each JSONL line against this — it is the schema the CI smoke
#: step enforces on freshly written traces.
EVENT_SCHEMA: "dict[str, dict[str, type | tuple]]" = {
    "meta": {
        "schema_version": int,
        "name": str,
        "pid": int,
    },
    "span": {
        "id": str,
        "parent": str,
        "name": str,
        "cat": str,
        "start_s": (int, float),
        "end_s": (int, float),
        "pid": int,
        "attrs": dict,
    },
    "metrics": {
        "counters": dict,
        "gauges": dict,
        "histograms": dict,
    },
}


def meta_record(tracer) -> dict:
    return {
        "type": "meta",
        "schema_version": TRACE_SCHEMA_VERSION,
        "name": tracer.name,
        "pid": tracer.pid,
    }


def trace_events(tracer) -> "list[dict]":
    """All JSONL records for one tracer: meta, spans, metrics."""
    events = [meta_record(tracer)]
    events.extend(tracer.export_spans())
    events.append({"type": "metrics", **tracer.metrics.to_dict()})
    return events


def validate_events(events) -> "list[str]":
    """Schema errors for a sequence of event dicts (empty = valid)."""
    errors: "list[str]" = []
    saw_meta = False
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {index}: not an object")
            continue
        kind = event.get("type")
        schema = EVENT_SCHEMA.get(kind)
        if schema is None:
            errors.append(f"event {index}: unknown type {kind!r}")
            continue
        if kind == "meta":
            saw_meta = True
            if event.get("schema_version") != TRACE_SCHEMA_VERSION:
                errors.append(
                    f"event {index}: schema_version "
                    f"{event.get('schema_version')!r} != {TRACE_SCHEMA_VERSION}"
                )
        for key, expected in schema.items():
            if key not in event:
                errors.append(f"event {index} ({kind}): missing key {key!r}")
            elif not isinstance(event[key], expected):
                errors.append(
                    f"event {index} ({kind}): key {key!r} has type "
                    f"{type(event[key]).__name__}"
                )
        if kind == "span":
            start = event.get("start_s")
            end = event.get("end_s")
            if (
                isinstance(start, (int, float))
                and isinstance(end, (int, float))
                and end < start
            ):
                errors.append(f"event {index} (span): end_s < start_s")
    if not saw_meta:
        errors.append("no meta record")
    return errors


def _lane_map(tracer) -> "dict[int, int]":
    """Stable pid -> display-lane map: coordinator 0, workers by pid."""
    workers = sorted(
        {span.pid for span in tracer.spans if span.pid != tracer.pid}
    )
    lanes = {tracer.pid: 0}
    for index, pid in enumerate(workers):
        lanes[pid] = index + 1
    return lanes


def chrome_trace_payload(tracer) -> dict:
    """The tracer's spans as a Chrome trace-event JSON payload.

    Structure (event names, ids, parents, lane layout) is content-
    derived; only timestamps and the raw ``pid`` args vary between
    runs of the same configuration.
    """
    lanes = _lane_map(tracer)
    events = []
    for pid, lane in sorted(lanes.items(), key=lambda item: item[1]):
        label = "coordinator" if lane == 0 else f"worker-{lane}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": lane,
                "tid": 0,
                "args": {"name": label},
            }
        )
    spans = sorted(
        tracer.spans, key=lambda span: (span.start_s, span.span_id)
    )
    for span in spans:
        lane = lanes.get(span.pid, 0)
        events.append(
            {
                "name": span.name,
                "cat": span.category or "run",
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": lane,
                "tid": lane,
                "args": {
                    "id": span.span_id,
                    "parent": span.parent_id,
                    **span.attrs,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(tracer, out_dir: "str | os.PathLike | None" = None) -> str:
    """Write all three artifacts; returns the trace directory.

    ``out_dir`` defaults to the tracer's own ``out_dir`` (set when the
    engine created it from a path or ``$REPRO_RUNTIME_TRACE``).
    """
    from repro.errors import ConfigurationError
    from repro.obs.report import render_report

    target = out_dir if out_dir is not None else tracer.out_dir
    if target is None:
        raise ConfigurationError(
            "no trace directory: pass out_dir or create the tracer with one"
        )
    root = Path(target)
    root.mkdir(parents=True, exist_ok=True)
    events = trace_events(tracer)
    with open(root / JSONL_NAME, "w") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    with open(root / CHROME_NAME, "w") as handle:
        json.dump(chrome_trace_payload(tracer), handle, indent=2)
        handle.write("\n")
    with open(root / SUMMARY_NAME, "w") as handle:
        handle.write(render_report(events) + "\n")
    return str(root)
