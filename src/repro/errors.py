"""Exception hierarchy for the SplitBeam reproduction.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch library failures
without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class ShapeError(ReproError):
    """An array argument has the wrong shape or dtype."""


class TrainingError(ReproError):
    """Model training failed or was configured inconsistently."""


class FeedbackError(ReproError):
    """A beamforming-feedback codec failed to encode or decode."""


class ConstraintViolation(ReproError):
    """A BOP constraint (BER or delay) cannot be satisfied."""


class DatasetError(ReproError):
    """A dataset is missing, malformed, or inconsistent with its catalog."""
