"""Train/validation/test splitting (8:1:1, Sec. IV-D)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import as_generator

__all__ = ["SplitIndices", "split_indices"]


@dataclass(frozen=True)
class SplitIndices:
    """Disjoint sample-index arrays covering ``range(n)``."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    @property
    def n_total(self) -> int:
        return self.train.size + self.val.size + self.test.size


def split_indices(
    n_samples: int,
    ratios: tuple[float, float, float] = (8.0, 1.0, 1.0),
    shuffle: bool = True,
    rng: "int | np.random.Generator | None" = 0,
) -> SplitIndices:
    """Partition ``range(n_samples)`` into train/val/test by ``ratios``.

    The paper splits 8:1:1.  ``shuffle=False`` keeps temporal order
    (useful when the stream is strongly time-correlated and leakage
    between adjacent samples matters).
    """
    if n_samples < 3:
        raise DatasetError(f"need at least 3 samples to split, got {n_samples}")
    total = float(sum(ratios))
    if total <= 0 or any(r < 0 for r in ratios):
        raise DatasetError(f"invalid split ratios {ratios}")
    indices = np.arange(n_samples)
    if shuffle:
        indices = as_generator(rng).permutation(n_samples)
    n_train = int(round(n_samples * ratios[0] / total))
    n_val = int(round(n_samples * ratios[1] / total))
    n_train = min(n_train, n_samples - 2)
    n_val = max(1, min(n_val, n_samples - n_train - 1))
    return SplitIndices(
        train=indices[:n_train],
        val=indices[n_train : n_train + n_val],
        test=indices[n_train + n_val :],
    )
