"""Dataset persistence as compressed ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DatasetError
from repro.datasets.builder import CsiDataset
from repro.datasets.catalog import DatasetSpec
from repro.datasets.splits import SplitIndices

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: CsiDataset, path: str) -> None:
    """Write a :class:`CsiDataset` to ``path`` (``.npz``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    spec = dataset.spec
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        dataset_id=spec.dataset_id,
        n_users=spec.n_users,
        bandwidth_mhz=spec.bandwidth_mhz,
        env_name=spec.env_name,
        n_samples=spec.n_samples,
        csi=dataset.csi,
        bf=dataset.bf,
        train=dataset.splits.train,
        val=dataset.splits.val,
        test=dataset.splits.test,
    )


def load_dataset(path: str) -> CsiDataset:
    """Read a dataset written by :func:`save_dataset`."""
    if not os.path.exists(path):
        raise DatasetError(f"dataset file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported dataset format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        spec = DatasetSpec(
            dataset_id=str(data["dataset_id"]),
            n_users=int(data["n_users"]),
            bandwidth_mhz=int(data["bandwidth_mhz"]),
            env_name=str(data["env_name"]),
            n_samples=int(data["n_samples"]),
        )
        splits = SplitIndices(
            train=data["train"], val=data["val"], test=data["test"]
        )
        return CsiDataset(
            spec=spec, csi=data["csi"], bf=data["bf"], splits=splits
        )
