"""CSI preprocessing, mirroring the paper's pipeline (Sec. 5.2.1).

1. **Alignment** — different STAs drop different packets; samples are
   matched by packet sequence number so "each CSI element collected over
   different STAs represents the same time and frequency domain channel
   measurement".
2. **Amplitude normalization** — each sample is divided by its mean
   amplitude over all subcarriers, removing unwanted gain variation.
3. **Moving median** — a 10-point moving median along time smooths
   estimation noise (applied to real and imaginary parts).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.channels.sampler import CsiBatch

__all__ = [
    "align_users",
    "normalize_amplitude",
    "moving_median",
    "preprocess_csi",
]


def align_users(batches: "list[CsiBatch]") -> np.ndarray:
    """Keep only packets received by every user, matched by sequence.

    Returns ``(n_aligned, n_users, S, Nr, Nt)``.
    """
    if not batches:
        raise DatasetError("no user batches to align")
    common = batches[0].sequence
    for batch in batches[1:]:
        common = np.intersect1d(common, batch.sequence, assume_unique=True)
    if common.size == 0:
        raise DatasetError("users share no common packets after drops")
    aligned = []
    for batch in batches:
        # Positions of the common sequence numbers within this batch.
        positions = np.searchsorted(batch.sequence, common)
        if not np.array_equal(batch.sequence[positions], common):
            raise DatasetError("sequence numbers are not sorted/unique")
        aligned.append(batch.csi[positions])
    return np.stack(aligned, axis=1)


def normalize_amplitude(csi: np.ndarray) -> np.ndarray:
    """Divide each (sample, user) CSI matrix by its mean amplitude.

    ``csi`` has shape ``(n, n_users, S, Nr, Nt)`` (or ``(n, S, Nr,
    Nt)`` for a single user); the mean runs over all subcarriers and
    antenna pairs of that sample.
    """
    csi = np.asarray(csi, dtype=np.complex128)
    axes = tuple(range(csi.ndim - 3, csi.ndim))
    mean_amp = np.mean(np.abs(csi), axis=axes, keepdims=True)
    if np.any(mean_amp == 0):
        raise DatasetError("zero-amplitude CSI sample cannot be normalized")
    return csi / mean_amp


def moving_median(csi: np.ndarray, window: int = 10) -> np.ndarray:
    """``window``-point moving median along the time axis (axis 0).

    Real and imaginary parts are filtered separately; the window is
    trailing (causal) and truncated at the start of the stream, so the
    output has the same length as the input.
    """
    if window < 1:
        raise DatasetError("window must be >= 1")
    csi = np.asarray(csi, dtype=np.complex128)
    if window == 1 or csi.shape[0] == 1:
        return csi.copy()
    n = csi.shape[0]
    out = np.empty_like(csi)
    # Sliding windows over a modest n: direct median per step is fine and
    # keeps memory bounded.
    for t in range(n):
        start = max(0, t - window + 1)
        block = csi[start : t + 1]
        out[t] = np.median(block.real, axis=0) + 1j * np.median(block.imag, axis=0)
    return out


def preprocess_csi(
    csi: np.ndarray, median_window: int = 10, normalize: bool = True
) -> np.ndarray:
    """Full pipeline: moving median then amplitude normalization."""
    csi = moving_median(csi, window=median_window)
    if normalize:
        csi = normalize_amplitude(csi)
    return csi
