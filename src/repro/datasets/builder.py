"""Dataset construction: from channel sampling to training arrays.

A :class:`CsiDataset` bundles, for one Table I entry:

- the preprocessed multi-user CSI tensor (used both as DNN input and as
  the propagation channel in BER measurements — the paper likewise uses
  its *measured* CSI as the channel in its MATLAB BER program);
- the supervised targets: gauge-fixed SVD beamforming vectors per user
  and subcarrier;
- frozen 8:1:1 split indices.

The builder emulates the collection campaign: several sessions (fresh
channel realizations and placements), packet drops, alignment by
sequence number, a 10-point moving median, and per-sample amplitude
normalization.  Within a session the channel is additionally re-drawn
every ``reset_interval`` packets, standing in for the paper's repeated,
well-separated measurement runs (the source of sample diversity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.config import FAST, Fidelity
from repro.errors import DatasetError
from repro.channels.sampler import CsiSampler
from repro.datasets.catalog import DatasetSpec
from repro.datasets.preprocess import align_users, moving_median, normalize_amplitude
from repro.datasets.splits import SplitIndices, split_indices
from repro.phy.svd import beamforming_matrices
from repro.utils.complexmat import complex_to_real
from repro.utils.rng import as_generator

__all__ = ["CsiDataset", "build_dataset"]


@dataclass
class CsiDataset:
    """A ready-to-train dataset for one network configuration."""

    spec: DatasetSpec
    csi: np.ndarray  # (n, n_users, S, Nr, Nt) complex
    bf: np.ndarray  # (n, n_users, S, Nt) complex (gauge-fixed SVD)
    splits: SplitIndices

    def __post_init__(self) -> None:
        if self.csi.ndim != 5 or self.bf.ndim != 4:
            raise DatasetError(
                f"bad dataset tensors: csi {self.csi.shape}, bf {self.bf.shape}"
            )
        if self.csi.shape[0] != self.bf.shape[0]:
            raise DatasetError("csi and bf sample counts differ")

    # -- dimensions ----------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return int(self.csi.shape[0])

    @property
    def n_users(self) -> int:
        return int(self.csi.shape[1])

    @property
    def n_subcarriers(self) -> int:
        return int(self.csi.shape[2])

    @property
    def input_dim(self) -> int:
        """Flattened real input width ``D = 2 * Nr * Nt * S``."""
        _, _, s, n_rx, n_tx = self.csi.shape
        return 2 * s * n_rx * n_tx

    @property
    def output_dim(self) -> int:
        """Flattened real output width ``2 * Nt * S`` (Nss = 1)."""
        return 2 * self.csi.shape[2] * self.csi.shape[4]

    # -- model arrays ------------------------------------------------------------

    def model_arrays(
        self, indices: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flattened real (X, Y) with one row per (sample, user).

        The paper deploys one model shared by all STAs, so user axes are
        folded into the batch.
        """
        csi = self.csi if indices is None else self.csi[indices]
        bf = self.bf if indices is None else self.bf[indices]
        n, u = csi.shape[:2]
        x = complex_to_real(csi.reshape(n * u, -1))
        y = complex_to_real(bf.reshape(n * u, -1))
        return x, y

    def train_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self.model_arrays(self.splits.train)

    def val_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self.model_arrays(self.splits.val)

    def test_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self.model_arrays(self.splits.test)

    # -- link-simulation views ---------------------------------------------------

    def link_channels(self, indices: np.ndarray | None = None) -> np.ndarray:
        """Channels shaped for the link simulator (n, users, S, Nr, Nt)."""
        return self.csi if indices is None else self.csi[indices]

    def link_bf(self, indices: np.ndarray | None = None) -> np.ndarray:
        """Ground-truth beamforming vectors (n, users, S, Nt)."""
        return self.bf if indices is None else self.bf[indices]


def build_dataset(
    spec: DatasetSpec,
    fidelity: Fidelity = FAST,
    reset_interval: int | None = None,
    median_window: int = 10,
    seed: "int | np.random.Generator | None" = 0,
) -> CsiDataset:
    """Generate a :class:`CsiDataset` for one Table I entry.

    ``fidelity`` controls the sample count (``fidelity.n_samples``
    overrides ``spec.n_samples``), session structure, and channel
    re-randomization cadence (``reset_interval`` overrides it).
    """
    rng = as_generator(seed)
    if reset_interval is None:
        reset_interval = fidelity.reset_interval
    n_target = min(spec.n_samples, fidelity.n_samples)
    n_sessions = max(1, fidelity.n_sessions)
    drop = spec.env.packet_drop_rate
    # Over-collect so alignment losses do not undershoot the target.
    survival = (1.0 - drop) ** spec.n_users
    per_session = math.ceil(n_target / n_sessions / max(survival, 0.1) * 1.15)

    sampler = CsiSampler(
        env=spec.env,
        n_users=spec.n_users,
        n_rx=spec.n_rx,
        n_tx=spec.n_tx,
        band=spec.band,
        rng=rng,
    )

    session_arrays: list[np.ndarray] = []
    for _ in range(n_sessions):
        batches = _collect_with_resets(sampler, per_session, reset_interval)
        smoothed = [
            type(batch)(
                csi=moving_median(batch.csi, window=median_window),
                sequence=batch.sequence,
            )
            for batch in batches
        ]
        session_arrays.append(align_users(smoothed))
    csi = np.concatenate(session_arrays, axis=0)
    if csi.shape[0] < n_target:
        raise DatasetError(
            f"collected {csi.shape[0]} aligned samples < target {n_target}"
        )
    csi = csi[:n_target]
    csi = normalize_amplitude(csi)

    # Supervised targets: gauge-fixed SVD beamforming vector per user.
    bf = beamforming_matrices(csi, n_streams=1)[..., 0]
    splits = split_indices(n_target, rng=rng)
    return CsiDataset(spec=spec, csi=csi, bf=bf, splits=splits)


def _collect_with_resets(
    sampler: CsiSampler, n_packets: int, reset_interval: int
):
    """One session, re-randomizing the channel every ``reset_interval``.

    Implemented by chaining short sampler sessions and re-basing their
    sequence numbers so alignment still works across the whole stream.
    """
    if reset_interval < 1:
        raise DatasetError("reset_interval must be >= 1")
    chunks = []
    base = 0
    remaining = n_packets
    while remaining > 0:
        length = min(reset_interval, remaining)
        batches = sampler.collect_session(length)
        for batch in batches:
            batch.sequence += base
        chunks.append(batches)
        base += length
        remaining -= length
    n_users = len(chunks[0])
    merged = []
    for user in range(n_users):
        csi = np.concatenate([c[user].csi for c in chunks], axis=0)
        seq = np.concatenate([c[user].sequence for c in chunks], axis=0)
        merged.append(type(chunks[0][user])(csi=csi, sequence=seq))
    return merged
