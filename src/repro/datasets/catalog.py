"""The paper's dataset catalog (Table I).

Twelve experimental datasets (2x2 and 3x3 topologies, 20/40/80 MHz, two
environments) plus three MATLAB-synthetic 160 MHz datasets (2x2, 3x3,
4x4).  Each entry records the MU-MIMO topology as (n_users = Nt STAs
with Nr = Nss = 1), the bandwidth, and the environment preset that
substitutes for the corresponding collection campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.channels.environment import Environment, environment
from repro.phy.ofdm import BandPlan, band_plan

__all__ = ["DatasetSpec", "CATALOG", "dataset_spec"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table I."""

    dataset_id: str  # "D1" .. "D15"
    n_users: int  # network order N in "NxN" (= Nt = number of STAs)
    bandwidth_mhz: int
    env_name: str  # "E1", "E2", or "MATLAB"
    n_samples: int = 10_000  # the paper collects 10k per dataset

    def __post_init__(self) -> None:
        if self.n_users < 2:
            raise ConfigurationError("MU-MIMO needs at least 2 users")
        if self.n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")

    @property
    def n_tx(self) -> int:
        return self.n_users

    @property
    def n_rx(self) -> int:
        return 1  # one effective receive antenna / spatial stream per STA

    @property
    def env(self) -> Environment:
        return environment(self.env_name)

    @property
    def band(self) -> BandPlan:
        return band_plan(self.bandwidth_mhz)

    @property
    def config_label(self) -> str:
        return f"{self.n_users}x{self.n_users}"

    def __str__(self) -> str:
        return (
            f"{self.dataset_id}: {self.config_label} @ {self.bandwidth_mhz} MHz "
            f"({self.env_name})"
        )


def _experimental_catalog() -> dict[str, DatasetSpec]:
    """D1-D12 exactly as laid out in Table I."""
    catalog: dict[str, DatasetSpec] = {}
    index = 1
    for bandwidth in (20, 40, 80):
        for env_name in ("E1", "E2"):
            for n_users in (2, 3):
                dataset_id = f"D{index}"
                catalog[dataset_id] = DatasetSpec(
                    dataset_id=dataset_id,
                    n_users=n_users,
                    bandwidth_mhz=bandwidth,
                    env_name=env_name,
                )
                index += 1
    return catalog


CATALOG: dict[str, DatasetSpec] = {
    **_experimental_catalog(),
    "D13": DatasetSpec("D13", 2, 160, "MATLAB"),
    "D14": DatasetSpec("D14", 3, 160, "MATLAB"),
    "D15": DatasetSpec("D15", 4, 160, "MATLAB"),
}


def dataset_spec(dataset_id: str) -> DatasetSpec:
    """Look up a Table I dataset by id (``"D1"`` .. ``"D15"``)."""
    try:
        return CATALOG[dataset_id.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {dataset_id!r}; catalog has D1..D15"
        ) from None
