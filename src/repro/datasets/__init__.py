"""Dataset pipeline: Table I catalog, preprocessing, splits, and I/O."""

from repro.datasets.catalog import DatasetSpec, CATALOG, dataset_spec
from repro.datasets.preprocess import (
    align_users,
    normalize_amplitude,
    moving_median,
    preprocess_csi,
)
from repro.datasets.splits import SplitIndices, split_indices
from repro.datasets.builder import CsiDataset, build_dataset
from repro.datasets.io import save_dataset, load_dataset

__all__ = [
    "DatasetSpec",
    "CATALOG",
    "dataset_spec",
    "align_users",
    "normalize_amplitude",
    "moving_median",
    "preprocess_csi",
    "SplitIndices",
    "split_indices",
    "CsiDataset",
    "build_dataset",
    "save_dataset",
    "load_dataset",
]
