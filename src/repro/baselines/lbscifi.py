"""LB-SciFi [20]: autoencoder compression of Givens-rotation angles.

LB-SciFi keeps the whole 802.11 pipeline at the STA — SVD and Givens
decomposition — and *additionally* runs an autoencoder (AE) encoder over
the resulting angles; the AP decodes and applies inverse Givens
rotations.  Its STA load is therefore SVD + GR + encoder, which is the
structural disadvantage SplitBeam exploits (Sec. II).

The AE here is a dense ``[A, K*A, A]`` network trained unsupervised
(reconstruct its own input, MSE loss) per the reference description;
``A`` is the per-report angle count and ``K`` the compression rate, kept
equal to SplitBeam's for like-for-like comparisons.  Angles are
normalized to [-1, 1] before encoding: ``phi`` over [0, 2pi), ``psi``
over [0, pi/2).
"""

from __future__ import annotations

import numpy as np

from repro.config import FAST, Fidelity
from repro.errors import TrainingError
from repro.baselines.interface import FeedbackScheme
from repro.core.model import SplitBeamNet
from repro.datasets.builder import CsiDataset
from repro.nn.losses import MSELoss
from repro.nn.trainer import Trainer, TrainingConfig
from repro.standard.flopmodel import dot11_flops
from repro.standard.givens import GivensAngles, angle_counts, givens_decompose, givens_reconstruct

__all__ = ["LbSciFi", "train_lbscifi"]

#: Bits per compressed code element fed back over the air.
CODE_BITS: int = 16


def _normalize(angles: GivensAngles) -> np.ndarray:
    """Pack (phi, psi) into one [-1, 1] feature block per report."""
    phi = np.mod(angles.phi, 2.0 * np.pi) / np.pi - 1.0
    psi = angles.psi * (4.0 / np.pi) - 1.0
    batch = phi.shape[:-2]
    flat_phi = phi.reshape(batch + (-1,))
    flat_psi = psi.reshape(batch + (-1,))
    return np.concatenate([flat_phi, flat_psi], axis=-1)


def _denormalize(
    features: np.ndarray, n_sc: int, n_tx: int, n_streams: int
) -> GivensAngles:
    """Invert :func:`_normalize` back into a :class:`GivensAngles`."""
    n_phi, n_psi = angle_counts(n_tx, n_streams)
    batch = features.shape[:-1]
    split = n_sc * n_phi
    phi = (features[..., :split] + 1.0) * np.pi
    psi = np.clip((features[..., split:] + 1.0) * (np.pi / 4.0), 0.0, np.pi / 2)
    return GivensAngles(
        phi=phi.reshape(batch + (n_sc, n_phi)),
        psi=psi.reshape(batch + (n_sc, n_psi)),
        n_tx=n_tx,
        n_streams=n_streams,
    )


class LbSciFi(FeedbackScheme):
    """A trained LB-SciFi scheme ready for evaluation."""

    def __init__(
        self,
        autoencoder: SplitBeamNet,
        n_tx: int,
        n_streams: int = 1,
        compression: float = 1.0 / 8.0,
    ) -> None:
        self.autoencoder = autoencoder
        self.n_tx = int(n_tx)
        self.n_streams = int(n_streams)
        self.compression = float(compression)
        self.name = f"LB-SciFi (K=1/{round(1 / compression)})"

    # -- FeedbackScheme ---------------------------------------------------------

    def reconstruct_bf(
        self, dataset: CsiDataset, indices: np.ndarray
    ) -> np.ndarray:
        bf_true = dataset.link_bf(indices)
        angles = givens_decompose(bf_true[..., :, None])
        features = _normalize(angles)
        n, users = features.shape[:2]
        flat = features.reshape(n * users, -1)
        self.autoencoder.eval()
        decoded = self.autoencoder.forward(flat)
        recovered = _denormalize(
            decoded.reshape(n, users, -1),
            dataset.n_subcarriers,
            self.n_tx,
            self.n_streams,
        )
        return givens_reconstruct(recovered)[..., 0]

    def sta_flops(self, dataset: CsiDataset) -> float:
        spec = dataset.spec
        legacy = dot11_flops(
            spec.n_tx, spec.n_rx, n_subcarriers=dataset.n_subcarriers
        )
        encoder_macs = self.autoencoder.head_macs()
        return legacy + 2.0 * encoder_macs

    def feedback_bits(self, dataset: CsiDataset) -> int:
        return self.autoencoder.bottleneck_dim * CODE_BITS


def train_lbscifi(
    dataset: CsiDataset,
    compression: float = 1.0 / 8.0,
    fidelity: Fidelity = FAST,
    seed: int = 0,
) -> LbSciFi:
    """Train the LB-SciFi autoencoder on a dataset's angle corpus."""
    if not 0 < compression <= 1:
        raise TrainingError(f"compression must be in (0, 1], got {compression}")
    spec = dataset.spec
    angles = givens_decompose(dataset.bf[..., :, None])
    features = _normalize(angles)
    n, users = features.shape[:2]
    flat = features.reshape(n * users, -1)
    width = flat.shape[1]
    code = max(1, int(round(compression * width)))

    autoencoder = SplitBeamNet(
        [width, code, width], activation="leaky_relu", rng=seed
    )
    config = TrainingConfig(
        epochs=fidelity.epochs,
        batch_size=16,
        learning_rate=1e-3,
        optimizer="adam",
        lr_milestones=(
            max(1, fidelity.epochs // 2),
            max(2, (3 * fidelity.epochs) // 4),
        ),
        seed=seed,
    )
    trainer = Trainer(autoencoder, loss=MSELoss(), config=config)

    def rows(split: np.ndarray) -> np.ndarray:
        return features[split].reshape(split.shape[0] * users, -1)

    x_train = rows(dataset.splits.train)
    x_val = rows(dataset.splits.val)
    trainer.fit(x_train, x_train, x_val, x_val)
    return LbSciFi(
        autoencoder=autoencoder,
        n_tx=spec.n_tx,
        n_streams=1,
        compression=compression,
    )
