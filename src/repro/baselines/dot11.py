"""The IEEE 802.11 feedback pipeline as a :class:`FeedbackScheme`.

Per STA and subcarrier: SVD -> Givens decomposition -> standard angle
quantization -> (air) -> dequantization -> Givens reconstruction at the
AP.  ``IdealSvdFeedback`` is the genie upper bound (unquantized V fed
back for free), used for noise calibration and sanity rows in tables.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.interface import FeedbackScheme
from repro.datasets.builder import CsiDataset
from repro.standard.feedback import Dot11FeedbackConfig, bmr_bits
from repro.standard.flopmodel import dot11_flops
from repro.standard.givens import givens_decompose, givens_reconstruct
from repro.standard.quantization import (
    AngleQuantizer,
    dequantize_angles,
    quantize_angles,
)

__all__ = ["Dot11Feedback", "IdealSvdFeedback"]


class Dot11Feedback(FeedbackScheme):
    """Standard-compliant compressed beamforming feedback."""

    def __init__(self, quantizer: AngleQuantizer | None = None) -> None:
        self.quantizer = quantizer or AngleQuantizer(b_phi=9, b_psi=7)
        self.name = f"802.11 ({self.quantizer.b_phi},{self.quantizer.b_psi})"

    def reconstruct_bf(
        self, dataset: CsiDataset, indices: np.ndarray
    ) -> np.ndarray:
        # dataset.link_bf is gauge-fixed (n, users, S, Nt).
        return self.quantize_reconstruct(dataset.link_bf(indices))

    def quantize_reconstruct(self, bf_true: np.ndarray) -> np.ndarray:
        """Round-trip ``(..., S, Nt)`` beamforming vectors through the
        standard's quantized-angle pipeline (no dataset required)."""
        angles = givens_decompose(bf_true[..., :, None])
        phi_codes, psi_codes = quantize_angles(angles, self.quantizer)
        recovered = dequantize_angles(
            phi_codes,
            psi_codes,
            self.quantizer,
            angles.n_tx,
            angles.n_streams,
        )
        return givens_reconstruct(recovered)[..., 0]

    def sta_flops(self, dataset: CsiDataset) -> float:
        spec = dataset.spec
        return dot11_flops(
            spec.n_tx, spec.n_rx, n_subcarriers=dataset.n_subcarriers
        )

    def feedback_bits(self, dataset: CsiDataset) -> int:
        spec = dataset.spec
        config = Dot11FeedbackConfig(
            n_tx=spec.n_tx,
            n_rx=spec.n_rx,
            n_streams=1,
            bandwidth_mhz=spec.bandwidth_mhz,
            quantizer=self.quantizer,
        )
        return bmr_bits(config)


class IdealSvdFeedback(FeedbackScheme):
    """Genie baseline: exact SVD beamforming vectors, zero-cost feedback."""

    name = "ideal SVD"

    def reconstruct_bf(
        self, dataset: CsiDataset, indices: np.ndarray
    ) -> np.ndarray:
        return dataset.link_bf(indices)

    def sta_flops(self, dataset: CsiDataset) -> float:
        from repro.standard.flopmodel import svd_flops

        spec = dataset.spec
        return svd_flops(spec.n_tx, spec.n_rx, dataset.n_subcarriers)

    def feedback_bits(self, dataset: CsiDataset) -> int:
        # Full-resolution CSI feedback: 2 floats (64 bits) per element.
        spec = dataset.spec
        return dataset.n_subcarriers * spec.n_tx * 64
