"""Subcarrier-grouped 802.11 feedback as a :class:`FeedbackScheme`.

Subcarrier grouping (Ng) is the standard's own complexity/airtime
reduction the paper cites in Sec. II ("subcarrier grouping, wide-band
precoding and reducing the number of feedback bits can be used to
decrease complexity, which come at the detriment of beamforming
accuracy").  This scheme runs the *bit-exact* frame codec from
``repro.standard.cbf`` — encode at the STA, interpolate + reconstruct at
the AP — so the grouping ablation bench compares SplitBeam against the
standard's actual knob rather than an idealized version of it.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.interface import FeedbackScheme
from repro.datasets.builder import CsiDataset
from repro.errors import ConfigurationError
from repro.standard.cbf import (
    Dot11CbfCodec,
    MimoControl,
    cbf_payload_bits,
    grouped_tone_indices,
)
from repro.standard.flopmodel import dot11_flops

__all__ = ["GroupedCbfFeedback"]


class GroupedCbfFeedback(FeedbackScheme):
    """802.11 feedback through the wire-format codec with grouping Ng.

    ``grouping=1`` is the plain standard pipeline (and agrees with
    ``Dot11Feedback`` up to the shared quantizer); 2 and 4 trade
    reconstruction accuracy for a proportionally smaller report.
    """

    def __init__(self, grouping: int = 1, codebook: int = 1) -> None:
        if grouping not in (1, 2, 4):
            raise ConfigurationError(f"grouping must be 1, 2 or 4, got {grouping}")
        self.grouping = int(grouping)
        self.codebook = int(codebook)
        self.name = f"802.11 Ng={grouping}"

    def _codec(self, dataset: CsiDataset) -> Dot11CbfCodec:
        spec = dataset.spec
        return Dot11CbfCodec(
            MimoControl(
                n_columns=1,
                n_rows=spec.n_tx,
                bandwidth_mhz=spec.bandwidth_mhz,
                grouping=self.grouping,
                codebook=self.codebook,
                feedback_type="mu",
            )
        )

    def reconstruct_bf(
        self, dataset: CsiDataset, indices: np.ndarray
    ) -> np.ndarray:
        codec = self._codec(dataset)
        bf_true = dataset.link_bf(indices)  # (n, users, S, Nt)
        n, users, n_sc, n_tx = bf_true.shape
        out = np.empty_like(bf_true)
        for sample in range(n):
            for user in range(users):
                v = bf_true[sample, user][..., None]  # (S, Nt, 1)
                out[sample, user] = codec.roundtrip(v)[..., 0]
        return out

    def sta_flops(self, dataset: CsiDataset) -> float:
        """SVD+GR on the grouped tones only (the STA skips the rest)."""
        spec = dataset.spec
        n_grouped = grouped_tone_indices(
            dataset.n_subcarriers, self.grouping
        ).size
        return dot11_flops(spec.n_tx, spec.n_rx, n_subcarriers=n_grouped)

    def feedback_bits(self, dataset: CsiDataset) -> int:
        spec = dataset.spec
        control = MimoControl(
            n_columns=1,
            n_rows=spec.n_tx,
            bandwidth_mhz=spec.bandwidth_mhz,
            grouping=self.grouping,
            codebook=self.codebook,
            feedback_type="mu",
        )
        return cbf_payload_bits(control)
