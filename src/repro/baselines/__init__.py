"""Feedback-scheme baselines: ideal SVD, IEEE 802.11, LB-SciFi, grouping."""

from repro.baselines.interface import FeedbackScheme
from repro.baselines.dot11 import Dot11Feedback, IdealSvdFeedback
from repro.baselines.grouped import GroupedCbfFeedback
from repro.baselines.lbscifi import LbSciFi, train_lbscifi
from repro.baselines.csinet import (
    ConvSplitNet,
    TrainedCsiNet,
    train_csinet,
    CsiNetFeedback,
)

__all__ = [
    "FeedbackScheme",
    "Dot11Feedback",
    "IdealSvdFeedback",
    "GroupedCbfFeedback",
    "LbSciFi",
    "train_lbscifi",
    "ConvSplitNet",
    "TrainedCsiNet",
    "train_csinet",
    "CsiNetFeedback",
]
