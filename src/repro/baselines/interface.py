"""The common interface every beamforming-feedback scheme implements.

A *feedback scheme* is anything that turns per-STA CSI into the
beamforming vectors available at the AP: the 802.11 SVD+Givens pipeline,
LB-SciFi's autoencoder over Givens angles, or SplitBeam's split DNN.
The evaluation pipeline (:mod:`repro.core.pipeline`) compares schemes on
exactly three axes, mirroring the paper's figures: achieved BER, STA
computational load (FLOPs), and feedback size (bits).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.datasets.builder import CsiDataset

__all__ = ["FeedbackScheme"]


class FeedbackScheme(ABC):
    """Abstract beamforming-feedback scheme."""

    #: Human-readable scheme name used in benchmark tables.
    name: str = "scheme"

    @abstractmethod
    def reconstruct_bf(
        self, dataset: CsiDataset, indices: np.ndarray
    ) -> np.ndarray:
        """Beamforming vectors as available at the AP after feedback.

        Returns ``(len(indices), n_users, S, Nt)`` complex.
        """

    @abstractmethod
    def sta_flops(self, dataset: CsiDataset) -> float:
        """Per-report computational load on one STA (real FLOPs)."""

    @abstractmethod
    def feedback_bits(self, dataset: CsiDataset) -> int:
        """Per-report over-the-air feedback size for one STA (bits)."""
