"""CsiNet-style convolutional H -> V model (related-work comparator).

The paper's related work (Sec. II) surveys CNN-based CSI compression —
CsiNet [18], CS-ReNet [17], DeepCMC [19] — developed for cellular
SU-MIMO, and argues the Wi-Fi MU-MIMO setting needs a different design.
This module makes that argument testable: the same supervised H -> V
task and training recipe as SplitBeam, but with a convolutional
encoder over the subcarrier axis (frequency-local filters, the CsiNet
design idea) in front of the compression layer.

The interesting comparison (see ``bench_ablation_conv_head.py``) is BER
*per unit of STA compute*: frequency-local convolutions add MACs at the
station — the paper's single-matmul dense head is hard to beat on that
axis, which is exactly why SplitBeam's architecture looks the way it
does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.interface import FeedbackScheme
from repro.config import FAST, Fidelity
from repro.core.costs import splitbeam_feedback_bits
from repro.core.split import BottleneckQuantizer
from repro.datasets.builder import CsiDataset
from repro.errors import ConfigurationError, TrainingError
from repro.nn.conv import Conv1d, Flatten, Reshape
from repro.nn.layers import LeakyReLU, Linear, Sequential
from repro.nn.losses import NormalizedL1Loss
from repro.nn.module import Module
from repro.nn.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.phy.link import BerResult, LinkConfig
from repro.utils.rng import as_generator, spawn

__all__ = ["ConvSplitNet", "TrainedCsiNet", "train_csinet", "CsiNetFeedback"]


class ConvSplitNet(Module):
    """Convolutional head + dense tail over flattened real CSI.

    Head (STA): reshape to ``(2*Nt*Nr, S)``, two same-padded Conv1d
    blocks extracting frequency-local features, flatten, then the
    compression Linear down to the bottleneck ``B = K * D``.
    Tail (AP): one dense reconstruction layer back to ``D``.
    """

    def __init__(
        self,
        input_dim: int,
        n_feature_channels: int,  # 2 * Nt * Nr
        compression: float,
        hidden_channels: int = 8,
        kernel_size: int = 5,
        rng: "int | np.random.Generator | None" = 0,
    ) -> None:
        super().__init__()
        if input_dim % n_feature_channels:
            raise ConfigurationError(
                f"input_dim {input_dim} not divisible by "
                f"{n_feature_channels} feature channels"
            )
        if not 0 < compression <= 1:
            raise ConfigurationError("compression must be in (0, 1]")
        self.input_dim = int(input_dim)
        self.n_feature_channels = int(n_feature_channels)
        self.n_subcarriers = input_dim // n_feature_channels
        self.bottleneck_dim = max(1, round(compression * input_dim))
        self.hidden_channels = int(hidden_channels)
        rngs = spawn(as_generator(rng), 4)

        flat_features = self.n_feature_channels * self.n_subcarriers
        self.head = Sequential(
            [
                Reshape((self.n_feature_channels, self.n_subcarriers)),
                Conv1d(
                    self.n_feature_channels,
                    hidden_channels,
                    kernel_size,
                    rng=rngs[0],
                ),
                LeakyReLU(),
                Conv1d(
                    hidden_channels,
                    self.n_feature_channels,
                    kernel_size,
                    rng=rngs[1],
                ),
                LeakyReLU(),
                Flatten(),
                Linear(flat_features, self.bottleneck_dim, rng=rngs[2]),
            ]
        )
        self.tail = Sequential(
            [LeakyReLU(), Linear(self.bottleneck_dim, input_dim, rng=rngs[3])]
        )

    @property
    def compression(self) -> float:
        return self.bottleneck_dim / self.input_dim

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return self.tail.forward(self.head.forward(inputs))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.head.backward(self.tail.backward(grad_output))

    def head_macs(self) -> int:
        """STA-side multiply-accumulates per inference."""
        conv_layers = [m for m in self.head.modules() if isinstance(m, Conv1d)]
        macs = sum(c.macs(self.n_subcarriers) for c in conv_layers)
        linear = self.head.layers[-1]
        macs += linear.in_features * linear.out_features
        return macs

    def tail_macs(self) -> int:
        linear = self.tail.layers[-1]
        return linear.in_features * linear.out_features

    def label(self) -> str:
        return (
            f"conv{self.n_feature_channels}-{self.hidden_channels}-"
            f"{self.n_feature_channels}-fc{self.bottleneck_dim}"
        )


@dataclass
class TrainedCsiNet:
    """A trained convolutional model plus its evaluation context."""

    model: ConvSplitNet
    dataset: CsiDataset
    history: TrainingHistory
    quantizer: BottleneckQuantizer | None = None

    def test_ber(
        self,
        link_config: LinkConfig | None = None,
        max_samples: int | None = None,
    ) -> BerResult:
        from repro.core.training import ber_of_model

        indices = self.dataset.splits.test
        if max_samples is not None:
            indices = indices[:max_samples]
        return ber_of_model(
            self.model, self.dataset, indices, link_config=link_config
        )


def train_csinet(
    dataset: CsiDataset,
    compression: float = 1.0 / 8.0,
    fidelity: Fidelity = FAST,
    hidden_channels: int = 8,
    quantizer_bits: int | None = 16,
    seed: int = 0,
) -> TrainedCsiNet:
    """Train the convolutional comparator with the paper's recipe."""
    spec = dataset.spec
    n_channels = 2 * spec.n_tx * spec.n_rx
    if dataset.input_dim % n_channels:
        raise TrainingError(
            f"dataset input dim {dataset.input_dim} inconsistent with "
            f"{n_channels} real CSI channels"
        )
    model = ConvSplitNet(
        input_dim=dataset.input_dim,
        n_feature_channels=n_channels,
        compression=compression,
        hidden_channels=hidden_channels,
        rng=seed,
    )
    config = TrainingConfig(
        epochs=fidelity.epochs,
        batch_size=16,
        learning_rate=1e-3,
        optimizer="adam",
        lr_milestones=(
            max(1, fidelity.epochs // 2),
            max(2, (3 * fidelity.epochs) // 4),
        ),
        lr_gamma=0.1,
        seed=seed,
    )
    trainer = Trainer(model, loss=NormalizedL1Loss(), config=config)
    x_train, y_train = dataset.train_arrays()
    x_val, y_val = dataset.val_arrays()
    history = trainer.fit(x_train, y_train, x_val, y_val)
    quantizer = (
        BottleneckQuantizer(quantizer_bits) if quantizer_bits is not None else None
    )
    return TrainedCsiNet(
        model=model, dataset=dataset, history=history, quantizer=quantizer
    )


class CsiNetFeedback(FeedbackScheme):
    """A trained :class:`ConvSplitNet` exposed as a feedback scheme."""

    def __init__(self, trained: TrainedCsiNet) -> None:
        self.trained = trained
        k = trained.model.compression
        denominator = round(1 / k) if k < 1 else 1
        self.name = f"CsiNet-style (K=1/{denominator})"

    def reconstruct_bf(
        self, dataset: CsiDataset, indices: np.ndarray
    ) -> np.ndarray:
        from repro.core.training import predict_bf

        return predict_bf(self.trained.model, dataset, indices)

    def sta_flops(self, dataset: CsiDataset) -> float:
        return 2.0 * self.trained.model.head_macs()

    def feedback_bits(self, dataset: CsiDataset) -> int:
        bits = (
            16
            if self.trained.quantizer is None
            else self.trained.quantizer.bits
        )
        return splitbeam_feedback_bits(
            self.trained.model.bottleneck_dim, bits_per_element=bits
        )
