"""The SplitBeam DNN architecture.

A SplitBeam model is a dense MLP over the real/imag-decoupled CSI whose
*first* hidden layer is the bottleneck (the Sec. IV-C heuristic fixes
``e = 1``): the input->bottleneck Linear is the **head** executed on the
STA, everything after it is the **tail** executed at the AP.  Layer
widths follow Table II, e.g. ``[224, 28, 28, 224]`` for the 3-layer
2x2/20 MHz model with K = 1/8 (widths count neurons; weight layers =
``len(widths) - 1``).

The bottleneck activations are transmitted over the air *pre-activation*
(raw head outputs); the tail applies the nonlinearity first.  This keeps
the head a single matrix multiply — the property behind the paper's STA
complexity claim O(K * Nt^2 * Nr^2 * S^2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Identity, LeakyReLU, Linear, ReLU, Sequential, Tanh
from repro.nn.module import Module
from repro.utils.rng import as_generator, spawn

__all__ = ["SplitBeamNet", "three_layer_widths"]

_ACTIVATIONS = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "tanh": Tanh,
    "linear": Identity,
}


def three_layer_widths(input_dim: int, compression: float) -> list[int]:
    """Widths of the Table II 3-layer model: ``[D, K*D, K*D, D]``.

    The bottleneck width is ``max(1, round(K * D))``.
    """
    if input_dim < 2:
        raise ConfigurationError("input_dim must be >= 2")
    if not 0 < compression <= 1:
        raise ConfigurationError(
            f"compression must be in (0, 1], got {compression}"
        )
    bottleneck = max(1, int(round(compression * input_dim)))
    return [input_dim, bottleneck, bottleneck, input_dim]


class SplitBeamNet(Module):
    """Dense split DNN with the bottleneck after the first weight layer.

    Parameters
    ----------
    widths:
        Neuron counts per layer, ``[D_in, B, ..., D_out]``; ``B`` is the
        bottleneck width.  Two entries give the BOP's initial
        2-weight-layer model ``[D, B, D]``.
    activation:
        Hidden activation: ``relu``, ``leaky_relu`` (default), ``tanh``
        or ``linear``.
    rng:
        Seed/Generator for weight initialization.
    """

    def __init__(
        self,
        widths: Sequence[int],
        activation: str = "leaky_relu",
        rng: "int | np.random.Generator | None" = 0,
    ) -> None:
        super().__init__()
        widths = [int(w) for w in widths]
        if len(widths) < 3:
            raise ConfigurationError(
                "need at least [input, bottleneck, output] widths"
            )
        if any(w < 1 for w in widths):
            raise ConfigurationError(f"widths must be >= 1, got {widths}")
        if widths[1] > widths[0]:
            # Larger-than-input bottlenecks are allowed (Table II studies
            # them) but are not compressions; nothing to validate here.
            pass
        try:
            act_cls = _ACTIVATIONS[activation]
        except KeyError:
            raise ConfigurationError(
                f"unknown activation {activation!r}; "
                f"options: {sorted(_ACTIVATIONS)}"
            ) from None

        self.widths = widths
        self.activation_name = activation
        rngs = spawn(as_generator(rng), len(widths) - 1)
        layers: list[Module] = [Linear(widths[0], widths[1], rng=rngs[0])]
        for i in range(1, len(widths) - 1):
            layers.append(act_cls())
            layers.append(Linear(widths[i], widths[i + 1], rng=rngs[i]))
        self.network = Sequential(layers)

    # -- Module interface ------------------------------------------------------

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return self.network.forward(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.network.backward(grad_output)

    # -- architecture introspection ----------------------------------------------

    @property
    def input_dim(self) -> int:
        return self.widths[0]

    @property
    def output_dim(self) -> int:
        return self.widths[-1]

    @property
    def bottleneck_dim(self) -> int:
        return self.widths[1]

    @property
    def compression(self) -> float:
        """The paper's K = |B| / |input|."""
        return self.bottleneck_dim / self.input_dim

    @property
    def n_weight_layers(self) -> int:
        return len(self.widths) - 1

    def head_network(self) -> Sequential:
        """The STA-side sub-network (input -> raw bottleneck values)."""
        return self.network.slice(0, 1)

    def tail_network(self) -> Sequential:
        """The AP-side sub-network (bottleneck values -> BF estimate)."""
        return self.network.slice(1)

    def head_macs(self) -> int:
        """Multiply-accumulates of the head per inference."""
        return self.widths[0] * self.widths[1]

    def tail_macs(self) -> int:
        """Multiply-accumulates of the tail per inference."""
        return sum(
            self.widths[i] * self.widths[i + 1]
            for i in range(1, len(self.widths) - 1)
        )

    def label(self) -> str:
        """Table II style label, e.g. ``224-28-28-224``."""
        return "-".join(str(w) for w in self.widths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SplitBeamNet({self.label()}, act={self.activation_name})"
