"""SplitBeam core: the paper's primary contribution.

- :mod:`repro.core.model` — the split DNN architecture (Sec. IV-A,
  Table II);
- :mod:`repro.core.split` — head/tail execution with bottleneck
  quantization (the over-the-air compressed feedback V');
- :mod:`repro.core.costs` — STA compute, feedback-size and delay cost
  models (Sec. IV-B/IV-E);
- :mod:`repro.core.training` — the supervised training recipe
  (Sec. IV-D) and BER-based checkpointing;
- :mod:`repro.core.bop` — the bottleneck optimization problem and the
  Sec. IV-C heuristic;
- :mod:`repro.core.pipeline` — end-to-end train/evaluate entry points
  used by the examples and benchmarks.
"""

from repro.core.model import SplitBeamNet, three_layer_widths
from repro.core.split import (
    BottleneckQuantizer,
    HeadModel,
    TailModel,
    SplitExecutor,
    QuantizationNoise,
)
from repro.core.costs import (
    CALIBRATED_NN_FLOP_FACTOR,
    splitbeam_feedback_bits,
    splitbeam_head_flops,
    analytical_splitbeam_flops,
    comp_load_ratio,
    feedback_size_ratio,
    StaCostModel,
)
from repro.core.training import (
    TrainedSplitBeam,
    train_splitbeam,
    splitbeam_training_config,
    predict_bf,
    ber_of_model,
)
from repro.core.bop import BopConstraints, BopTrial, BopResult, solve_bop
from repro.core.pipeline import SchemeEvaluation, evaluate_scheme, compare_schemes
from repro.core.zoo import NetworkConfiguration, ZooEntry, ModelZoo
from repro.core.zoo_builder import ZooBuilder, ZooBuildResult, train_zoo
from repro.core.adaptive import (
    QosProfile,
    SelectionOutcome,
    select_model,
    AdaptiveCompressionController,
)
from repro.core.session import NetworkSession, SessionReport, RoundRecord
from repro.core.network import (
    NetworkCampaign,
    NetworkCampaignResult,
    run_campaign,
)

__all__ = [
    "SplitBeamNet",
    "three_layer_widths",
    "BottleneckQuantizer",
    "HeadModel",
    "TailModel",
    "SplitExecutor",
    "QuantizationNoise",
    "CALIBRATED_NN_FLOP_FACTOR",
    "splitbeam_feedback_bits",
    "splitbeam_head_flops",
    "analytical_splitbeam_flops",
    "comp_load_ratio",
    "feedback_size_ratio",
    "StaCostModel",
    "TrainedSplitBeam",
    "train_splitbeam",
    "splitbeam_training_config",
    "predict_bf",
    "ber_of_model",
    "BopConstraints",
    "BopTrial",
    "BopResult",
    "solve_bop",
    "SchemeEvaluation",
    "evaluate_scheme",
    "compare_schemes",
    "NetworkConfiguration",
    "ZooEntry",
    "ModelZoo",
    "ZooBuilder",
    "ZooBuildResult",
    "train_zoo",
    "QosProfile",
    "SelectionOutcome",
    "select_model",
    "AdaptiveCompressionController",
    "NetworkSession",
    "SessionReport",
    "RoundRecord",
    "NetworkCampaign",
    "NetworkCampaignResult",
    "run_campaign",
]
