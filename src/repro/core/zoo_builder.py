"""Parallel zoo training through the ``repro.runtime`` engine.

The paper's deployment story (Sec. IV-D, Fig. 1) is a :class:`ModelZoo`
of SplitBeam models "trained offline for various network
configurations".  This module makes building that zoo a runtime
workload like every other grid in the reproduction: a declarative
:class:`~repro.runtime.spec.TrainingGrid` (configurations x
architectures x seeds, with named presets in
:mod:`repro.runtime.registry`) expands into pure seeded
``train_splitbeam`` tasks, the multiprocess executor fans them out
(bit-identical results for any worker count), and every finished model
persists through a content-addressed :class:`CheckpointStore` so a warm
rebuild loads weights instead of spending epochs::

    from repro.core.zoo_builder import train_zoo
    from repro.runtime.checkpoints import CheckpointStore

    result = train_zoo(
        "compression-ladder",
        store=CheckpointStore("benchmarks/results/checkpoint_store"),
        n_workers=4,
    )
    zoo = result.zoo()          # a ModelZoo, ready for NetworkSession
    result.entry("D1 K=1/8")    # one ZooEntry by grid label

Checkpoint keys are the sha256 of (dataset spec, resolved widths,
training config, measurement settings, fidelity) plus the repro source
digest — namespaced apart from result-cache keys — so editing the
library retrains everything while a fidelity or grid tweak retrains
exactly the entries it touches.

Because a :class:`ModelZoo` is keyed by what the NDP preamble announces
(the :class:`NetworkConfiguration`), two grid entries with the same
configuration *and* architecture — e.g. the E1 and E2 models of a
cross-environment grid, or a seed study — cannot coexist in one zoo.
:meth:`ZooBuildResult.zoo` therefore accepts a label subset, so one
build feeds several deployment catalogs.
"""

from __future__ import annotations

import time
from contextlib import nullcontext as _null
from dataclasses import asdict, dataclass, field

from repro.config import Fidelity
from repro.core.model import SplitBeamNet, three_layer_widths
from repro.core.training import splitbeam_training_config
from repro.core.zoo import ModelZoo, NetworkConfiguration, ZooEntry
from repro.datasets.catalog import dataset_spec
from repro.errors import ConfigurationError
from repro.nn.serialize import load_state_dict
from repro.obs import trace as trace_mod
from repro.obs.export import write_trace
from repro.runtime import faults as faults_mod
from repro.runtime.checkpoints import CHECKPOINT_KIND, CheckpointStore
from repro.runtime.executor import (
    RetryPolicy,
    RunHealth,
    Task,
    resolve_worker_count,
    run_tasks,
)
from repro.runtime.payloads import PayloadStore
from repro.runtime.hashing import code_version, state_digest, task_key
from repro.runtime.planner import shard_labels
from repro.runtime.spec import TrainingGrid, fidelity_from_dict

__all__ = [
    "PlannedTraining",
    "ZooBuildResult",
    "ZooBuilder",
    "checkpoint_spec",
    "plan_training_grid",
    "train_zoo",
]

#: Bump when the zoo-build manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

#: The builder's task entry point (importable in worker processes).
TRAIN_FN = "repro.runtime.tasks:train_zoo_entry"


def _resolve_entry(spec: dict) -> dict:
    """A task-ready copy of one grid spec: widths and BER budget pinned.

    ``compression`` entries resolve to the Table II 3-layer widths from
    the dataset's input dimension (known from the catalog, no dataset
    build needed); ``ber_samples=None`` resolves to the grid fidelity's
    budget.  The resolved spec — not the sugar it came from — is what
    workers receive and what checkpoint keys hash, so
    ``compression=1/8`` and the equivalent explicit widths share a
    checkpoint.
    """
    model = dict(spec["model"])
    if model.get("widths") is None:
        catalog = dataset_spec(spec["dataset"]["id"])
        config = NetworkConfiguration(
            n_tx=catalog.n_tx,
            n_rx=catalog.n_rx,
            bandwidth_mhz=catalog.bandwidth_mhz,
        )
        model["widths"] = three_layer_widths(
            config.input_dim, model["compression"]
        )
    ber_samples = spec.get("ber_samples")
    if ber_samples is None:
        ber_samples = int(spec["fidelity"]["ber_samples"])
    return {**spec, "model": model, "ber_samples": int(ber_samples)}


def checkpoint_spec(spec: dict) -> dict:
    """The checkpoint-relevant subset of one *resolved* training spec.

    Mirrors :func:`repro.runtime.planner.measurement_spec`: the display
    ``label``, free-text ``notes``, and the fidelity preset's cosmetic
    ``name`` are dropped; the derived :class:`TrainingConfig` (epochs,
    optimizer, schedule, seed) is hashed explicitly so a recipe change
    in :func:`~repro.core.training.splitbeam_training_config` can never
    serve stale weights.
    """
    fidelity = {
        key: value for key, value in spec["fidelity"].items() if key != "name"
    }
    train = dict(spec["train"])
    config = splitbeam_training_config(
        fidelity_from_dict(spec["fidelity"]), train["seed"]
    )
    return {
        "dataset": dict(spec["dataset"]),
        "model": {
            "widths": [int(w) for w in spec["model"]["widths"]],
            "activation": spec["model"]["activation"],
            "qat_bits": spec["model"]["qat_bits"],
        },
        "train": {**asdict(config), "checkpoint_on": train["checkpoint_on"]},
        "quantizer_bits": spec["quantizer_bits"],
        "link": dict(spec.get("link", {})),
        "ber_samples": spec["ber_samples"],
        "fidelity": fidelity,
    }


@dataclass(frozen=True)
class PlannedTraining:
    """One grid entry, resolved and content-addressed."""

    index: int
    label: str
    spec: dict  # resolved task params (widths + ber_samples pinned)
    key: str
    task: Task


def plan_training_grid(
    grid: TrainingGrid,
    version: "str | None" = None,
    n_workers: int = 1,
    payloads: "PayloadStore | None" = None,
) -> "list[PlannedTraining]":
    """Expand a training grid into keyed, shard-labelled executor tasks.

    With a payload store, the spec sub-mappings every entry repeats
    (the grid fidelity, the shared link settings, each dataset recipe)
    are interned once and referenced from the task parameters; keys and
    the recorded :attr:`PlannedTraining.spec` always use the raw spec.
    """
    specs = [_resolve_entry(spec) for spec in grid.task_specs()]
    shards = shard_labels(specs, n_workers)
    planned = []
    for index, (spec, shard) in enumerate(zip(specs, shards)):
        key = task_key(checkpoint_spec(spec), version, kind=CHECKPOINT_KIND)
        params = spec
        if payloads is not None:
            params = {
                **spec,
                "dataset": payloads.intern(spec["dataset"]),
                "fidelity": payloads.intern(spec["fidelity"]),
            }
            if "link" in spec:
                params["link"] = payloads.intern(spec["link"])
        planned.append(
            PlannedTraining(
                index=index,
                label=spec["label"],
                spec=spec,
                key=key,
                task=Task(
                    task_id=f"{index:04d}:{spec['label']}",
                    fn=TRAIN_FN,
                    params=params,
                    shard=shard,
                ),
            )
        )
    return planned


@dataclass
class ZooBuildResult:
    """The outcome of one grid build: models plus build statistics.

    ``entries`` (grid order) carry the manifest row for every trained or
    checkpoint-loaded model; :meth:`zoo` assembles them into a
    :class:`ModelZoo`, optionally restricted to a label subset (a
    cross-environment grid holds same-architecture models for several
    environments, which one deployment catalog cannot).
    """

    grid: str
    title: str
    fidelity: dict
    entries: "list[dict]"  # manifest rows + a transient "cached" flag
    n_entries: int
    n_cached: int
    n_trained: int
    n_workers: int
    wall_s: float = 0.0
    code_version: str = ""
    health: dict = field(default_factory=dict)
    #: Directory the build's trace was written to (``None`` untraced).
    #: Telemetry, like ``wall_s`` — never part of :meth:`to_dict`.
    trace_dir: "str | None" = None
    _zoo_entries: "dict[str, ZooEntry]" = field(default_factory=dict, repr=False)

    def entry(self, label: str) -> ZooEntry:
        """The :class:`ZooEntry` built for one grid label."""
        try:
            return self._zoo_entries[label]
        except KeyError:
            raise ConfigurationError(
                f"no zoo entry labelled {label!r}; "
                f"options: {sorted(self._zoo_entries)}"
            ) from None

    def labels(self) -> "list[str]":
        """All entry labels, in grid order."""
        return [row["label"] for row in self.entries]

    def zoo(self, labels=None) -> ModelZoo:
        """Assemble a :class:`ModelZoo` from all (or selected) labels.

        Raises :class:`ConfigurationError` when two selected entries
        share a (configuration, architecture) pair — pass ``labels`` to
        split such grids into per-environment (or per-seed) zoos.
        """
        selected = self.labels() if labels is None else list(labels)
        zoo = ModelZoo()
        for label in selected:
            zoo.register(self.entry(label))
        return zoo

    def to_dict(self, include_health: bool = False) -> dict:
        """Deterministic manifest payload (no timestamps, no wall time).

        ``include_health=True`` appends fault-tolerance statistics; the
        default omits them so the manifest stays byte-identical across
        worker counts, cold/warm stores, and fault schedules.
        """
        rows = [
            {key: value for key, value in row.items() if key != "cached"}
            for row in self.entries
        ]
        payload = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "grid": self.grid,
            "title": self.title,
            "fidelity": self.fidelity,
            "code_version": self.code_version,
            "entries": rows,
        }
        if include_health:
            payload["health"] = self.health
        return payload

    def write_json(self, path) -> None:
        """Write the manifest (2-space indent, sorted keys, trailing \\n)."""
        from repro.utils.artifacts import write_json_artifact

        write_json_artifact(path, self.to_dict())


class ZooBuilder:
    """Runs training grids through the planner, checkpoints, and pool.

    Parameters
    ----------
    store:
        A :class:`CheckpointStore` (or ``None`` to always retrain).
    n_workers:
        Worker processes; ``None`` reads ``$REPRO_RUNTIME_WORKERS``
        (default 1 = the deterministic in-process executor).
    policy:
        A :class:`~repro.runtime.executor.RetryPolicy` bounding
        retries/timeouts (``None`` = the default).
    faults:
        A :class:`~repro.runtime.faults.FaultPlan` of injected chaos
        (``None`` = the installed plan or ``$REPRO_RUNTIME_FAULTS``).
    trace:
        Observability: a directory path (or a
        :class:`~repro.obs.trace.Tracer`) recording the build's span
        timeline and metrics; ``None`` joins an already-installed
        tracer (a campaign's zoo build lands in the campaign timeline)
        or honours ``$REPRO_RUNTIME_TRACE``; ``False`` disables.
    """

    def __init__(
        self,
        store: "CheckpointStore | None" = None,
        n_workers: "int | None" = None,
        policy: "RetryPolicy | None" = None,
        faults=None,
        trace=None,
    ) -> None:
        self.store = store
        self.n_workers = resolve_worker_count(n_workers)
        self.policy = policy
        self.faults = faults
        self.trace = trace

    def build(self, grid: TrainingGrid) -> ZooBuildResult:
        """Train (or checkpoint-load) every entry of ``grid``."""
        # Installed for the build's duration so checkpoint writes see
        # the same chaos schedule (and trace timeline) as the tasks.
        plan = faults_mod.active_plan(self.faults)
        previous = faults_mod.install(plan)
        tracer, owned = trace_mod.tracer_for_run(
            self.trace, f"zoo:{grid.name}"
        )
        prev_tracer = trace_mod.install_tracer(tracer) if tracer else None
        try:
            if tracer is None:
                return self._build(grid, plan)
            with tracer.span(f"zoo:{grid.name}", "engine"):
                result = self._build(grid, plan)
            self._finalize_trace(result, tracer, owned)
            return result
        finally:
            if tracer is not None:
                trace_mod.install_tracer(prev_tracer)
            faults_mod.install(previous)

    def _finalize_trace(self, result, tracer, owned: bool) -> None:
        metrics = tracer.metrics
        metrics.ratio_gauge(
            "checkpoint.hit_ratio", result.n_cached, result.n_entries
        )
        interned = metrics.counter("payloads.interned")
        if interned:
            # Dedupe ratio: interns served from an existing entry.
            metrics.ratio_gauge(
                "payloads.dedupe_ratio",
                interned - metrics.counter("payloads.unique"),
                interned,
            )
        for family, counters in result.health.items():
            if not isinstance(counters, dict):
                continue
            for key, value in counters.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    metrics.set_gauge(f"health.{family}.{key}", value)
        if owned:
            result.trace_dir = write_trace(tracer)
        else:
            result.trace_dir = tracer.out_dir

    def _build(self, grid: TrainingGrid, plan) -> ZooBuildResult:
        start = time.perf_counter()
        tracer = trace_mod.current_tracer()
        version = code_version()
        health = RunHealth()
        payloads = PayloadStore()
        if tracer is None:
            planned = plan_training_grid(
                grid, version=version, n_workers=self.n_workers,
                payloads=payloads,
            )
        else:
            with tracer.span("plan", "engine", entries=len(grid.task_specs())):
                planned = plan_training_grid(
                    grid, version=version, n_workers=self.n_workers,
                    payloads=payloads,
                )
        results: "dict[int, dict]" = {}
        to_run: "list[PlannedTraining]" = []
        checkpoint_check = (
            tracer.span("checkpoint_check", "engine", entries=len(planned))
            if tracer
            else _null()
        )
        with checkpoint_check:
            for entry in planned:
                # `is not None`, not truthiness: an empty store is falsy
                # (__len__ == 0), which would skip gets on cold builds.
                checkpoint = (
                    self.store.get(entry.key)
                    if self.store is not None
                    else None
                )
                if checkpoint is not None:
                    results[entry.index] = {
                        "state": checkpoint.state,
                        # Reuse the digest get() just verified; _assemble
                        # then skips re-hashing megabytes of weights on
                        # the warm path.
                        "state_sha256": checkpoint.state_sha256,
                        **checkpoint.meta,
                    }
                else:
                    to_run.append(entry)

        by_task_id = {entry.task.task_id: entry for entry in to_run}

        def persist(task_id: str, result) -> None:
            # Checkpoint each model the moment training finishes, so an
            # interrupted build resumes from every completed entry.
            # Digest once here; _assemble and the store both reuse it.
            result["state_sha256"] = state_digest(result["state"])
            if self.store is not None:
                entry = by_task_id[task_id]
                meta = {
                    key: value
                    for key, value in result.items()
                    if key not in ("state", "state_sha256")
                }
                self.store.put(
                    entry.key,
                    checkpoint_spec(entry.spec),
                    result["state"],
                    meta=meta,
                    state_sha256=result["state_sha256"],
                )

        with payloads:
            executed = run_tasks(
                [entry.task for entry in to_run],
                n_workers=self.n_workers,
                on_result=persist,
                payloads=payloads,
                policy=self.policy,
                faults=plan,
                health=health,
            )
            rehydrated = payloads.rehydrated
        if self.store is not None:
            # Publish the packed index so the next open recovers from a
            # snapshot instead of rescanning every segment tail.
            self.store.flush()
        for entry in to_run:
            results[entry.index] = executed[entry.task.task_id]
        executed_indices = {entry.index for entry in to_run}
        with tracer.span("assemble", "engine") if tracer else _null():
            return self._assemble(
                grid, planned, results,
                executed_indices=executed_indices,
                version=version,
                wall_s=time.perf_counter() - start,
                health={
                    "executor": health.to_dict(),
                    "checkpoints": (
                        self.store.health.to_dict()
                        if self.store is not None
                        else None
                    ),
                    "payloads": {"rehydrated": rehydrated},
                },
            )

    def _assemble(
        self, grid, planned, results, executed_indices, version, wall_s, health
    ) -> ZooBuildResult:
        """Reconstruct models in the coordinator, in grid order."""
        rows: "list[dict]" = []
        zoo_entries: "dict[str, ZooEntry]" = {}
        for entry in planned:
            result = results[entry.index]
            model = SplitBeamNet(
                result["widths"], activation=result["activation"]
            )
            load_state_dict(model, result["state"])
            catalog = dataset_spec(entry.spec["dataset"]["id"])
            config = NetworkConfiguration(
                n_tx=catalog.n_tx,
                n_rx=catalog.n_rx,
                bandwidth_mhz=catalog.bandwidth_mhz,
            )
            notes = entry.spec.get("notes") or entry.label
            zoo_entries[entry.label] = ZooEntry(
                config=config,
                model=model,
                quantizer_bits=entry.spec["quantizer_bits"],
                measured_ber=float(result["measured_ber"]),
                notes=notes,
            )
            rows.append(
                {
                    "label": entry.label,
                    "key": entry.key,
                    "config": config.label(),
                    "widths": [int(w) for w in result["widths"]],
                    "activation": result["activation"],
                    "quantizer_bits": entry.spec["quantizer_bits"],
                    "measured_ber": float(result["measured_ber"]),
                    "state_sha256": (
                        result.get("state_sha256")
                        or state_digest(result["state"])
                    ),
                    "history": dict(result["history"]),
                    "notes": notes,
                    # Transient (stripped from to_dict): where this
                    # entry came from on *this* build.
                    "cached": entry.index not in executed_indices,
                }
            )
        return ZooBuildResult(
            grid=grid.name,
            title=grid.title,
            fidelity=dict(grid.fidelity),
            entries=rows,
            n_entries=len(planned),
            n_cached=len(planned) - len(executed_indices),
            n_trained=len(executed_indices),
            n_workers=self.n_workers,
            wall_s=wall_s,
            code_version=version,
            health=health,
            _zoo_entries=zoo_entries,
        )


def train_zoo(
    grid: "TrainingGrid | str",
    fidelity: "Fidelity | None" = None,
    store: "CheckpointStore | None" = None,
    n_workers: "int | None" = None,
    policy: "RetryPolicy | None" = None,
    faults=None,
    trace=None,
    **kwargs,
) -> ZooBuildResult:
    """Build a model zoo from a grid (or a registered preset name).

    The one-call entry point: ``train_zoo("compression-ladder",
    store=...)`` resolves the preset via
    :func:`repro.runtime.registry.get_training_grid` (extra keyword
    arguments reach the preset builder) and runs it through a
    :class:`ZooBuilder`.
    """
    if isinstance(grid, str):
        from repro.runtime.registry import get_training_grid

        grid = get_training_grid(grid, fidelity=fidelity, **kwargs)
    elif fidelity is not None or kwargs:
        raise ConfigurationError(
            "fidelity/preset overrides apply to named grids only; "
            "build the TrainingGrid with them instead"
        )
    return ZooBuilder(
        store=store, n_workers=n_workers, policy=policy, faults=faults,
        trace=trace,
    ).build(grid)
