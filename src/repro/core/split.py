"""Head/tail split execution with over-the-air bottleneck quantization.

In deployment (Fig. 5) the STA runs the head and transmits the
compressed representation ``V'`` inside its beamforming report; the AP
dequantizes and runs the tail.  :class:`BottleneckQuantizer` models the
wire format: each bottleneck value is quantized uniformly with ``bits``
bits inside a per-report dynamic range carried as two scalars (the same
scheme 802.11 uses for its SNR fields).

``SplitExecutor`` glues the pieces together and, with quantization
disabled, is bit-exact with running the unsplit model — a property the
test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, FeedbackError
from repro.core.model import SplitBeamNet
from repro.nn.module import Module

__all__ = [
    "BottleneckQuantizer",
    "CompressedFeedback",
    "HeadModel",
    "TailModel",
    "SplitExecutor",
    "QuantizationNoise",
]

#: Bits for each of the two per-report range scalars.
RANGE_SCALAR_BITS = 16


@dataclass
class CompressedFeedback:
    """One user's over-the-air compressed BF report.

    ``codes`` are integer quantization indices of the bottleneck values;
    ``low``/``high`` delimit the quantizer range for each report row.
    """

    codes: np.ndarray  # (batch, B) integer codes
    low: np.ndarray  # (batch,) range minima
    high: np.ndarray  # (batch,) range maxima
    bits: int

    @property
    def payload_bits(self) -> int:
        """Feedback payload size per report in bits."""
        return self.codes.shape[-1] * self.bits + 2 * RANGE_SCALAR_BITS


class BottleneckQuantizer:
    """Uniform per-report quantizer for bottleneck activations.

    ``bits = 16`` reproduces the paper's airtime accounting (16 bits per
    compressed element, matching the Eq. (9) CSI convention); smaller
    widths trade feedback size for reconstruction error (see the
    quantization ablation bench).
    """

    def __init__(self, bits: int = 16) -> None:
        if not 2 <= bits <= 32:
            raise ConfigurationError(f"bits must be in [2, 32], got {bits}")
        self.bits = int(bits)
        self.levels = (1 << self.bits) - 1

    def quantize(self, values: np.ndarray) -> CompressedFeedback:
        """Quantize a batch ``(n, B)`` of bottleneck vectors."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values[None, :]
        low = values.min(axis=1)
        high = values.max(axis=1)
        span = np.maximum(high - low, 1e-12)
        normalized = (values - low[:, None]) / span[:, None]
        codes = np.round(normalized * self.levels).astype(np.int64)
        return CompressedFeedback(
            codes=codes, low=low, high=high, bits=self.bits
        )

    def dequantize(self, feedback: CompressedFeedback) -> np.ndarray:
        """Rebuild real-valued bottleneck vectors from a report."""
        if feedback.bits != self.bits:
            raise FeedbackError(
                f"report quantized with {feedback.bits} bits, "
                f"decoder expects {self.bits}"
            )
        span = np.maximum(feedback.high - feedback.low, 1e-12)
        return (
            feedback.codes.astype(np.float64) / self.levels
        ) * span[:, None] + feedback.low[:, None]


class QuantizationNoise(Module):
    """Quantization-aware-training layer for the bottleneck.

    During training, fake-quantizes the bottleneck: each batch row is
    passed through the exact round-trip of a ``bits``-wide
    :class:`BottleneckQuantizer` (per-row dynamic range, uniform
    rounding), so the tail always sees the values it will receive at
    deployment.  The backward pass is the straight-through estimator
    (identity), the standard QAT trick.  In eval mode the layer is an
    exact pass-through, so the trained model deploys unchanged.

    ``SplitBeamNet`` inserts this after the head's Linear when
    ``train_splitbeam(..., qat_bits=...)`` is used; the tail then learns
    to reconstruct from *quantized-looking* bottleneck values, which
    rescues the low-bit regimes the quantization ablation shows
    collapsing (4 bits: BER 0.046 — see ``bench_ablation_qat``).
    """

    def __init__(
        self, bits: int, rng: "np.random.Generator | int | None" = 0
    ) -> None:
        super().__init__()
        if not 2 <= bits <= 32:
            raise ConfigurationError(f"bits must be in [2, 32], got {bits}")
        del rng  # kept for API stability; fake-quantize is deterministic
        self.bits = int(bits)
        self.levels = (1 << self.bits) - 1
        self._quantizer = BottleneckQuantizer(self.bits)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if not self.training:
            return inputs
        if inputs.ndim == 1:
            inputs = inputs[None, :]
        return self._quantizer.dequantize(self._quantizer.quantize(inputs))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Straight-through estimator: the noise is treated as constant."""
        return np.asarray(grad_output, dtype=np.float64)


class HeadModel:
    """STA-side executor: CSI in, compressed feedback out."""

    def __init__(
        self, model: SplitBeamNet, quantizer: BottleneckQuantizer | None = None
    ) -> None:
        self.network = model.head_network()
        self.network.eval()
        self.quantizer = quantizer
        self.input_dim = model.input_dim
        self.bottleneck_dim = model.bottleneck_dim

    def compress(self, inputs: np.ndarray) -> "CompressedFeedback | np.ndarray":
        """Produce ``V'``: quantized codes, or raw floats if no quantizer."""
        bottleneck = self.network.forward(np.asarray(inputs, dtype=np.float64))
        if self.quantizer is None:
            return bottleneck
        return self.quantizer.quantize(bottleneck)


class TailModel:
    """AP-side executor: compressed feedback in, BF estimate out."""

    def __init__(
        self, model: SplitBeamNet, quantizer: BottleneckQuantizer | None = None
    ) -> None:
        self.network = model.tail_network()
        self.network.eval()
        self.quantizer = quantizer
        self.output_dim = model.output_dim

    def reconstruct(
        self, feedback: "CompressedFeedback | np.ndarray"
    ) -> np.ndarray:
        """Rebuild the flattened real BF estimate."""
        if isinstance(feedback, CompressedFeedback):
            if self.quantizer is None:
                raise FeedbackError(
                    "received quantized feedback but no quantizer configured"
                )
            values = self.quantizer.dequantize(feedback)
        else:
            values = np.asarray(feedback, dtype=np.float64)
        return self.network.forward(values)


class SplitExecutor:
    """End-to-end split execution (STA head -> air -> AP tail).

    With ``quantizer=None`` the round trip equals the unsplit model's
    forward pass exactly.
    """

    def __init__(
        self,
        model: SplitBeamNet,
        quantizer: BottleneckQuantizer | None = None,
    ) -> None:
        self.model = model
        self.head = HeadModel(model, quantizer)
        self.tail = TailModel(model, quantizer)
        self.quantizer = quantizer

    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Compress at the STA, reconstruct at the AP."""
        return self.tail.reconstruct(self.head.compress(inputs))

    def feedback_bits(self) -> int:
        """Per-report over-the-air payload in bits."""
        bits = self.quantizer.bits if self.quantizer is not None else 64
        return self.model.bottleneck_dim * bits + (
            2 * RANGE_SCALAR_BITS if self.quantizer is not None else 0
        )
