"""SplitBeam training and BF prediction (Sec. IV-D).

``train_splitbeam`` applies the paper's recipe to a
:class:`~repro.datasets.builder.CsiDataset`: normalized-L1 loss
(Eq. (8)), Adam for experimental environments / SGD for MATLAB-synthetic
ones, 40 epochs with the 20/30 step decay, batch size 16, and best-
checkpoint selection on the validation split.  Validation can score
either the training loss (cheap default) or the achieved BER (the
paper's criterion), via ``checkpoint_on="loss" | "ber"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import FAST, Fidelity
from repro.errors import TrainingError
from repro.core.model import SplitBeamNet, three_layer_widths
from repro.core.split import BottleneckQuantizer, SplitExecutor
from repro.datasets.builder import CsiDataset
from repro.nn.losses import NormalizedL1Loss
from repro.nn.module import Module
from repro.nn.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.phy.link import BerResult, LinkConfig, LinkSimulator
from repro.utils.complexmat import real_to_complex

__all__ = [
    "TrainedSplitBeam",
    "train_splitbeam",
    "splitbeam_training_config",
    "predict_bf",
    "bf_from_model_inputs",
    "ber_of_model",
]


@dataclass
class TrainedSplitBeam:
    """A trained model plus everything needed to evaluate it."""

    model: SplitBeamNet
    dataset: CsiDataset
    history: TrainingHistory
    quantizer: BottleneckQuantizer | None = None

    @property
    def compression(self) -> float:
        return self.model.compression

    def executor(self) -> SplitExecutor:
        return SplitExecutor(self.model, self.quantizer)

    def test_ber(
        self, link_config: LinkConfig | None = None, max_samples: int | None = None
    ) -> BerResult:
        """BER on the held-out test split."""
        indices = self.dataset.splits.test
        if max_samples is not None:
            indices = indices[:max_samples]
        return ber_of_model(
            self.model,
            self.dataset,
            indices,
            link_config=link_config,
            quantizer=self.quantizer,
        )


def splitbeam_training_config(fidelity: Fidelity, seed: int) -> TrainingConfig:
    """The Sec. IV-D training recipe at one fidelity.

    Public because the zoo builder hashes this config (alongside the
    dataset spec and widths) into its checkpoint keys — any recipe
    change must invalidate stored weights.
    """
    # Documented deviation from Sec. IV-D: the paper uses SGD for its
    # synthetic datasets and Adam for the experimental ones.  In this
    # stack plain SGD at lr 1e-3 diverges (without gradient clipping)
    # or badly under-trains (with it) on the wide 160 MHz models, while
    # Adam reproduces the paper's BER band everywhere — e.g. coded BER
    # 0.018 vs 802.11's 0.020 on D15.  We therefore use Adam for all
    # datasets; see EXPERIMENTS.md.
    optimizer = "adam"
    milestones = (
        max(1, fidelity.epochs // 2),
        max(2, (3 * fidelity.epochs) // 4),
    )
    return TrainingConfig(
        epochs=fidelity.epochs,
        batch_size=16,
        learning_rate=1e-3,
        optimizer=optimizer,
        lr_milestones=milestones,
        lr_gamma=0.1,
        seed=seed,
    )


def train_splitbeam(
    dataset: CsiDataset,
    compression: float = 1.0 / 8.0,
    widths: "list[int] | None" = None,
    fidelity: Fidelity = FAST,
    checkpoint_on: str = "loss",
    link_config: LinkConfig | None = None,
    quantizer_bits: int | None = 16,
    activation: str = "leaky_relu",
    qat_bits: int | None = None,
    seed: int = 0,
) -> TrainedSplitBeam:
    """Train a SplitBeam model on one dataset.

    Parameters
    ----------
    dataset:
        A built :class:`CsiDataset`.
    compression:
        K = bottleneck/input ratio; ignored when explicit ``widths`` are
        given.
    widths:
        Full layer widths (e.g. a Table II architecture).  Must start
        with ``dataset.input_dim`` and end with ``dataset.output_dim``.
    checkpoint_on:
        ``"loss"`` (validation loss, default) or ``"ber"`` (the paper's
        criterion; slower — one link simulation per epoch).
    quantizer_bits:
        Bottleneck quantizer width for deployment; ``None`` disables
        quantization.
    qat_bits:
        Quantization-aware training: inject bottleneck quantization
        noise of this bit width during training (straight-through
        gradients).  Typically set equal to ``quantizer_bits`` when
        deploying at <= 8 bits; ``None`` (default) trains noise-free,
        the paper's recipe.
    """
    if widths is None:
        widths = three_layer_widths(dataset.input_dim, compression)
    if widths[0] != dataset.input_dim or widths[-1] != dataset.output_dim:
        raise TrainingError(
            f"widths {widths} do not match dataset dims "
            f"({dataset.input_dim} -> {dataset.output_dim})"
        )
    model = SplitBeamNet(widths, activation=activation, rng=seed)
    if qat_bits is not None:
        from repro.core.split import QuantizationNoise

        # The noise layer sits between the head Linear and the rest of
        # the network — the position of the over-the-air quantizer — and
        # is an exact pass-through in eval mode.
        model.network.layers.insert(1, QuantizationNoise(qat_bits, rng=seed))
    config = splitbeam_training_config(fidelity, seed)

    validation_metric = None
    if checkpoint_on == "ber":
        validation_metric = _ber_validation_metric(
            dataset, fidelity, link_config
        )
    elif checkpoint_on != "loss":
        raise TrainingError(
            f"checkpoint_on must be 'loss' or 'ber', got {checkpoint_on!r}"
        )

    trainer = Trainer(
        model,
        loss=NormalizedL1Loss(),
        config=config,
        validation_metric=validation_metric,
    )
    x_train, y_train = dataset.train_arrays()
    x_val, y_val = dataset.val_arrays()
    history = trainer.fit(x_train, y_train, x_val, y_val)
    quantizer = (
        BottleneckQuantizer(quantizer_bits) if quantizer_bits is not None else None
    )
    return TrainedSplitBeam(
        model=model, dataset=dataset, history=history, quantizer=quantizer
    )


def predict_bf(
    model: Module,
    dataset: CsiDataset,
    indices: np.ndarray,
    quantizer: BottleneckQuantizer | None = None,
) -> np.ndarray:
    """Model-reconstructed beamforming vectors ``(n, users, S, Nt)``.

    When the model is a :class:`SplitBeamNet` and a quantizer is given,
    prediction goes through the full split path (head -> quantized
    feedback -> tail), i.e. including over-the-air quantization error.
    """
    x, _ = dataset.model_arrays(indices)
    return bf_from_model_inputs(
        model,
        x,
        n_users=dataset.n_users,
        n_subcarriers=dataset.n_subcarriers,
        n_tx=dataset.spec.n_tx,
        quantizer=quantizer,
    )


def bf_from_model_inputs(
    model: Module,
    x: np.ndarray,
    n_users: int,
    n_subcarriers: int,
    n_tx: int,
    quantizer: BottleneckQuantizer | None = None,
) -> np.ndarray:
    """:func:`predict_bf` core on pre-extracted model inputs.

    ``x`` holds one row per (sample, user) as produced by
    :meth:`CsiDataset.model_arrays`; callers that cannot (or should
    not) ship a whole dataset — e.g. session round tasks on a worker
    pool — extract the rows once and call this directly.
    """
    if isinstance(model, SplitBeamNet) and quantizer is not None:
        outputs = SplitExecutor(model, quantizer).run(x)
    else:
        model.eval()
        outputs = model.forward(x)
    n = x.shape[0] // n_users
    bf = real_to_complex(outputs, (n_subcarriers, n_tx))
    return bf.reshape(n, n_users, n_subcarriers, n_tx)


def ber_of_model(
    model: Module,
    dataset: CsiDataset,
    indices: np.ndarray,
    link_config: LinkConfig | None = None,
    quantizer: BottleneckQuantizer | None = None,
) -> BerResult:
    """Measure the BER achieved by a model's reconstructed BFs."""
    bf = predict_bf(model, dataset, indices, quantizer=quantizer)
    simulator = LinkSimulator(link_config or LinkConfig())
    return simulator.measure_ber(dataset.link_channels(indices), bf)


def _ber_validation_metric(
    dataset: CsiDataset, fidelity: Fidelity, link_config: LinkConfig | None
):
    """Validation metric scoring achieved BER on a validation subsample."""
    indices = dataset.splits.val[: fidelity.ber_samples]
    config = link_config or LinkConfig(n_ofdm_symbols=fidelity.ofdm_symbols)

    def metric(model: Module, _x: np.ndarray, _y: np.ndarray) -> float:
        return ber_of_model(model, dataset, indices, link_config=config).ber

    return metric
