"""End-to-end scheme evaluation: BER, STA FLOPs, feedback bits.

This is the entry point the figure benchmarks use: build a dataset,
train the schemes under test, and compare them on the paper's three
axes with a shared link simulation (same noise realizations and noise
calibration for every scheme).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.interface import FeedbackScheme
from repro.core.costs import splitbeam_feedback_bits, splitbeam_head_flops
from repro.core.split import BottleneckQuantizer
from repro.core.training import TrainedSplitBeam, predict_bf
from repro.datasets.builder import CsiDataset
from repro.phy.link import LinkConfig, LinkSimulator

__all__ = ["SplitBeamFeedback", "SchemeEvaluation", "evaluate_scheme", "compare_schemes"]


class SplitBeamFeedback(FeedbackScheme):
    """A trained SplitBeam model exposed as a :class:`FeedbackScheme`."""

    def __init__(self, trained: TrainedSplitBeam) -> None:
        self.trained = trained
        k = trained.compression
        denominator = round(1 / k) if k < 1 else 1
        self.name = f"SplitBeam (K=1/{denominator})" if k < 1 else "SplitBeam"

    @property
    def quantizer(self) -> BottleneckQuantizer | None:
        return self.trained.quantizer

    def reconstruct_bf(
        self, dataset: CsiDataset, indices: np.ndarray
    ) -> np.ndarray:
        return predict_bf(
            self.trained.model, dataset, indices, quantizer=self.quantizer
        )

    def sta_flops(self, dataset: CsiDataset) -> float:
        return splitbeam_head_flops(self.trained.model)

    def feedback_bits(self, dataset: CsiDataset) -> int:
        bits = 16 if self.quantizer is None else self.quantizer.bits
        return splitbeam_feedback_bits(
            self.trained.model.bottleneck_dim, bits_per_element=bits
        )


@dataclass
class SchemeEvaluation:
    """One scheme's scores on one dataset."""

    scheme_name: str
    ber: float
    sta_flops: float
    feedback_bits: int

    def as_row(self) -> list[object]:
        return [self.scheme_name, self.ber, self.sta_flops, self.feedback_bits]


def evaluate_scheme(
    scheme: FeedbackScheme,
    dataset: CsiDataset,
    indices: np.ndarray | None = None,
    link_config: LinkConfig | None = None,
    eval_dataset: CsiDataset | None = None,
    simulator: LinkSimulator | None = None,
) -> SchemeEvaluation:
    """Score one scheme.

    ``eval_dataset`` enables cross-environment testing: the scheme was
    built for ``dataset`` but is evaluated on ``eval_dataset``'s test
    split (same topology, different environment), as in Fig. 12/13.
    ``simulator`` overrides the link simulator (the perf benchmarks pass
    one pinned to the reference BER path); ``link_config`` is ignored
    when a simulator is given.
    """
    target = eval_dataset if eval_dataset is not None else dataset
    if indices is None:
        indices = target.splits.test
    if simulator is None:
        simulator = LinkSimulator(link_config or LinkConfig())
    bf = scheme.reconstruct_bf(target, indices)
    result = simulator.measure_ber(target.link_channels(indices), bf)
    return SchemeEvaluation(
        scheme_name=scheme.name,
        ber=result.ber,
        sta_flops=scheme.sta_flops(target),
        feedback_bits=scheme.feedback_bits(target),
    )


def compare_schemes(
    schemes: "list[FeedbackScheme]",
    dataset: CsiDataset,
    indices: np.ndarray | None = None,
    link_config: LinkConfig | None = None,
    eval_dataset: CsiDataset | None = None,
) -> list[SchemeEvaluation]:
    """Evaluate several schemes under identical link conditions."""
    return [
        evaluate_scheme(
            scheme,
            dataset,
            indices=indices,
            link_config=link_config,
            eval_dataset=eval_dataset,
        )
        for scheme in schemes
    ]
