"""Full-network session simulation: sounding + feedback + goodput over time.

Ties the reproduction's pieces into the system the paper actually
envisions (Fig. 1 "online utilization"): an AP periodically sounds its
STAs, each STA produces beamforming feedback with its configured scheme
(802.11 or a SplitBeam model from the zoo), the link simulator measures
the per-round BER the reconstructed beamforming achieves, adaptive
controllers react, and the campaign model converts sounding airtime
into the goodput left for data at an SINR-selected MCS.

This is the integration surface the examples and the end-to-end tests
drive; each constituent model is unit-tested in its own package.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.adaptive import AdaptiveCompressionController, QosProfile
from repro.core.training import TrainedSplitBeam, predict_bf
from repro.core.zoo import ModelZoo, NetworkConfiguration
from repro.datasets.builder import CsiDataset
from repro.errors import ConfigurationError
from repro.phy.link import LinkConfig, LinkSimulator
from repro.phy.mcs import data_rate_bps, select_mcs
from repro.sounding.campaign import MU_MIMO_SOUNDING_INTERVAL_S, SoundingCampaign
from repro.standard.feedback import Dot11FeedbackConfig, bmr_bits

__all__ = ["RoundRecord", "SessionReport", "NetworkSession"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything measured in one sounding round."""

    index: int
    scheme: str  # model label or "802.11"
    feedback_bits: int
    ber: float
    mean_sinr_db: float
    occupancy: float
    mcs_index: int
    goodput_bps: float
    controller_action: str = "n/a"


@dataclass
class SessionReport:
    """Aggregated outcome of a simulated session."""

    rounds: list[RoundRecord] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def mean_ber(self) -> float:
        if not self.rounds:
            return 0.0
        return float(np.mean([r.ber for r in self.rounds]))

    @property
    def mean_goodput_bps(self) -> float:
        if not self.rounds:
            return 0.0
        return float(np.mean([r.goodput_bps for r in self.rounds]))

    @property
    def mean_occupancy(self) -> float:
        if not self.rounds:
            return 0.0
        return float(np.mean([r.occupancy for r in self.rounds]))

    def rows(self) -> list[list[object]]:
        """Table rows for the report renderer."""
        return [
            [
                r.index + 1,
                r.scheme,
                r.feedback_bits,
                r.ber,
                f"MCS{r.mcs_index}",
                r.goodput_bps / 1e6,
                r.controller_action,
            ]
            for r in self.rounds
        ]


class NetworkSession:
    """Simulates an AP serving one MU-MIMO group over many sounding rounds.

    Parameters
    ----------
    dataset:
        Supplies the channel realizations each round samples from (its
        network configuration defines the MU-MIMO group).
    trained:
        The SplitBeam models available (from the zoo bucket matching the
        dataset's configuration), keyed by bottleneck width, or ``None``
        for an 802.11-only session.
    qos:
        BER ceiling and objective weighting for the adaptive controller.
    samples_per_round:
        CSI samples measured per sounding round (more = smoother BER).
    """

    def __init__(
        self,
        dataset: CsiDataset,
        zoo: ModelZoo | None = None,
        trained_models: "dict[int, TrainedSplitBeam] | None" = None,
        qos: QosProfile | None = None,
        link_config: LinkConfig | None = None,
        interval_s: float = MU_MIMO_SOUNDING_INTERVAL_S,
        samples_per_round: int = 8,
        seed: int = 0,
    ) -> None:
        if samples_per_round < 1:
            raise ConfigurationError("samples_per_round must be >= 1")
        if (zoo is None) != (trained_models is None):
            raise ConfigurationError(
                "zoo and trained_models must be provided together "
                "(or both omitted for an 802.11-only session)"
            )
        self.dataset = dataset
        self.config = NetworkConfiguration(
            n_tx=dataset.spec.n_tx,
            n_rx=dataset.spec.n_rx,
            bandwidth_mhz=dataset.spec.bandwidth_mhz,
        )
        self.qos = qos or QosProfile()
        self.link = LinkSimulator(link_config or LinkConfig())
        self.interval_s = float(interval_s)
        self.samples_per_round = int(samples_per_round)
        self.rng = np.random.default_rng(seed)
        self.trained_models = trained_models
        self.controller: AdaptiveCompressionController | None = None
        if zoo is not None:
            candidates = zoo.candidates(self.config)
            if not candidates:
                raise ConfigurationError(
                    f"zoo has no models for {self.config.label()}"
                )
            self.controller = AdaptiveCompressionController(
                candidates, self.qos
            )

    # -- internals --------------------------------------------------------------

    def _dot11_bits(self) -> int:
        spec = self.dataset.spec
        return bmr_bits(
            Dot11FeedbackConfig(
                n_tx=spec.n_tx,
                n_rx=spec.n_rx,
                n_streams=1,
                bandwidth_mhz=spec.bandwidth_mhz,
            )
        )

    def _measure_round(
        self, indices: np.ndarray
    ) -> tuple[str, int, float, float]:
        """Returns (scheme label, feedback bits, BER, mean SINR dB)."""
        channels = self.dataset.link_channels(indices)
        if self.controller is not None and self.trained_models is not None:
            entry = self.controller.current
            trained = self.trained_models[entry.model.bottleneck_dim]
            bf = predict_bf(
                trained.model, self.dataset, indices, quantizer=trained.quantizer
            )
            scheme = entry.model.label()
            bits = entry.feedback_bits
        else:
            from repro.baselines.dot11 import Dot11Feedback

            bf = Dot11Feedback().reconstruct_bf(self.dataset, indices)
            scheme = "802.11"
            bits = self._dot11_bits()
        ber = self.link.measure_ber(channels, bf).ber
        metrics = self.link.measure_metrics(channels, bf)
        return scheme, bits, ber, metrics.mean_sinr_db

    # -- public API -----------------------------------------------------------

    def run(self, n_rounds: int) -> SessionReport:
        """Simulate ``n_rounds`` sounding rounds and aggregate a report."""
        if n_rounds < 1:
            raise ConfigurationError("n_rounds must be >= 1")
        report = SessionReport()
        pool = self.dataset.splits.test
        n_users = self.dataset.n_users
        for round_index in range(n_rounds):
            indices = self.rng.choice(
                pool, size=min(self.samples_per_round, pool.size), replace=False
            )
            scheme, bits, ber, sinr_db = self._measure_round(indices)

            action = "n/a"
            if self.controller is not None:
                self.controller.observe(ber)
                action = self.controller.history[-1][1]

            campaign = SoundingCampaign(
                n_users=n_users,
                bandwidth_mhz=self.dataset.spec.bandwidth_mhz,
                feedback_bits=bits,
                interval_s=self.interval_s,
            )
            occupancy = campaign.report().occupancy
            mcs = select_mcs(sinr_db, backoff_db=3.0)
            rate = data_rate_bps(
                mcs.index,
                self.dataset.spec.bandwidth_mhz,
                n_streams=1,
            )
            goodput = rate * max(1.0 - occupancy, 0.0) * n_users
            report.rounds.append(
                RoundRecord(
                    index=round_index,
                    scheme=scheme,
                    feedback_bits=bits,
                    ber=ber,
                    mean_sinr_db=sinr_db,
                    occupancy=occupancy,
                    mcs_index=mcs.index,
                    goodput_bps=goodput,
                    controller_action=action,
                )
            )
        return report
