"""Full-network session simulation: sounding + feedback + goodput over time.

Ties the reproduction's pieces into the system the paper actually
envisions (Fig. 1 "online utilization"): an AP periodically sounds its
STAs, each STA produces beamforming feedback with its configured scheme
(802.11 or a SplitBeam model from the zoo), the link simulator measures
the per-round BER the reconstructed beamforming achieves, adaptive
controllers react, and the campaign model converts sounding airtime
into the goodput left for data at an SINR-selected MCS.

This is the integration surface the examples and the end-to-end tests
drive; each constituent model is unit-tested in its own package.

The campaign loop executes through :mod:`repro.runtime.executor`: each
sounding round is a pure measurement task, and the RNG/scheme logic
runs in ``resolve`` hooks in the coordinating process, in round order.
Fixed-scheme (802.11-only) sessions have no cross-round coupling, so
their rounds form an edge-free DAG that a worker pool runs in parallel;
adaptive sessions are a feedback chain (the controller reacts to each
round before the next is planned) and always execute in-process.
Results are identical for any worker count either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.adaptive import AdaptiveCompressionController, QosProfile
from repro.core.split import BottleneckQuantizer
from repro.core.training import TrainedSplitBeam
from repro.core.zoo import ModelZoo, NetworkConfiguration
from repro.datasets.builder import CsiDataset
from repro.errors import ConfigurationError
from repro.phy.link import LinkConfig, LinkSimulator
from repro.phy.mcs import data_rate_bps, select_mcs
from repro.runtime.executor import Task, run_tasks
from repro.runtime.payloads import PayloadStore
from repro.sounding.campaign import MU_MIMO_SOUNDING_INTERVAL_S, SoundingCampaign
from repro.standard.feedback import Dot11FeedbackConfig, bmr_bits

__all__ = [
    "RoundRecord",
    "SessionReport",
    "NetworkSession",
    "dot11_round_scheme",
    "entry_round_scheme",
]


def dot11_round_scheme(dataset: CsiDataset, indices: np.ndarray) -> dict:
    """The 802.11 payload for one ``session_round``/``network_round`` task.

    Ships the ground-truth beamforming slice the standard quantizer
    reconstructs from — never the dataset itself.  The slice is unique
    per round, so it travels inline: interning it would pin every
    round's arrays in the payload store for the whole run for zero
    dedup benefit.
    """
    spec = dataset.spec
    bits = bmr_bits(
        Dot11FeedbackConfig(
            n_tx=spec.n_tx,
            n_rx=spec.n_rx,
            n_streams=1,
            bandwidth_mhz=spec.bandwidth_mhz,
        )
    )
    return {
        "kind": "dot11",
        "bits": bits,
        "bf_true": dataset.link_bf(indices),
    }


def entry_round_scheme(
    dataset: CsiDataset,
    indices: np.ndarray,
    entry,
    trained: "TrainedSplitBeam | None" = None,
    payloads: "PayloadStore | None" = None,
) -> dict:
    """A zoo entry's payload for one round task (model + inputs).

    ``trained`` optionally overrides the entry's model/quantizer with a
    freshly-trained pair (the :class:`NetworkSession` ``trained_models``
    path); by default the entry carries everything the STA deploys.

    With ``payloads``, the model and quantizer are interned: the pair
    is shared by every round that deploys the same rung, so each worker
    deserializes it once per run instead of once per round task.  The
    per-round input rows are unique, so they always travel inline
    (interning them would pin every round's arrays for the whole run).
    """
    if trained is not None:
        model, quantizer = trained.model, trained.quantizer
    else:
        model = entry.model
        quantizer = (
            BottleneckQuantizer(entry.quantizer_bits)
            if entry.quantizer_bits is not None
            else None
        )
    x, _ = dataset.model_arrays(indices)
    if payloads is not None:
        model = payloads.intern(model)
        quantizer = payloads.intern(quantizer)
    return {
        "kind": "model",
        "label": entry.model.label(),
        "bits": entry.feedback_bits,
        "model": model,
        "quantizer": quantizer,
        "x": x,
    }


@dataclass(frozen=True)
class RoundRecord:
    """Everything measured in one sounding round."""

    index: int
    scheme: str  # model label or "802.11"
    feedback_bits: int
    ber: float
    mean_sinr_db: float
    occupancy: float
    mcs_index: int
    goodput_bps: float
    controller_action: str = "n/a"


@dataclass
class SessionReport:
    """Aggregated outcome of a simulated session."""

    rounds: list[RoundRecord] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def mean_ber(self) -> float:
        if not self.rounds:
            return 0.0
        return float(np.mean([r.ber for r in self.rounds]))

    @property
    def mean_goodput_bps(self) -> float:
        if not self.rounds:
            return 0.0
        return float(np.mean([r.goodput_bps for r in self.rounds]))

    @property
    def mean_occupancy(self) -> float:
        if not self.rounds:
            return 0.0
        return float(np.mean([r.occupancy for r in self.rounds]))

    def rows(self) -> list[list[object]]:
        """Table rows for the report renderer."""
        return [
            [
                r.index + 1,
                r.scheme,
                r.feedback_bits,
                r.ber,
                f"MCS{r.mcs_index}",
                r.goodput_bps / 1e6,
                r.controller_action,
            ]
            for r in self.rounds
        ]


class NetworkSession:
    """Simulates an AP serving one MU-MIMO group over many sounding rounds.

    Parameters
    ----------
    dataset:
        Supplies the channel realizations each round samples from (its
        network configuration defines the MU-MIMO group).
    zoo:
        The :class:`ModelZoo` holding the SplitBeam ladder for the
        dataset's configuration (e.g. from
        :func:`repro.core.zoo_builder.train_zoo`), or ``None`` for an
        802.11-only session.  Models and their bottleneck quantizers
        come straight from the zoo entries.
    trained_models:
        Optional override keyed by bottleneck width: use these
        :class:`TrainedSplitBeam` objects (model + quantizer) instead of
        the zoo entries' own — e.g. to drive a session with
        freshly-trained models before they are published.  Requires
        ``zoo``.
    qos:
        BER ceiling and objective weighting for the adaptive controller.
    samples_per_round:
        CSI samples measured per sounding round (more = smoother BER).
    n_workers:
        Worker processes for the round measurements (``None`` reads
        ``$REPRO_RUNTIME_WORKERS``; the default 1 stays in-process).
        Only fixed-scheme sessions parallelize — an adaptive session's
        rounds are a controller feedback chain with nothing to overlap,
        so it always runs in-process.  Results never depend on this.
    """

    def __init__(
        self,
        dataset: CsiDataset,
        zoo: ModelZoo | None = None,
        trained_models: "dict[int, TrainedSplitBeam] | None" = None,
        qos: QosProfile | None = None,
        link_config: LinkConfig | None = None,
        interval_s: float = MU_MIMO_SOUNDING_INTERVAL_S,
        samples_per_round: int = 8,
        seed: int = 0,
        n_workers: int | None = None,
    ) -> None:
        if samples_per_round < 1:
            raise ConfigurationError("samples_per_round must be >= 1")
        if trained_models is not None and zoo is None:
            raise ConfigurationError(
                "trained_models is an override of zoo entries and "
                "requires a zoo (omit both for an 802.11-only session)"
            )
        self.dataset = dataset
        self.config = NetworkConfiguration(
            n_tx=dataset.spec.n_tx,
            n_rx=dataset.spec.n_rx,
            bandwidth_mhz=dataset.spec.bandwidth_mhz,
        )
        self.qos = qos or QosProfile()
        self.link = LinkSimulator(link_config or LinkConfig())
        self.interval_s = float(interval_s)
        self.samples_per_round = int(samples_per_round)
        self.rng = np.random.default_rng(seed)
        self.n_workers = n_workers
        self.trained_models = trained_models
        self.controller: AdaptiveCompressionController | None = None
        if zoo is not None:
            candidates = zoo.candidates(self.config)
            if not candidates:
                raise ConfigurationError(
                    f"zoo has no models for {self.config.label()}"
                )
            if trained_models is not None:
                # The controller may walk the whole ladder at runtime; a
                # partial override would only surface as a KeyError
                # several rounds in.
                missing = sorted(
                    {e.model.bottleneck_dim for e in candidates}
                    - set(trained_models)
                )
                if missing:
                    raise ConfigurationError(
                        "trained_models must cover every candidate "
                        f"bottleneck width; missing {missing}"
                    )
            self.controller = AdaptiveCompressionController(
                candidates, self.qos
            )

    # -- internals --------------------------------------------------------------

    def _round_params(
        self, indices: np.ndarray, payloads: "PayloadStore | None" = None
    ) -> dict:
        """Parameters for one ``session_round`` task (pure measurement).

        Ships only the round's data slices (and the model, for DNN
        rounds) — not the dataset — so a worker pool never pickles the
        full CSI tensors.  The run-shared model/quantizer are interned
        in the payload store when one is given; the unique per-round
        slices travel inline.
        """
        if self.controller is not None:
            entry = self.controller.current
            trained = (
                self.trained_models[entry.model.bottleneck_dim]
                if self.trained_models is not None
                else None
            )
            scheme = entry_round_scheme(
                self.dataset, indices, entry, trained, payloads=payloads
            )
        else:
            scheme = dot11_round_scheme(self.dataset, indices)
        return {
            "channels": self.dataset.link_channels(indices),
            "link_config": self.link.config,
            "scheme": scheme,
        }

    def _observe(self, ber: float, actions: "list[str]") -> None:
        """Feed one round's BER to the controller; record its action."""
        if self.controller is not None:
            self.controller.observe(ber)
            actions.append(self.controller.history[-1][1])
        else:
            actions.append("n/a")

    # -- public API -----------------------------------------------------------

    def run(self, n_rounds: int) -> SessionReport:
        """Simulate ``n_rounds`` sounding rounds and aggregate a report."""
        if n_rounds < 1:
            raise ConfigurationError("n_rounds must be >= 1")
        pool = self.dataset.splits.test
        n_users = self.dataset.n_users
        actions: list[str] = []
        # Adaptive sessions are a feedback chain: round i's scheme
        # choice needs round i-1's BER observed first, so the DAG is a
        # line and a pool would only add pickling overhead — run those
        # in-process.  Fixed-scheme rounds are independent tasks.
        chained = self.controller is not None

        # The resolve hooks run in the coordinator, in round order (for
        # the chain: after the previous round's BER has been observed),
        # preserving the serial loop's exact RNG and controller
        # trajectory.
        payloads = PayloadStore()

        def make_resolve(round_index: int):
            def resolve(dep_results: dict) -> dict:
                if chained and round_index > 0:
                    prev = dep_results[f"round-{round_index - 1:04d}"]
                    self._observe(prev["ber"], actions)
                indices = self.rng.choice(
                    pool,
                    size=min(self.samples_per_round, pool.size),
                    replace=False,
                )
                return self._round_params(indices, payloads)

            return resolve

        tasks = [
            Task(
                task_id=f"round-{i:04d}",
                fn="repro.runtime.tasks:session_round",
                deps=(f"round-{i - 1:04d}",) if chained and i > 0 else (),
                resolve=make_resolve(i),
            )
            for i in range(n_rounds)
        ]
        with payloads:
            results = run_tasks(
                tasks,
                n_workers=1 if chained else self.n_workers,
                payloads=payloads,
            )
        if chained:
            self._observe(results[f"round-{n_rounds - 1:04d}"]["ber"], actions)
        else:
            actions = ["n/a"] * n_rounds

        report = SessionReport()
        for round_index in range(n_rounds):
            measured = results[f"round-{round_index:04d}"]
            bits = measured["feedback_bits"]
            campaign = SoundingCampaign(
                n_users=n_users,
                bandwidth_mhz=self.dataset.spec.bandwidth_mhz,
                feedback_bits=bits,
                interval_s=self.interval_s,
            )
            campaign_report = campaign.report()
            occupancy = campaign_report.occupancy
            mcs = select_mcs(measured["mean_sinr_db"], backoff_db=3.0)
            rate = data_rate_bps(
                mcs.index,
                self.dataset.spec.bandwidth_mhz,
                n_streams=1,
            )
            # Routed through the report so a round whose sounding
            # exchange overruns the interval reports zero goodput
            # instead of whatever airtime the clamp left over.
            goodput = campaign_report.goodput_bps(rate * n_users)
            report.rounds.append(
                RoundRecord(
                    index=round_index,
                    scheme=measured["scheme"],
                    feedback_bits=bits,
                    ber=measured["ber"],
                    mean_sinr_db=measured["mean_sinr_db"],
                    occupancy=occupancy,
                    mcs_index=mcs.index,
                    goodput_bps=goodput,
                    controller_action=actions[round_index],
                )
            )
        return report
