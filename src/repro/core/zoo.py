"""Trained-model registry: the deployment half of Fig. 1.

The paper's deployment story (Sec. IV-D): "SplitBeam is trained offline
for various network configurations and does not require retraining.  The
STAs select the proper trained DNN according to the network configuration
information acquired from the NDP preamble."  This module is that
catalog: a :class:`ModelZoo` maps a :class:`NetworkConfiguration` (what
the NDP preamble announces) to the trained models available for it, one
per compression level, each carrying the measured BER and cost numbers
the runtime selector (``repro.core.adaptive``) needs.

Zoos persist to a directory of ``.npz`` weight files plus a JSON
manifest, so an AP can ship one artifact to heterogeneous STAs.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass

from repro.errors import ConfigurationError, DatasetError
from repro.core.costs import splitbeam_feedback_bits, splitbeam_head_flops
from repro.core.model import SplitBeamNet
from repro.core.training import TrainedSplitBeam
from repro.nn.serialize import load_state, save_state, state_dict, state_digest
from repro.phy.ofdm import band_plan

__all__ = ["NetworkConfiguration", "ZooEntry", "ModelZoo"]

_MANIFEST_NAME = "zoo_manifest.json"

#: The zoo's own content-addressed weight filenames, e.g.
#: ``2x1_20MHz_224-28-28-224_0f3a9c21bd5e.npz`` — save() only ever
#: cleans files matching this (or referenced by a manifest it wrote),
#: never unrelated ``.npz`` artifacts.
_WEIGHT_FILE_RE = re.compile(
    r"^\d+x\d+_\d+MHz_\d+(?:-\d+)+_[0-9a-f]{12}\.npz$"
)


@dataclass(frozen=True)
class NetworkConfiguration:
    """The MIMO/band configuration announced in the NDP preamble.

    This is the lookup key a STA uses to pick its trained DNN: antenna
    counts and channel width determine the model's input dimension, so a
    model trained for one configuration cannot serve another.
    """

    n_tx: int
    n_rx: int
    bandwidth_mhz: int

    def __post_init__(self) -> None:
        if self.n_tx < 1 or self.n_rx < 1:
            raise ConfigurationError("antenna counts must be >= 1")
        band_plan(self.bandwidth_mhz)  # validates the bandwidth

    @property
    def n_subcarriers(self) -> int:
        return band_plan(self.bandwidth_mhz).n_subcarriers

    @property
    def input_dim(self) -> int:
        """Flattened real CSI dimension ``2 * Nt * Nr * S``."""
        return 2 * self.n_tx * self.n_rx * self.n_subcarriers

    def label(self) -> str:
        return f"{self.n_tx}x{self.n_rx}@{self.bandwidth_mhz}MHz"

    @classmethod
    def from_label(cls, label: str) -> "NetworkConfiguration":
        """Parse a :meth:`label` string back into a configuration."""
        try:
            antennas, band = label.split("@")
            n_tx, n_rx = antennas.split("x")
            bandwidth = band.removesuffix("MHz")
            return cls(int(n_tx), int(n_rx), int(bandwidth))
        except (ValueError, AttributeError):
            raise ConfigurationError(
                f"malformed configuration label {label!r}; "
                "expected e.g. '2x1@20MHz'"
            ) from None


@dataclass
class ZooEntry:
    """One trained model plus the numbers the runtime selector needs."""

    config: NetworkConfiguration
    model: SplitBeamNet
    quantizer_bits: int | None
    measured_ber: float
    notes: str = ""

    def __post_init__(self) -> None:
        if self.model.input_dim != self.config.input_dim:
            raise ConfigurationError(
                f"model input dim {self.model.input_dim} does not match "
                f"configuration {self.config.label()} "
                f"(expects {self.config.input_dim})"
            )
        if not 0.0 <= self.measured_ber <= 1.0:
            raise ConfigurationError("measured_ber must be in [0, 1]")

    @property
    def compression(self) -> float:
        return self.model.compression

    @property
    def head_flops(self) -> float:
        return splitbeam_head_flops(self.model)

    @property
    def tail_flops(self) -> float:
        return 2.0 * self.model.tail_macs()

    @property
    def feedback_bits(self) -> int:
        bits = 16 if self.quantizer_bits is None else self.quantizer_bits
        return splitbeam_feedback_bits(
            self.model.bottleneck_dim, bits_per_element=bits
        )

    def key(self) -> str:
        return f"{self.config.label()}/{self.model.label()}"


class ModelZoo:
    """All trained SplitBeam models an AP distributes to its STAs.

    Entries are grouped by :class:`NetworkConfiguration`; within one
    configuration they are sorted most-compressed-first, the order the
    BOP heuristic (Sec. IV-C) probes them in.
    """

    def __init__(self) -> None:
        self._entries: dict[NetworkConfiguration, list[ZooEntry]] = {}

    # -- registration -----------------------------------------------------------

    def register(self, entry: ZooEntry) -> None:
        """Add one entry; rejects duplicate (config, architecture) pairs."""
        bucket = self._entries.setdefault(entry.config, [])
        if any(e.model.label() == entry.model.label() for e in bucket):
            raise ConfigurationError(
                f"zoo already has a model {entry.model.label()} for "
                f"{entry.config.label()}"
            )
        bucket.append(entry)
        bucket.sort(key=lambda e: e.compression)

    def register_trained(
        self,
        trained: TrainedSplitBeam,
        measured_ber: float | None = None,
        notes: str = "",
    ) -> ZooEntry:
        """Register a :class:`TrainedSplitBeam` straight from training.

        ``measured_ber`` defaults to a fresh test-split measurement.
        """
        spec = trained.dataset.spec
        config = NetworkConfiguration(
            n_tx=spec.n_tx, n_rx=spec.n_rx, bandwidth_mhz=spec.bandwidth_mhz
        )
        if measured_ber is None:
            measured_ber = trained.test_ber().ber
        entry = ZooEntry(
            config=config,
            model=trained.model,
            quantizer_bits=(
                trained.quantizer.bits if trained.quantizer is not None else None
            ),
            measured_ber=float(measured_ber),
            notes=notes,
        )
        self.register(entry)
        return entry

    # -- lookup -----------------------------------------------------------------

    def configurations(self) -> list[NetworkConfiguration]:
        """All configurations with at least one model."""
        return sorted(
            self._entries, key=lambda c: (c.n_tx, c.n_rx, c.bandwidth_mhz)
        )

    def candidates(self, config: NetworkConfiguration) -> list[ZooEntry]:
        """Models for one configuration, most compressed first."""
        return list(self._entries.get(config, []))

    def on_ndp(self, config: NetworkConfiguration) -> ZooEntry:
        """STA-side lookup when an NDP announces ``config``.

        Returns the *least* compressed (most accurate) model as the safe
        default; the adaptive controller refines from there.  Raises
        :class:`ConfigurationError` when the zoo has nothing for the
        announced configuration (the STA then falls back to 802.11).
        """
        bucket = self.candidates(config)
        if not bucket:
            raise ConfigurationError(
                f"no trained model for configuration {config.label()}; "
                "fall back to the 802.11 feedback path"
            )
        return bucket[-1]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())

    def __contains__(self, config: NetworkConfiguration) -> bool:
        return config in self._entries and bool(self._entries[config])

    # -- persistence -----------------------------------------------------------

    def save(self, directory: str) -> None:
        """Write all weights (npz) plus a JSON manifest to ``directory``.

        Weight filenames are content-addressed (they embed a digest of
        the parameters), so re-saving a retrained zoo writes *new*
        files and the manifest/weights pairing stays consistent at
        every crash point: before the manifest commits, the old
        manifest still references the old (untouched) files; after, the
        new one references the new files.  Files the previous manifest
        referenced but the new one no longer does are removed last, so
        a shrunk or re-keyed zoo never leaves orphaned weights —
        unrelated ``.npz`` artifacts the zoo never wrote are left
        alone.
        """
        os.makedirs(directory, exist_ok=True)
        previous = self._manifest_weights(directory)
        manifest: list[dict] = []
        for config, bucket in self._entries.items():
            for entry in bucket:
                digest = state_digest(state_dict(entry.model))
                filename = (
                    f"{config.label().replace('@', '_')}_"
                    f"{entry.model.label()}_{digest[:12]}.npz"
                )
                # Atomic per-file write; identical weights re-save to
                # the same (byte-identical) name, retrained ones to a
                # fresh name, never truncating a referenced file.
                tmp = os.path.join(
                    directory, f"{filename}.tmp.{os.getpid()}.npz"
                )
                save_state(entry.model, tmp)
                os.replace(tmp, os.path.join(directory, filename))
                manifest.append(
                    {
                        "config": asdict(config),
                        "widths": entry.model.widths,
                        "activation": entry.model.activation_name,
                        "quantizer_bits": entry.quantizer_bits,
                        "measured_ber": entry.measured_ber,
                        "notes": entry.notes,
                        "weights": filename,
                    }
                )
        # Commit the new manifest (atomically) before removing orphans:
        # at every crash point the manifest on disk references exactly
        # the (content-addressed) weights it was written against, so
        # :meth:`load` never breaks and never pairs old metadata with
        # new weights.
        manifest_path = os.path.join(directory, _MANIFEST_NAME)
        tmp_manifest = f"{manifest_path}.tmp.{os.getpid()}"
        with open(tmp_manifest, "w") as fh:
            json.dump({"version": 1, "entries": manifest}, fh, indent=2)
        os.replace(tmp_manifest, manifest_path)
        # Cleanup scope: files the previous manifest referenced, plus
        # zoo-pattern weight files a crash between an earlier manifest
        # commit and its cleanup may have left unreferenced.
        leaked = {
            name
            for name in os.listdir(directory)
            if _WEIGHT_FILE_RE.match(name)
        }
        referenced = {item["weights"] for item in manifest}
        for name in (previous | leaked) - referenced:
            path = os.path.join(directory, name)
            if os.path.exists(path):
                os.remove(path)
        self._sweep_save_leftovers(directory)

    @staticmethod
    def _sweep_save_leftovers(directory: str, min_age_s: float = 3600.0) -> None:
        """Remove aged ``*.tmp.*`` residue of crashed earlier saves.

        Scoped to the zoo's own temp naming (weight-pattern or manifest
        prefixes only) and to files older than ``min_age_s``, so a
        concurrent save's in-flight files and unrelated artifacts are
        never touched.
        """
        import time

        now = time.time()
        for name in os.listdir(directory):
            if ".tmp." not in name:
                continue
            base = name.split(".tmp.")[0]
            if base != _MANIFEST_NAME and not _WEIGHT_FILE_RE.match(base):
                continue
            path = os.path.join(directory, name)
            try:
                if now - os.path.getmtime(path) >= min_age_s:
                    os.remove(path)
            except OSError:
                pass  # vanished under us or unreadable: leave it

    @staticmethod
    def _manifest_weights(directory: str) -> "set[str]":
        """Weight filenames the manifest already in ``directory`` references."""
        manifest_path = os.path.join(directory, _MANIFEST_NAME)
        try:
            with open(manifest_path) as fh:
                manifest = json.load(fh)
            return {
                str(item["weights"])
                for item in manifest.get("entries", [])
                if "weights" in item
            }
        except (OSError, ValueError, TypeError, AttributeError):
            return set()

    @classmethod
    def load(cls, directory: str) -> "ModelZoo":
        """Rebuild a zoo saved by :meth:`save`."""
        manifest_path = os.path.join(directory, _MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise DatasetError(f"no zoo manifest at {manifest_path}")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        if manifest.get("version") != 1:
            raise DatasetError(
                f"unsupported zoo manifest version {manifest.get('version')!r}"
            )
        zoo = cls()
        for item in manifest["entries"]:
            config = NetworkConfiguration(**item["config"])
            model = SplitBeamNet(item["widths"], activation=item["activation"])
            load_state(model, os.path.join(directory, item["weights"]))
            zoo.register(
                ZooEntry(
                    config=config,
                    model=model,
                    quantizer_bits=item["quantizer_bits"],
                    measured_ber=item["measured_ber"],
                    notes=item.get("notes", ""),
                )
            )
        return zoo
