"""Multi-STA network campaigns: the paper's headline scenario at scale.

The intro's argument is about a *network*: an AP serving "heterogeneous
devices and a wide range of performance requirements" (Sec. IV-B) under
the 10 ms MU-MIMO sounding deadline (Sec. I).  :class:`NetworkCampaign`
simulates exactly that — N STAs (tens to hundreds), each with its own
dataset (antenna configuration, bandwidth, environment), QoS profile,
device cost model, and feedback scheme, sounded every ``interval_s``
for ``n_rounds`` rounds while mobility/aging episodes make the measured
BER drift and each STA's :class:`AdaptiveCompressionController` walks
its compression ladder in response.

Execution reuses the whole ``repro.runtime`` stack:

- SplitBeam ladders build through :func:`~repro.core.zoo_builder.
  train_zoo` (one merged :class:`TrainingGrid`, deduplicated across
  STAs, warm-loaded from a :class:`CheckpointStore`);
- every STA-round is a pure seeded :func:`~repro.runtime.tasks.
  network_round` task.  A SplitBeam STA's rounds form a feedback chain
  (round *r* plans only after round *r-1*'s BER is observed, via
  ``resolve`` hooks in the coordinator), 802.11 STAs' rounds are
  independent — and different STAs' chains always run in parallel on
  the worker pool;
- results flow through the content-addressed :class:`ResultCache`
  (keys exclude the cosmetic STA ``name`` and fidelity ``name``), so a
  warm re-run replays every round from the store and executes **zero**
  link simulations, and manifests are byte-identical for any worker
  count.

Per-round aggregate airtime/occupancy numbers come from
:mod:`repro.sounding.campaign`: STAs group by bandwidth into
:class:`SoundingCampaign` rounds whose reports combine via
:func:`combine_reports` — surfacing both the clamped medium occupancy
and the honest (unclamped) ``occupancy_ratio``/``feasible`` overload
signals.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext as _null
from dataclasses import dataclass, replace

import numpy as np

from repro.channels.doppler import jakes_ar1_coefficient
from repro.config import Fidelity
from repro.core.adaptive import (
    AdaptiveCompressionController,
    QosProfile,
    select_model,
)
from repro.core.costs import StaCostModel
from repro.core.session import dot11_round_scheme, entry_round_scheme
from repro.core.zoo import ModelZoo, NetworkConfiguration, ZooEntry
from repro.core.zoo_builder import train_zoo
from repro.datasets import build_dataset, dataset_spec
from repro.errors import ConfigurationError
from repro.obs import trace as trace_mod
from repro.obs.export import write_trace
from repro.phy.link import LinkConfig
from repro.phy.mcs import data_rate_bps, select_mcs
from repro.runtime import faults as faults_mod
from repro.runtime.cache import ResultCache
from repro.runtime.checkpoints import CheckpointStore
from repro.runtime.executor import (
    RetryPolicy,
    RunHealth,
    Task,
    resolve_worker_count,
    run_tasks,
)
from repro.runtime.hashing import code_version, task_key
from repro.runtime.payloads import PayloadStore
from repro.runtime.spec import (
    NetworkCampaignSpec,
    TrainingGrid,
    fidelity_from_dict,
    zoo_entry,
)
from repro.sounding.aging import stale_sinr_db
from repro.sounding.campaign import SoundingCampaign, combine_reports
from repro.standard.flopmodel import dot11_flops
from repro.utils.artifacts import write_json_artifact

__all__ = [
    "NetworkCampaign",
    "NetworkCampaignResult",
    "run_campaign",
    "campaign_round_spec",
]

#: Bump when the campaign-manifest layout changes incompatibly.
CAMPAIGN_SCHEMA_VERSION = 1

#: Result-cache namespace for STA-round measurements (never collides
#: with scenario-point or checkpoint addresses).
CAMPAIGN_ROUND_KIND = "network-round"

#: The campaign's task entry point (importable in worker processes).
ROUND_FN = "repro.runtime.tasks:network_round"

#: Link-adaptation backoff applied when mapping a round's measured SINR
#: to the MCS behind the goodput accounting (matches NetworkSession).
MCS_BACKOFF_DB = 3.0


def campaign_round_spec(
    spec: NetworkCampaignSpec, sta: dict, round_index: int
) -> dict:
    """The cache-relevant spec of one STA-round (JSON-able, stable).

    A round's measurement is a pure function of the campaign-level
    environment (interval, base link, episodes, fidelity), the STA's
    own profile, and the round index — the adaptive chain is
    deterministic, so earlier rounds are implied.  Other STAs never
    influence it, and the cosmetic ``name`` fields are dropped, so a
    renamed STA (or the same profile inside a different campaign) keeps
    its cache entries.  ``n_rounds`` and episodes that only start
    *after* this round are likewise excluded (``_episode_at`` never
    consults them, and the implied earlier rounds consult strictly
    fewer): a longer campaign — even one whose later episode schedule
    shifted with its length — re-uses a shorter one's cached prefix.
    """
    return {
        "campaign": {
            "interval_s": spec.interval_s,
            "link": dict(spec.link),
            "episodes": [
                dict(episode)
                for episode in spec.episodes
                if episode["start_round"] <= round_index
            ],
            "fidelity": {
                key: value
                for key, value in spec.fidelity.items()
                if key != "name"
            },
        },
        "sta": {key: value for key, value in sta.items() if key != "name"},
        "round": int(round_index),
    }


def _episode_at(episodes, round_index: int) -> "tuple[float, float]":
    """(doppler_scale, snr_offset_db) in force at one round."""
    scale, offset = 1.0, 0.0
    for episode in episodes:
        if episode["start_round"] > round_index:
            break
        scale = episode["doppler_scale"]
        offset = episode["snr_offset_db"]
    return scale, offset


def _round_snr_db(
    base_snr_db: float,
    doppler_hz: float,
    interval_s: float,
    n_users: int,
    scale: float,
    offset_db: float,
) -> float:
    """The round's operating SNR after the mobility/aging episode.

    CSI inside a sounding interval is on average ``interval/2`` old, so
    the Jakes correlation at that lag (``channels.doppler``) sets how
    much of the beamforming still points at the channel; the stale-CSI
    SINR model (``sounding.aging``) converts the de-correlated residue
    into inter-user interference.  Episodes scale the Doppler spread
    (mobility bursts) and shift the fresh SNR (blockage).
    """
    rho = jakes_ar1_coefficient(doppler_hz * scale, interval_s / 2.0)
    return stale_sinr_db(base_snr_db + offset_db, rho, n_users=n_users)


def _ladder_label(dataset: dict, scheme: dict, compression: float) -> str:
    """Deterministic training-grid label for one (dataset, rung) pair."""
    return (
        f"{dataset['id']} seed{dataset['seed']} "
        f"reset{dataset['reset_interval']} K={compression:g} "
        f"q{scheme['quantizer_bits']} t{scheme['train_seed']}"
    )


class _DatasetPool:
    """Lazily built, shared CSI datasets keyed by their build recipe."""

    def __init__(self, fidelity: Fidelity) -> None:
        self.fidelity = fidelity
        self._built: dict = {}

    def provider(self, mapping: dict):
        """A zero-argument builder for one (id, seed, reset) recipe."""
        key = tuple(sorted(mapping.items()))
        recipe = dict(mapping)

        def build():
            if key not in self._built:
                self._built[key] = build_dataset(
                    dataset_spec(recipe["id"]),
                    fidelity=self.fidelity,
                    reset_interval=recipe["reset_interval"],
                    seed=recipe["seed"],
                )
            return self._built[key]

        return build


class _StaState:
    """Coordinator-side bookkeeping for one STA's rounds.

    Per-round facts live in dicts keyed by round index, because an
    uncoupled (802.11) STA's rounds may complete in any order; a
    chained STA's :meth:`observe` calls are forced into round order by
    the task dependencies, which keeps its controller trajectory exact.

    ``dataset_provider`` builds (or returns the shared, already-built)
    CSI dataset lazily: only rounds that actually execute touch CSI
    tensors, so a fully warm replay never samples a channel.  Static
    facts (antenna counts, bandwidth, subcarriers, group size) come
    from the Table I catalog entry instead.
    """

    def __init__(
        self, profile: dict, catalog, dataset_provider, base_link: LinkConfig
    ) -> None:
        self.profile = profile
        self.catalog = catalog
        self._dataset = dataset_provider
        self.base_link = base_link
        self.config = NetworkConfiguration(
            n_tx=catalog.n_tx,
            n_rx=catalog.n_rx,
            bandwidth_mhz=catalog.bandwidth_mhz,
        )
        self.qos = QosProfile(**profile["qos"])
        self.cost = StaCostModel(**profile["cost"])
        self.mode = "802.11"
        self.selection: "dict | None" = None
        self.controller: "AdaptiveCompressionController | None" = None
        self.measured: "dict[int, dict]" = {}
        self.actions: "dict[int, str]" = {}
        self.rungs: "dict[int, ZooEntry | None]" = {}
        self.keys: "list[str]" = []  # cache keys, one per round
        self.first_pending = 0  # chains: rounds before this replayed

    @property
    def name(self) -> str:
        return self.profile["name"]

    @property
    def chained(self) -> bool:
        return self.controller is not None

    def attach_ladder(self, entries: "list[ZooEntry]") -> None:
        """Run the Eq. (7) selection; fall back to 802.11 if infeasible."""
        zoo = ModelZoo()
        for entry in entries:
            zoo.register(entry)
        outcome = select_model(zoo, self.config, self.qos, self.cost)
        self.selection = {
            "selected": (
                None
                if outcome.selected is None
                else outcome.selected.model.label()
            ),
            "rejected": [
                [entry.model.label(), reason]
                for entry, reason in outcome.rejected
            ],
        }
        if outcome.fell_back:
            # The paper's escape hatch: no trained model satisfies this
            # STA's constraints, so it keeps the standard feedback path.
            self.mode = "802.11-fallback"
            return
        self.mode = "splitbeam"
        # Deploy the Eq. (7) winner from round 0 (the Fig. 1 flow:
        # select offline, adapt at runtime) — never an unvetted rung.
        self.controller = AdaptiveCompressionController(
            entries, self.qos, initial=outcome.selected
        )

    def observe(self, round_index: int, measured: dict) -> None:
        """Record one round's measurement (idempotent per round).

        For a chained STA the controller consumes the BER exactly once,
        in round order — replayed prefix first, then each executed
        round as its successor's ``resolve`` (or the final drain) sees
        it.
        """
        if round_index in self.actions:
            return
        self.measured[round_index] = measured
        if self.controller is None:
            self.actions[round_index] = "n/a"
        else:
            self.controller.observe(measured["ber"])
            self.actions[round_index] = self.controller.history[-1][1]

    def round_indices(self, round_index: int) -> np.ndarray:
        """The round's CSI draw — a pure function of (profile, round)."""
        pool = self._dataset().splits.test
        rng = np.random.default_rng(
            [0x5E55, int(self.profile["seed"]), int(round_index)]
        )
        size = min(int(self.profile["samples_per_round"]), int(pool.size))
        return rng.choice(pool, size=size, replace=False)

    def round_link(self, round_index: int, interval_s, episodes) -> LinkConfig:
        """The round's link: episode-shifted SNR, per-round noise seed."""
        scale, offset = _episode_at(episodes, round_index)
        snr_db = _round_snr_db(
            self.base_link.snr_db,
            self.profile["doppler_hz"],
            interval_s,
            self.catalog.n_users,
            scale,
            offset,
        )
        return replace(
            self.base_link,
            snr_db=snr_db,
            seed=(int(self.profile["seed"]) * 100_003 + round_index * 7919)
            % (2**31 - 1),
        )

    def round_params(
        self, round_index: int, interval_s, episodes, payloads=None
    ) -> dict:
        """Task parameters for one round (slices + model, no dataset).

        With a payload store, the deployed model/quantizer (shared by
        every round on the same rung) travel as content-addressed
        references — each worker materializes the model once per
        campaign instead of once per round task.  The unique per-round
        slices travel inline, so coordinator memory stays O(one round).
        """
        rung = (
            self.controller.current if self.controller is not None else None
        )
        self.rungs[round_index] = rung
        dataset = self._dataset()
        indices = self.round_indices(round_index)
        if rung is not None:
            scheme = entry_round_scheme(
                dataset, indices, rung, payloads=payloads
            )
        else:
            scheme = dot11_round_scheme(dataset, indices)
        return {
            "channels": dataset.link_channels(indices),
            "link_config": self.round_link(round_index, interval_s, episodes),
            "scheme": scheme,
        }

    def round_compute_s(self, round_index: int) -> float:
        """Feedback-computation time feeding the sounding schedule."""
        rung = self.rungs.get(round_index)
        if rung is not None:
            return self.cost.head_time_s(rung.head_flops)
        return (
            dot11_flops(
                self.catalog.n_tx,
                self.catalog.n_rx,
                n_subcarriers=self.config.n_subcarriers,
            )
            / self.cost.sta_flops_per_s
        )

    def deadline_misses(self) -> int:
        """Rounds whose end-to-end reporting delay overran τ (Eq. (7d)).

        The controller optimizes for BER only, so a step-down to a less
        compressed rung can push a slow device past its own deadline —
        the campaign-level accounting surfaces that.
        """
        misses = 0
        for rung in self.rungs.values():
            if rung is None:
                continue
            delay = self.cost.end_to_end_delay_s(
                rung.head_flops, rung.tail_flops, rung.feedback_bits
            )
            if delay > self.qos.max_delay_s:
                misses += 1
        return misses


@dataclass
class NetworkCampaignResult:
    """The outcome of one campaign: manifest rows plus run statistics.

    :meth:`to_dict` is the deterministic manifest — byte-identical for
    any worker count and for cold vs warm caches; the execution
    statistics (``n_executed_rounds``, ``wall_s``, ...) live only on
    the in-memory object.
    """

    campaign: str
    title: str
    fidelity: dict
    interval_s: float
    n_rounds: int
    stas: "list[dict]"  # per-STA manifest rows, campaign order
    rounds: "list[dict]"  # aggregate per-round rows
    summary: dict
    n_round_tasks: int
    n_cached_rounds: int
    n_executed_rounds: int
    zoo_trained: int
    zoo_cached: int
    n_workers: int
    wall_s: float = 0.0
    code_version: str = ""
    health: dict = None
    #: Directory the campaign's trace was written to (``None``
    #: untraced).  Telemetry — never part of :meth:`to_dict`.
    trace_dir: "str | None" = None

    def sta(self, name: str) -> dict:
        """The manifest row for one STA name."""
        for row in self.stas:
            if row["name"] == name:
                return row
        raise ConfigurationError(f"no STA named {name!r}")

    def to_dict(self, include_health: bool = False) -> dict:
        """Deterministic manifest payload (no timestamps, no wall time).

        ``include_health=True`` appends fault-tolerance statistics
        (executor retries/crashes, store quarantines, payload
        rehydrations).  The default omits them so the manifest stays
        byte-identical across worker counts, cold/warm caches, and
        fault schedules — a chaos run that fully recovers diffs clean
        against the fault-free run.
        """
        payload = {
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "campaign": self.campaign,
            "title": self.title,
            "fidelity": self.fidelity,
            "interval_s": self.interval_s,
            "n_rounds": self.n_rounds,
            "code_version": self.code_version,
            "stas": self.stas,
            "rounds": self.rounds,
            "summary": self.summary,
        }
        if include_health:
            payload["health"] = self.health
        return payload

    def write_json(self, path: "str | os.PathLike") -> None:
        """Write the manifest (2-space indent, sorted keys, trailing \\n)."""
        write_json_artifact(path, self.to_dict())


class NetworkCampaign:
    """Runs a :class:`NetworkCampaignSpec` on the runtime engine.

    Parameters
    ----------
    spec:
        The declarative campaign (see :func:`repro.runtime.spec.
        sta_profile` and the presets in :mod:`repro.runtime.registry`).
    cache:
        A :class:`ResultCache` for completed STA-rounds (``None`` =
        always re-measure).
    store:
        A :class:`CheckpointStore` for the SplitBeam ladders (``None``
        = retrain on every run).
    n_workers:
        Worker processes; ``None`` reads ``$REPRO_RUNTIME_WORKERS``.
        STA chains parallelize across the pool; each chain stays
        sequential.  Results never depend on this.
    policy:
        A :class:`~repro.runtime.executor.RetryPolicy` bounding
        retries/timeouts (``None`` = the default).
    faults:
        A :class:`~repro.runtime.faults.FaultPlan` of injected chaos
        (``None`` = the installed plan or ``$REPRO_RUNTIME_FAULTS``).
    trace:
        Observability: a directory path (or a
        :class:`~repro.obs.trace.Tracer`) recording the campaign's
        span timeline and metrics — the embedded zoo build and every
        round task land in the same trace; ``None`` joins an installed
        tracer or honours ``$REPRO_RUNTIME_TRACE``; ``False`` disables
        tracing.  Tracing never changes manifest bytes.

    Graceful degradation: the campaign runs its rounds in
    collect-errors mode — an STA-round that exhausts its retries marks
    only *that* STA degraded (its remaining chained rounds are skipped,
    the manifest's per-STA ``degraded`` entry and the summary's
    ``degraded_stas``/``partial_coverage`` flags record the gap) while
    the other N-1 STAs complete normally.
    """

    def __init__(
        self,
        spec: NetworkCampaignSpec,
        cache: "ResultCache | None" = None,
        store: "CheckpointStore | None" = None,
        n_workers: "int | None" = None,
        policy: "RetryPolicy | None" = None,
        faults=None,
        trace=None,
    ) -> None:
        self.spec = spec
        self.cache = cache
        self.store = store
        self.n_workers = resolve_worker_count(n_workers)
        self.policy = policy
        self.faults = faults
        self.trace = trace

    # -- offline phase ----------------------------------------------------------

    def _training_grid(self) -> "TrainingGrid | None":
        """The merged, deduplicated ladder grid for all SplitBeam STAs."""
        entries: "dict[str, dict]" = {}
        for sta in self.spec.stas:
            scheme = sta["scheme"]
            if scheme["kind"] != "splitbeam":
                continue
            for compression in scheme["compressions"]:
                label = _ladder_label(sta["dataset"], scheme, compression)
                if label in entries:
                    continue
                entries[label] = zoo_entry(
                    label,
                    sta["dataset"]["id"],
                    dataset_seed=sta["dataset"]["seed"],
                    reset_interval=sta["dataset"]["reset_interval"],
                    compression=compression,
                    quantizer_bits=scheme["quantizer_bits"],
                    train_seed=scheme["train_seed"],
                    link=dict(self.spec.link),
                    notes=label,
                )
        if not entries:
            return None
        return TrainingGrid(
            name=f"campaign-{self.spec.name}",
            title=f"SplitBeam ladders for campaign {self.spec.name!r}",
            fidelity=dict(self.spec.fidelity),
            entries=tuple(entries.values()),
        )

    # -- execution --------------------------------------------------------------

    def run(self) -> NetworkCampaignResult:
        """Build ladders, run every STA's rounds, aggregate the network."""
        # Installed for the campaign's duration so cache/checkpoint
        # writes see the same chaos schedule as the round tasks — and,
        # when traced, so the embedded zoo build and every store access
        # land in the campaign's own timeline.
        plan = faults_mod.active_plan(self.faults)
        previous = faults_mod.install(plan)
        tracer, owned = trace_mod.tracer_for_run(
            self.trace, f"campaign:{self.spec.name}"
        )
        prev_tracer = trace_mod.install_tracer(tracer) if tracer else None
        try:
            if tracer is None:
                return self._run(plan)
            with tracer.span(f"campaign:{self.spec.name}", "engine"):
                result = self._run(plan)
            self._finalize_trace(result, tracer, owned)
            return result
        finally:
            if tracer is not None:
                trace_mod.install_tracer(prev_tracer)
            faults_mod.install(previous)

    def _finalize_trace(
        self, result: NetworkCampaignResult, tracer, owned: bool
    ) -> None:
        """Fold campaign health into the metrics; export when owned."""
        metrics = tracer.metrics
        metrics.ratio_gauge(
            "cache.hit_ratio", result.n_cached_rounds, result.n_round_tasks
        )
        interned = metrics.counter("payloads.interned")
        if interned:
            metrics.ratio_gauge(
                "payloads.dedupe_ratio",
                interned - metrics.counter("payloads.unique"),
                interned,
            )
        for family, counters in (result.health or {}).items():
            if not isinstance(counters, dict):
                continue
            for key, value in counters.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    metrics.set_gauge(f"health.{family}.{key}", value)
        if owned:
            result.trace_dir = write_trace(tracer)
        else:
            result.trace_dir = tracer.out_dir

    def _run(self, plan) -> NetworkCampaignResult:
        start = time.perf_counter()
        spec = self.spec
        version = code_version()
        health = RunHealth()
        # Datasets are shared and lazy: training tasks build their own
        # (per-process memoized) copies, round resolves pull from the
        # pool only when a round actually executes, and a fully warm
        # replay therefore never samples a channel.
        pool = _DatasetPool(fidelity_from_dict(spec.fidelity))
        grid = self._training_grid()
        build = (
            train_zoo(
                grid,
                store=self.store,
                n_workers=self.n_workers,
                policy=self.policy,
                faults=plan,
            )
            if grid is not None
            else None
        )

        base_link = LinkConfig(**dict(spec.link))
        states: "list[_StaState]" = []
        for sta in spec.stas:
            state = _StaState(
                sta,
                dataset_spec(sta["dataset"]["id"]),
                pool.provider(sta["dataset"]),
                base_link,
            )
            scheme = sta["scheme"]
            if scheme["kind"] == "splitbeam":
                state.attach_ladder(
                    [
                        build.entry(
                            _ladder_label(sta["dataset"], scheme, compression)
                        )
                        for compression in scheme["compressions"]
                    ]
                )
            states.append(state)

        tracer = trace_mod.current_tracer()
        payloads = PayloadStore()
        with tracer.span(
            "plan_rounds", "engine", stas=len(states)
        ) if tracer else _null():
            tasks, by_task_id, n_cached = self._plan_rounds(
                states, version, payloads
            )

        def persist(task_id: str, result) -> None:
            # Store each round the moment it completes, so an
            # interrupted campaign resumes from every finished round.
            if self.cache is not None:
                state, round_index = by_task_id[task_id]
                self.cache.put(
                    state.keys[round_index],
                    campaign_round_spec(spec, state.profile, round_index),
                    result,
                )

        with payloads:
            # collect_errors: a round that exhausts its retries fails
            # only its own STA chain (graceful degradation), never the
            # other N-1 STAs.
            executed = run_tasks(
                tasks,
                n_workers=self.n_workers,
                on_result=persist,
                payloads=payloads,
                policy=self.policy,
                faults=plan,
                health=health,
                collect_errors=True,
            )
            rehydrated = payloads.rehydrated

        if self.cache is not None:
            # Publish the packed index so the next open recovers from a
            # snapshot instead of rescanning every segment tail.
            self.cache.flush()

        # Drain: record every executed round.  observe() is idempotent
        # and the ascending sweep keeps chain order, so rounds already
        # consumed by a successor's resolve hook are not re-observed.
        with tracer.span("drain", "engine") if tracer else _null():
            for state in states:
                for round_index in range(spec.n_rounds):
                    task_id = f"{state.name}/round-{round_index:04d}"
                    if task_id in executed:
                        state.observe(round_index, executed[task_id])

        with tracer.span("assemble", "engine") if tracer else _null():
            return self._assemble(
                states,
                n_cached=n_cached,
                n_executed=len(executed),
                build=build,
                version=version,
                wall_s=time.perf_counter() - start,
                health={
                    "executor": health.to_dict(),
                    "cache": (
                        self.cache.health.to_dict()
                        if self.cache is not None
                        else None
                    ),
                    "payloads": {"rehydrated": rehydrated},
                    "zoo": None if build is None else build.health,
                },
                run_health=health,
            )

    def _plan_rounds(
        self, states: "list[_StaState]", version: str, payloads=None
    ):
        """Cache-walk every STA and build tasks for the rest.

        A SplitBeam STA is a feedback chain: its cached *prefix* is
        replayed (observing each stored BER keeps the controller
        trajectory exact) and execution resumes at the first miss, each
        task depending on its predecessor so the ``resolve`` hook can
        observe the previous round before planning the next.  An
        802.11 STA has no cross-round coupling: every cached round is a
        hit wherever it falls, and only the misses become (independent)
        tasks.
        """
        spec = self.spec
        tasks: "list[Task]" = []
        by_task_id: dict = {}
        n_cached = 0
        for state in states:
            state.keys = [
                task_key(
                    campaign_round_spec(spec, state.profile, round_index),
                    version,
                    kind=CAMPAIGN_ROUND_KIND,
                )
                for round_index in range(spec.n_rounds)
            ]
            if state.chained:
                # Only the contiguous prefix is usable for a chain, so
                # stop reading the store at the first miss — entries
                # past a gap would be discarded (and re-written with
                # identical content) anyway.
                prefix = 0
                while prefix < spec.n_rounds:
                    # `is not None`, not truthiness: an *empty* cache
                    # is falsy (__len__ == 0), which silently skipped
                    # gets — and miss telemetry — on cold campaigns.
                    result = (
                        self.cache.get(state.keys[prefix])
                        if self.cache is not None
                        else None
                    )
                    if result is None:
                        break
                    state.rungs[prefix] = state.controller.current
                    state.observe(prefix, result)
                    n_cached += 1
                    prefix += 1
                state.first_pending = prefix
                pending = list(range(prefix, spec.n_rounds))
            else:
                state.first_pending = 0
                pending = []
                for round_index, key in enumerate(state.keys):
                    result = (
                        self.cache.get(key)
                        if self.cache is not None
                        else None
                    )
                    if result is None:
                        pending.append(round_index)
                    else:
                        state.observe(round_index, result)
                        n_cached += 1

            for round_index in pending:
                task_id = f"{state.name}/round-{round_index:04d}"
                needs_dep = state.chained and round_index > state.first_pending
                tasks.append(
                    Task(
                        task_id=task_id,
                        fn=ROUND_FN,
                        deps=(
                            (f"{state.name}/round-{round_index - 1:04d}",)
                            if needs_dep
                            else ()
                        ),
                        resolve=self._make_resolve(
                            state, round_index, payloads
                        ),
                    )
                )
                by_task_id[task_id] = (state, round_index)
        return tasks, by_task_id, n_cached

    def _make_resolve(self, state: _StaState, round_index: int, payloads=None):
        spec = self.spec

        def resolve(dep_results: dict) -> dict:
            if state.chained and round_index > state.first_pending:
                state.observe(
                    round_index - 1,
                    dep_results[f"{state.name}/round-{round_index - 1:04d}"],
                )
            return state.round_params(
                round_index, spec.interval_s, spec.episodes, payloads
            )

        return resolve

    # -- aggregation ------------------------------------------------------------

    def _assemble(
        self,
        states,
        n_cached,
        n_executed,
        build,
        version,
        wall_s,
        health,
        run_health,
    ) -> NetworkCampaignResult:
        spec = self.spec
        # Collect-errors post-mortem: which rounds never produced a
        # measurement, and why (failed outright vs skipped behind a
        # failed chain predecessor).
        failure_summaries = {
            row["task"]: row["summary"] for row in run_health.failed
        }
        skipped_tasks = set(run_health.skipped)
        sta_rows = []
        for state in states:
            rows = []
            failed_rounds = []
            skipped_rounds = []
            for round_index in range(spec.n_rounds):
                measured = state.measured.get(round_index)
                if measured is None:
                    task_id = f"{state.name}/round-{round_index:04d}"
                    if task_id in skipped_tasks:
                        skipped_rounds.append(round_index)
                    else:
                        failed_rounds.append(
                            {
                                "round": round_index,
                                "error": failure_summaries.get(
                                    task_id, "round missing"
                                ),
                            }
                        )
                    continue
                rows.append(
                    {
                        "round": round_index,
                        "scheme": measured["scheme"],
                        "feedback_bits": int(measured["feedback_bits"]),
                        "ber": float(measured["ber"]),
                        "mean_sinr_db": float(measured["mean_sinr_db"]),
                        "effective_snr_db": float(
                            measured["effective_snr_db"]
                        ),
                        "action": state.actions[round_index],
                    }
                )
            bers = [row["ber"] for row in rows]
            actions = [row["action"] for row in rows]
            degraded = None
            if failed_rounds or skipped_rounds:
                degraded = {
                    "failed_rounds": failed_rounds,
                    "skipped_rounds": skipped_rounds,
                    "n_reported": len(rows),
                }
            sta_rows.append(
                {
                    "name": state.name,
                    "dataset": dict(state.profile["dataset"]),
                    "config": state.config.label(),
                    "mode": state.mode,
                    "selection": state.selection,
                    "qos": dict(state.profile["qos"]),
                    "cost": dict(state.profile["cost"]),
                    "doppler_hz": state.profile["doppler_hz"],
                    "degraded": degraded,
                    "rounds": rows,
                    "summary": {
                        "mean_ber": float(np.mean(bers)) if bers else None,
                        "qos_violations": sum(
                            1 for ber in bers if ber > state.qos.max_ber
                        ),
                        "saturated": actions.count("saturated"),
                        "step_downs": actions.count("step-down"),
                        "step_ups": actions.count("step-up"),
                        "deadline_misses": int(state.deadline_misses()),
                        "final_scheme": rows[-1]["scheme"] if rows else None,
                        "mean_feedback_bits": (
                            float(
                                np.mean([row["feedback_bits"] for row in rows])
                            )
                            if rows
                            else None
                        ),
                    },
                }
            )

        groups: "dict[int, list[_StaState]]" = {}
        for state in states:
            groups.setdefault(state.catalog.bandwidth_mhz, []).append(state)
        round_rows = []
        for round_index in range(spec.n_rounds):
            reports = []
            total_rate = 0.0
            for bandwidth, members in sorted(groups.items()):
                # A degraded STA simply stops reporting: the round's
                # airtime aggregates cover the STAs that actually
                # sounded, exactly as a real AP would account them.
                reporting = [
                    m for m in members if round_index in m.measured
                ]
                if not reporting:
                    continue
                reports.append(
                    SoundingCampaign(
                        n_users=len(reporting),
                        bandwidth_mhz=bandwidth,
                        feedback_bits=[
                            int(m.measured[round_index]["feedback_bits"])
                            for m in reporting
                        ],
                        compute_times_s=[
                            m.round_compute_s(round_index)
                            for m in reporting
                        ],
                        interval_s=spec.interval_s,
                    ).report()
                )
                for member in reporting:
                    mcs = select_mcs(
                        member.measured[round_index]["mean_sinr_db"],
                        backoff_db=MCS_BACKOFF_DB,
                    )
                    total_rate += data_rate_bps(
                        mcs.index, bandwidth, n_streams=1
                    )
            if not reports:
                continue  # every STA degraded before this round
            combined = combine_reports(reports)
            round_rows.append(
                {
                    "round": round_index,
                    "feedback_bits_total": int(combined.feedback_bits_total),
                    "round_duration_s": float(combined.round_duration_s),
                    "occupancy": float(combined.occupancy),
                    "occupancy_ratio": float(combined.occupancy_ratio),
                    "feasible": bool(combined.feasible),
                    "data_fraction": float(combined.data_fraction),
                    "goodput_bps": float(combined.goodput_bps(total_rate)),
                }
            )

        modes: "dict[str, int]" = {}
        for row in sta_rows:
            modes[row["mode"]] = modes.get(row["mode"], 0) + 1
        degraded_stas = sorted(
            row["name"] for row in sta_rows if row["degraded"] is not None
        )
        reporting_bers = [
            row["summary"]["mean_ber"]
            for row in sta_rows
            if row["summary"]["mean_ber"] is not None
        ]
        summary = {
            "n_stas": spec.n_stas,
            "n_rounds": spec.n_rounds,
            "modes": modes,
            "degraded_stas": degraded_stas,
            "partial_coverage": bool(degraded_stas),
            "mean_ber": (
                float(np.mean(reporting_bers)) if reporting_bers else None
            ),
            "mean_occupancy": (
                float(np.mean([row["occupancy"] for row in round_rows]))
                if round_rows
                else None
            ),
            "max_occupancy_ratio": (
                float(max(row["occupancy_ratio"] for row in round_rows))
                if round_rows
                else None
            ),
            "infeasible_rounds": sum(
                1 for row in round_rows if not row["feasible"]
            ),
            "mean_goodput_bps": (
                float(np.mean([row["goodput_bps"] for row in round_rows]))
                if round_rows
                else None
            ),
            "hard_qos_failures": sum(
                row["summary"]["saturated"] for row in sta_rows
            ),
            "qos_violations": sum(
                row["summary"]["qos_violations"] for row in sta_rows
            ),
            "deadline_misses": sum(
                row["summary"]["deadline_misses"] for row in sta_rows
            ),
            "step_downs": sum(
                row["summary"]["step_downs"] for row in sta_rows
            ),
            "step_ups": sum(row["summary"]["step_ups"] for row in sta_rows),
        }

        return NetworkCampaignResult(
            campaign=spec.name,
            title=spec.title,
            fidelity=dict(spec.fidelity),
            interval_s=spec.interval_s,
            n_rounds=spec.n_rounds,
            stas=sta_rows,
            rounds=round_rows,
            summary=summary,
            n_round_tasks=spec.n_stas * spec.n_rounds,
            n_cached_rounds=n_cached,
            n_executed_rounds=n_executed,
            zoo_trained=0 if build is None else build.n_trained,
            zoo_cached=0 if build is None else build.n_cached,
            n_workers=self.n_workers,
            wall_s=wall_s,
            code_version=version,
            health=health,
        )


def run_campaign(
    spec: "NetworkCampaignSpec | str",
    fidelity: "Fidelity | None" = None,
    cache: "ResultCache | None" = None,
    store: "CheckpointStore | None" = None,
    n_workers: "int | None" = None,
    policy: "RetryPolicy | None" = None,
    faults=None,
    trace=None,
    **kwargs,
) -> NetworkCampaignResult:
    """Run a campaign (or a registered preset name).

    The one-call entry point: ``run_campaign("network-scale",
    n_stas=32, cache=..., store=...)`` resolves the preset via
    :func:`repro.runtime.registry.get_campaign` (extra keyword
    arguments reach the preset builder) and runs it through a
    :class:`NetworkCampaign`.
    """
    if isinstance(spec, str):
        from repro.runtime.registry import get_campaign

        spec = get_campaign(spec, fidelity=fidelity, **kwargs)
    elif fidelity is not None or kwargs:
        raise ConfigurationError(
            "fidelity/preset overrides apply to named campaigns only; "
            "build the NetworkCampaignSpec with them instead"
        )
    return NetworkCampaign(
        spec,
        cache=cache,
        store=store,
        n_workers=n_workers,
        policy=policy,
        faults=faults,
        trace=trace,
    ).run()
