"""The Bottleneck Optimization Problem and the Sec. IV-C heuristic.

The BOP (Eq. (7)) picks the bottleneck placement ``e`` and size ``N``
minimizing a weighted sum of STA overhead and feedback airtime, subject
to a BER ceiling (7c) and an end-to-end delay ceiling (7d).  The paper's
heuristic fixes ``e = 1`` (bottleneck right after the input layer) and
searches a small ladder:

1. start from the *highest* compression (smallest bottleneck) with the
   2-weight-layer model ``[D, B, D]``;
2. train, measure BER on the validation data; accept the first
   configuration meeting both constraints;
3. if no compression level passes, insert one more layer after the
   bottleneck (``L = L + 1``) and restart the ladder;
4. give up after ``max_extra_layers`` deepenings.

``solve_bop`` takes a pluggable ``evaluator`` so unit tests can drive
the search with synthetic BER responses; the default evaluator trains a
real model per trial and measures link-level BER.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import FAST, Fidelity
from repro.errors import ConfigurationError, ConstraintViolation
from repro.core.costs import (
    StaCostModel,
    splitbeam_feedback_bits,
)
from repro.core.training import TrainedSplitBeam, train_splitbeam
from repro.datasets.builder import CsiDataset
from repro.phy.link import LinkConfig

__all__ = ["BopConstraints", "BopTrial", "BopResult", "solve_bop"]

#: The paper's compression ladder (Sec. 5.2.3).
DEFAULT_COMPRESSIONS: tuple[float, ...] = (1 / 32, 1 / 16, 1 / 8, 1 / 4)


@dataclass(frozen=True)
class BopConstraints:
    """Application requirements of Eq. (7).

    ``max_ber`` is gamma in (7c); ``max_delay_s`` is tau in (7d);
    ``mu`` weights STA overhead against airtime in the objective (7a),
    constrained to (0, 1) by (7b).
    """

    max_ber: float = 0.05
    max_delay_s: float = 10e-3
    mu: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.mu < 1:
            raise ConfigurationError("mu must be in (0, 1) per Eq. (7b)")
        if self.max_ber <= 0 or self.max_delay_s <= 0:
            raise ConfigurationError("constraint ceilings must be positive")


@dataclass
class BopTrial:
    """One candidate evaluated during the search."""

    widths: list[int]
    compression: float
    ber: float
    delay_s: float
    objective: float
    satisfied: bool
    trained: "TrainedSplitBeam | None" = None

    def label(self) -> str:
        return "-".join(str(w) for w in self.widths)


@dataclass
class BopResult:
    """Search outcome: the selected trial plus the full trace."""

    selected: BopTrial
    trials: list[BopTrial] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)


Evaluator = Callable[[list[int], float], tuple[float, "TrainedSplitBeam | None"]]


def solve_bop(
    dataset: CsiDataset,
    constraints: BopConstraints,
    compressions: Sequence[float] = DEFAULT_COMPRESSIONS,
    max_extra_layers: int = 2,
    fidelity: Fidelity = FAST,
    link_config: "LinkConfig | None" = None,
    cost_model: "StaCostModel | None" = None,
    evaluator: "Evaluator | None" = None,
    seed: int = 0,
) -> BopResult:
    """Run the Sec. IV-C heuristic on one dataset.

    Raises :class:`ConstraintViolation` when no candidate satisfies the
    constraints within the search budget; the exception carries the
    trial trace in its ``result`` attribute.
    """
    if not compressions:
        raise ConfigurationError("need at least one compression level")
    compressions = sorted(compressions)  # smallest bottleneck first
    cost_model = cost_model or StaCostModel(
        feedback_bandwidth_mhz=dataset.spec.bandwidth_mhz
    )
    if evaluator is None:
        evaluator = _training_evaluator(dataset, fidelity, link_config, seed)

    input_dim = dataset.input_dim
    output_dim = dataset.output_dim
    trials: list[BopTrial] = []

    for extra_layers in range(max_extra_layers + 1):
        for compression in compressions:
            bottleneck = max(1, int(round(compression * input_dim)))
            widths = (
                [input_dim, bottleneck]
                + [bottleneck] * extra_layers
                + [output_dim]
            )
            ber, trained = evaluator(widths, compression)
            head_flops = 2.0 * widths[0] * widths[1]
            tail_flops = 2.0 * sum(
                widths[i] * widths[i + 1] for i in range(1, len(widths) - 1)
            )
            bits = splitbeam_feedback_bits(bottleneck)
            delay = cost_model.end_to_end_delay_s(head_flops, tail_flops, bits)
            objective = cost_model.bop_objective(
                head_flops,
                tail_flops,
                bits,
                mu=constraints.mu,
                n_users=dataset.n_users,
            )
            trial = BopTrial(
                widths=widths,
                compression=compression,
                ber=ber,
                delay_s=delay,
                objective=objective,
                satisfied=(
                    ber <= constraints.max_ber
                    and delay < constraints.max_delay_s
                ),
                trained=trained,
            )
            trials.append(trial)
            if trial.satisfied:
                return BopResult(selected=trial, trials=trials)

    error = ConstraintViolation(
        f"no bottleneck configuration met BER <= {constraints.max_ber} and "
        f"delay < {constraints.max_delay_s * 1e3:.1f} ms after "
        f"{len(trials)} trials"
    )
    error.trials = trials
    raise error


def _training_evaluator(
    dataset: CsiDataset,
    fidelity: Fidelity,
    link_config: "LinkConfig | None",
    seed: int,
) -> Evaluator:
    """Default evaluator: train for real and measure validation BER."""
    config = link_config or LinkConfig(n_ofdm_symbols=fidelity.ofdm_symbols)

    def evaluate(
        widths: list[int], compression: float
    ) -> tuple[float, TrainedSplitBeam]:
        trained = train_splitbeam(
            dataset,
            widths=widths,
            fidelity=fidelity,
            link_config=config,
            seed=seed,
        )
        from repro.core.training import ber_of_model

        indices = dataset.splits.val[: fidelity.ber_samples]
        ber = ber_of_model(
            trained.model,
            dataset,
            indices,
            link_config=config,
            quantizer=trained.quantizer,
        ).ber
        return ber, trained

    return evaluate
