"""Runtime model selection against QoS constraints (Fig. 1, Sec. IV-B).

The BOP (Eq. (7)) is solved *offline* by training a ladder of models at
different compression levels; what remains at run time is a selection
problem: given the announced network configuration, the application's
BER ceiling γ and delay budget τ, and the device's cost model, pick the
cheapest trained model that satisfies both constraints — or report that
none does, in which case the STA falls back to the 802.11 path.

Two layers:

- :func:`select_model` — the one-shot constrained choice (Eq. (7a)
  objective under the (7c)/(7d) constraints);
- :class:`AdaptiveCompressionController` — a run-time hysteresis
  controller that walks the compression ladder as *measured* BER drifts
  away from the training-time estimate (e.g. when the propagation
  environment changes), re-creating the paper's "heterogeneous devices
  and a wide range of performance requirements" scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.core.costs import StaCostModel
from repro.core.zoo import ModelZoo, NetworkConfiguration, ZooEntry

__all__ = [
    "QosProfile",
    "SelectionOutcome",
    "select_model",
    "AdaptiveCompressionController",
]


@dataclass(frozen=True)
class QosProfile:
    """Application requirements: the γ/τ/µ knobs of Eq. (7).

    ``mu`` weights STA overhead against feedback airtime in the
    objective — resource-constrained devices use mu close to 1, dense
    dynamic environments use mu close to 0 (Sec. IV-B discussion).
    """

    max_ber: float = 0.05
    max_delay_s: float = 10e-3
    mu: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.max_ber <= 1.0:
            raise ConfigurationError("max_ber must be in (0, 1]")
        if self.max_delay_s <= 0:
            raise ConfigurationError("max_delay_s must be positive")
        if not 0.0 < self.mu < 1.0:
            raise ConfigurationError("mu must be in (0, 1) per Eq. (7b)")


@dataclass
class SelectionOutcome:
    """Result of one selection pass over a configuration's candidates."""

    selected: ZooEntry | None
    rejected: list[tuple[ZooEntry, str]] = field(default_factory=list)

    @property
    def fell_back(self) -> bool:
        """True when no trained model satisfied the constraints."""
        return self.selected is None

    def explain(self) -> str:
        """Human-readable account of the decision."""
        lines = []
        for entry, reason in self.rejected:
            lines.append(f"rejected {entry.model.label()}: {reason}")
        if self.selected is None:
            lines.append("no feasible model -> fall back to 802.11 feedback")
        else:
            lines.append(f"selected {self.selected.model.label()}")
        return "\n".join(lines)


def select_model(
    zoo: ModelZoo,
    config: NetworkConfiguration,
    qos: QosProfile,
    cost_model: StaCostModel | None = None,
) -> SelectionOutcome:
    """Pick the cheapest feasible model for one configuration.

    Feasibility follows Eq. (7c)/(7d): the entry's measured BER must not
    exceed ``qos.max_ber`` and its end-to-end reporting delay (head
    compute + feedback airtime + tail compute, from ``cost_model``) must
    stay under ``qos.max_delay_s``.  Among feasible entries the Eq. (7a)
    objective ``mu * L^H + (1 - mu) * T^A`` picks the winner.
    """
    costs = cost_model or StaCostModel()
    best: ZooEntry | None = None
    best_objective = float("inf")
    rejected: list[tuple[ZooEntry, str]] = []
    for entry in zoo.candidates(config):
        if entry.measured_ber > qos.max_ber:
            rejected.append(
                (entry, f"BER {entry.measured_ber:.4f} > γ={qos.max_ber:.4f}")
            )
            continue
        delay = costs.end_to_end_delay_s(
            entry.head_flops, entry.tail_flops, entry.feedback_bits
        )
        # Eq. (7d) is an inequality budget (delay <= tau), mirroring the
        # (7c) BER check above: a model that lands exactly on the
        # deadline is feasible.
        if delay > qos.max_delay_s:
            rejected.append(
                (entry, f"delay {delay * 1e3:.3f} ms > τ={qos.max_delay_s * 1e3:.3f} ms")
            )
            continue
        objective = costs.bop_objective(
            entry.head_flops,
            entry.tail_flops,
            entry.feedback_bits,
            mu=qos.mu,
        )
        if objective < best_objective:
            best, best_objective = entry, objective
    return SelectionOutcome(selected=best, rejected=rejected)


class AdaptiveCompressionController:
    """Hysteresis controller walking the compression ladder at run time.

    The zoo's training-time BER estimates can go stale when the channel
    statistics drift (the paper's cross-environment experiments measure
    exactly that gap).  This controller reacts to *measured* BER:

    - a single observation above ``qos.max_ber`` steps **down** the
      ladder (less compression, more accuracy) immediately;
    - ``patience`` consecutive observations below
      ``step_up_margin * qos.max_ber`` step **up** (more compression).

    The asymmetry (fast back-off, slow ramp-up) is the classic
    congestion-control shape: violating the application's BER ceiling is
    costly, wasting some airtime is not.
    """

    def __init__(
        self,
        candidates: list[ZooEntry],
        qos: QosProfile,
        patience: int = 3,
        step_up_margin: float = 0.5,
        initial: "ZooEntry | None" = None,
    ) -> None:
        if not candidates:
            raise ConfigurationError("controller needs at least one candidate")
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        if not 0.0 < step_up_margin < 1.0:
            raise ConfigurationError("step_up_margin must be in (0, 1)")
        # Most compressed first, like the zoo's buckets.
        self.ladder = sorted(candidates, key=lambda e: e.compression)
        self.qos = qos
        self.patience = patience
        self.step_up_margin = step_up_margin
        # Start at the most accurate (least compressed) rung unless the
        # caller already ran the Eq. (7) selection — then deploy its
        # choice and adapt from there.
        self._index = len(self.ladder) - 1
        if initial is not None:
            for index, entry in enumerate(self.ladder):
                if entry is initial:
                    self._index = index
                    break
            else:
                raise ConfigurationError(
                    "initial model must be one of the candidates"
                )
        self._good_streak = 0
        self.history: list[tuple[float, str]] = []

    @property
    def current(self) -> ZooEntry:
        """The model currently in use."""
        return self.ladder[self._index]

    def observe(self, measured_ber: float) -> ZooEntry:
        """Feed one BER measurement; returns the (possibly new) model."""
        if not 0.0 <= measured_ber <= 1.0:
            raise ConfigurationError("measured_ber must be in [0, 1]")
        action = "hold"
        if measured_ber > self.qos.max_ber:
            if self._index < len(self.ladder) - 1:
                self._index += 1
                action = "step-down"
            else:
                # Already at the safest rung with γ still violated: a
                # hard QoS failure, not an in-band hold — campaign
                # post-mortems count these separately.
                action = "saturated"
            self._good_streak = 0
        elif measured_ber < self.step_up_margin * self.qos.max_ber:
            self._good_streak += 1
            if self._good_streak >= self.patience and self._index > 0:
                self._index -= 1
                self._good_streak = 0
                action = "step-up"
        else:
            self._good_streak = 0
        self.history.append((measured_ber, action))
        return self.current

    @property
    def saturated_count(self) -> int:
        """Rounds where γ was violated with no safer rung left."""
        return sum(1 for _, action in self.history if action == "saturated")

    @property
    def airtime_savings(self) -> float:
        """Feedback-bit saving of the current rung vs the safest rung."""
        safest = self.ladder[-1].feedback_bits
        if safest == 0:
            return 0.0
        return 1.0 - self.current.feedback_bits / safest
