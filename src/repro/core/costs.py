"""Cost models for the BOP (Sec. IV-B) and the Sec. IV-E analysis.

Two accounting levels coexist (DESIGN.md Sec. 3.4):

1. **Exact model costs** — MAC counts of actual :class:`SplitBeamNet`
   instances, used in the Fig. 10/11/12 comparisons where our trained
   models are measured.
2. **Analytical projections** — the paper's closed-form complexity
   expressions (Sec. IV-E) used for the Fig. 6/7 parameter sweeps that
   extend to 8x8 systems the paper never trains.  The single calibration
   constant :data:`CALIBRATED_NN_FLOP_FACTOR` is fitted to the paper's
   headline "75% STA-load reduction at 4x4, 80 MHz, K=1/8" (Sec. IV-E1),
   since the paper's own MATLAB constant factors are unpublished.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.core.model import SplitBeamNet
from repro.phy.ofdm import band_plan
from repro.phy.rates import frame_airtime_s
from repro.standard.feedback import Dot11FeedbackConfig, bmr_bits
from repro.standard.flopmodel import dot11_flops

__all__ = [
    "CALIBRATED_NN_FLOP_FACTOR",
    "splitbeam_head_flops",
    "splitbeam_feedback_bits",
    "analytical_splitbeam_flops",
    "comp_load_ratio",
    "feedback_size_ratio",
    "StaCostModel",
]

#: Real FLOPs per unit of K * (Nt*Nr*S)^2 in the analytical model;
#: fitted so that (4x4, 80 MHz, K=1/8) yields the paper's 25% ratio.
CALIBRATED_NN_FLOP_FACTOR: float = 1.116

#: Bits per compressed bottleneck element in the airtime model (matches
#: the Eq. (9) convention of 16 bits per complex CSI element, i.e. 16
#: bits per compressed real value in the paper's ratio definition).
FEEDBACK_BITS_PER_ELEMENT: int = 16


def splitbeam_head_flops(model: SplitBeamNet) -> float:
    """Exact STA FLOPs for a trained model's head (2 FLOPs per MAC)."""
    return 2.0 * model.head_macs()


def splitbeam_feedback_bits(
    bottleneck_dim: int, bits_per_element: int = FEEDBACK_BITS_PER_ELEMENT
) -> int:
    """Over-the-air compressed BF size (payload only)."""
    if bottleneck_dim < 1:
        raise ConfigurationError("bottleneck_dim must be >= 1")
    if bits_per_element < 1:
        raise ConfigurationError("bits_per_element must be >= 1")
    return bottleneck_dim * bits_per_element


def analytical_splitbeam_flops(
    compression: float, n_tx: int, n_rx: int, n_subcarriers: int
) -> float:
    """Sec. IV-E1 projection: ``O(K * Nt^2 * Nr^2 * S^2)`` real FLOPs."""
    if not 0 < compression <= 1:
        raise ConfigurationError("compression must be in (0, 1]")
    return (
        CALIBRATED_NN_FLOP_FACTOR
        * compression
        * (n_tx * n_rx * n_subcarriers) ** 2
    )


def comp_load_ratio(
    compression: float, n_tx: int, n_rx: int, bandwidth_mhz: int
) -> float:
    """Fig. 6: SplitBeam/802.11 computational-load ratio (0..1 scale)."""
    n_sc = band_plan(bandwidth_mhz).n_subcarriers
    ours = analytical_splitbeam_flops(compression, n_tx, n_rx, n_sc)
    theirs = dot11_flops(n_tx, n_rx, n_subcarriers=n_sc)
    return ours / theirs


def feedback_size_ratio(
    compression: float,
    n_tx: int,
    n_rx: int,
    bandwidth_mhz: int,
    n_streams: int | None = None,
) -> float:
    """Fig. 7: SplitBeam/802.11 feedback-size ratio (0..1 scale).

    SplitBeam sends ``K * (2*Nt*Nr*S)`` compressed elements at 16 bits
    each... the paper's convention counts K directly against the 16-bit
    complex CSI baseline, i.e. ``K * S * Nt * Nr * 16`` bits total.  The
    802.11 report size follows Sec. IV-E2 with the (9, 7) quantizer and
    ``Nss = Nt`` for the full-matrix projections (or explicit
    ``n_streams``).
    """
    n_sc = band_plan(bandwidth_mhz).n_subcarriers
    ours = compression * n_sc * n_tx * n_rx * FEEDBACK_BITS_PER_ELEMENT
    config = Dot11FeedbackConfig(
        n_tx=n_tx,
        n_rx=n_rx,
        n_streams=n_tx if n_streams is None else n_streams,
        bandwidth_mhz=bandwidth_mhz,
    )
    return ours / bmr_bits(config)


@dataclass(frozen=True)
class StaCostModel:
    """Maps FLOPs and bits to the BOP's time/energy terms (Sec. IV-B).

    ``sta_flops_per_s`` models the station's sustained DNN throughput
    (a low-power device: default 2 GFLOP/s); ``ap_flops_per_s`` the
    access point's (default 50 GFLOP/s).  ``energy_per_flop_j`` converts
    the computational cost term ``L^c`` to joules.
    """

    sta_flops_per_s: float = 2e9
    ap_flops_per_s: float = 50e9
    energy_per_flop_j: float = 1e-10
    tx_energy_per_bit_j: float = 5e-8
    feedback_bandwidth_mhz: int = 20

    def head_time_s(self, head_flops: float) -> float:
        """``T^H``: head execution time at the STA."""
        return head_flops / self.sta_flops_per_s

    def tail_time_s(self, tail_flops: float) -> float:
        """``T^T``: tail execution time at the AP."""
        return tail_flops / self.ap_flops_per_s

    def airtime_s(self, feedback_bits: int) -> float:
        """``T^A``: feedback airtime at a robust control rate."""
        return frame_airtime_s(feedback_bits, self.feedback_bandwidth_mhz)

    def sta_overhead(self, head_flops: float, feedback_bits: int) -> float:
        """``L^H``: computational + transmit energy at the STA (joules)."""
        return (
            head_flops * self.energy_per_flop_j
            + feedback_bits * self.tx_energy_per_bit_j
        )

    def bop_objective(
        self,
        head_flops: float,
        tail_flops: float,
        feedback_bits: int,
        mu: float,
        n_users: int = 1,
    ) -> float:
        """Eq. (7a): ``sum_i mu * L^H_i + (1 - mu) * T^A_i``.

        Energy (joules) and airtime (seconds) are combined after scaling
        airtime by 1e3 so both terms are O(1) for typical configurations
        (the paper leaves the weighting units unspecified).
        """
        if not 0 < mu < 1:
            raise ConfigurationError("mu must be in (0, 1) per Eq. (7b)")
        per_user = mu * self.sta_overhead(head_flops, feedback_bits) + (
            1 - mu
        ) * (1e3 * self.airtime_s(feedback_bits))
        return n_users * per_user

    def end_to_end_delay_s(
        self, head_flops: float, tail_flops: float, feedback_bits: int
    ) -> float:
        """Eq. (7d) left side for one STA: ``T^H + T^A + T^T``."""
        return (
            self.head_time_s(head_flops)
            + self.airtime_s(feedback_bits)
            + self.tail_time_s(tail_flops)
        )
