"""Lightweight call-count/cumulative-time profiling hooks.

``@profiled`` wraps a function so each call records its wall time into a
process-wide registry; :func:`record` does the same for arbitrary code
blocks.  Overhead is two ``perf_counter`` reads and a dict update per
call — cheap enough to leave on the library's coarse hot-path entry
points permanently, so a long experiment can be asked post-hoc where its
time went via :func:`profile_summary`.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "profiled",
    "record",
    "profile_summary",
    "profile_snapshot",
    "merge_profiles",
    "reset_profiles",
    "ProfileEntry",
]


@dataclass
class ProfileEntry:
    """Aggregated statistics for one profiled name."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
        }


_REGISTRY: dict[str, ProfileEntry] = {}

# The registry is process-wide and the executor's callback threads (and
# worker-delta merges) update it concurrently with profiled user code.
_REGISTRY_LOCK = threading.Lock()


def _observe(name: str, elapsed_s: float) -> None:
    with _REGISTRY_LOCK:
        # Telemetry only: profile entries never feed task result bytes,
        # so cross-call registry state cannot violate bit-identity.
        # repro: allow[REP-PURE-TASK]
        entry = _REGISTRY.get(name)
        if entry is None:
            entry = ProfileEntry(name=name)
            _REGISTRY[name] = entry
        entry.calls += 1
        entry.total_s += elapsed_s
        entry.max_s = max(entry.max_s, elapsed_s)


def profiled(name: str | None = None):
    """Decorator: record each call's wall time under ``name``.

    ``name`` defaults to ``module.qualname`` of the wrapped function.
    """

    def decorate(fn):
        label = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                _observe(label, time.perf_counter() - start)

        wrapper.__profiled_name__ = label
        return wrapper

    return decorate


@contextmanager
def record(name: str):
    """Context manager: record the enclosed block's wall time."""
    start = time.perf_counter()
    try:
        yield
    finally:
        _observe(name, time.perf_counter() - start)


def profile_summary() -> "list[ProfileEntry]":
    """All entries observed so far, slowest cumulative time first.

    Equal totals tie-break by name so the ordering is deterministic.
    """
    with _REGISTRY_LOCK:
        entries = list(_REGISTRY.values())
    return sorted(entries, key=lambda e: (-e.total_s, e.name))


def profile_snapshot() -> "dict[str, tuple[int, float, float]]":
    """The registry as plain ``{name: (calls, total_s, max_s)}`` tuples.

    Pool workers snapshot their process-local registry at the end of a
    chunk and ship the tuples back over IPC (picklable, tiny), where
    :func:`merge_profiles` folds them into the coordinator's registry —
    without this, everything ``@profiled`` observes inside a worker is
    silently lost when the process exits.
    """
    with _REGISTRY_LOCK:
        return {
            name: (entry.calls, entry.total_s, entry.max_s)
            for name, entry in _REGISTRY.items()
        }


def merge_profiles(snapshot: "dict[str, tuple[int, float, float]]") -> None:
    """Fold a :func:`profile_snapshot` (e.g. from a worker) into this process."""
    with _REGISTRY_LOCK:
        for name, (calls, total_s, max_s) in snapshot.items():
            entry = _REGISTRY.get(name)
            if entry is None:
                entry = ProfileEntry(name=name)
                _REGISTRY[name] = entry
            entry.calls += calls
            entry.total_s += total_s
            entry.max_s = max(entry.max_s, max_s)


def reset_profiles() -> None:
    """Clear the registry (e.g. between benchmark stages)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()
