"""JSON perf reports: the machine-readable perf trajectory across PRs.

A :class:`PerfReport` collects stage timings (and optional
baseline-vs-optimized comparisons) and serializes them with enough
environment context to interpret the numbers later.  The benchmark
suite writes ``BENCH_hotpaths.json`` through this module; CI or future
PRs can diff those files to catch hot-path regressions.
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.timer import BenchmarkResult, speedup

__all__ = ["PerfReport"]

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


class PerfReport:
    """Accumulates benchmark results and writes them as one JSON file."""

    def __init__(self, title: str, context: dict | None = None) -> None:
        self.title = title
        self.context = {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            **(context or {}),
        }
        self._stages: list[BenchmarkResult] = []
        self._comparisons: list[dict] = []

    def add(self, result: BenchmarkResult) -> None:
        """Record one stage timing."""
        self._stages.append(result)

    def add_comparison(
        self,
        stage: str,
        baseline: BenchmarkResult,
        optimized: BenchmarkResult,
        requires_cpus: "int | None" = None,
    ) -> float:
        """Record a before/after pair; returns the speedup factor.

        ``requires_cpus`` marks a hardware-gated comparison (e.g.
        worker scaling needs cores to scale onto): the measured numbers
        are always recorded in the JSON for the perf trajectory, but
        :meth:`render` reports the stage as skipped on hosts below the
        gate instead of printing a misleading "regression" ratio.
        """
        factor = speedup(baseline, optimized)
        comparison = {
            "stage": stage,
            "baseline": baseline.as_dict(),
            "optimized": optimized.as_dict(),
            "speedup": factor,
        }
        if requires_cpus is not None:
            import os

            comparison["requires_cpus"] = int(requires_cpus)
            comparison["cpu_count"] = int(os.cpu_count() or 1)
        self._comparisons.append(comparison)
        return factor

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "title": self.title,
            "created_unix": time.time(),
            "context": self.context,
            "stages": [result.as_dict() for result in self._stages],
            "comparisons": list(self._comparisons),
        }

    def write_json(self, path: str) -> None:
        """Serialize the report (2-space indent, trailing newline)."""
        if not path:
            raise ConfigurationError("report path must be non-empty")
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def render(self) -> str:
        """Human-readable summary for terminal output."""
        lines = [self.title, "=" * len(self.title)]
        for result in self._stages:
            lines.append(f"  {result}")
        for comparison in self._comparisons:
            required = comparison.get("requires_cpus")
            cpus = comparison.get("cpu_count")
            if required is not None and (cpus or 1) < required:
                lines.append(
                    "  {stage}: skipped ({cpus} cores; "
                    "needs >= {required})".format(
                        stage=comparison["stage"], cpus=cpus, required=required
                    )
                )
                continue
            lines.append(
                "  {stage}: {before:.1f} ms -> {after:.1f} ms "
                "({speedup:.1f}x)".format(
                    stage=comparison["stage"],
                    before=comparison["baseline"]["median_s"] * 1e3,
                    after=comparison["optimized"]["median_s"] * 1e3,
                    speedup=comparison["speedup"],
                )
            )
        return "\n".join(lines)
