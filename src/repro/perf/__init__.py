"""Performance measurement subsystem.

Three pieces:

- :mod:`repro.perf.timer` — the :class:`Benchmark` runner producing
  median/mean/min wall times and samples-per-second throughput;
- :mod:`repro.perf.profile` — ``@profiled`` hooks and the ``record``
  context manager for coarse where-did-the-time-go accounting;
- :mod:`repro.perf.report` — :class:`PerfReport`, the JSON emitter
  behind ``benchmarks/results/BENCH_hotpaths.json``.

:mod:`repro.perf.reference` holds the frozen pre-vectorization hot-path
implementations used for equivalence tests and before/after speedup
tracking.  See ``docs/perf.md`` for how to run and read the benchmarks.
"""

from repro.perf.profile import (
    ProfileEntry,
    profile_summary,
    profiled,
    record,
    reset_profiles,
)
from repro.perf.report import PerfReport
from repro.perf.timer import Benchmark, BenchmarkResult, speedup

__all__ = [
    "Benchmark",
    "BenchmarkResult",
    "PerfReport",
    "ProfileEntry",
    "profile_summary",
    "profiled",
    "record",
    "reset_profiles",
    "speedup",
]
