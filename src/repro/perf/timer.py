"""Wall-clock micro-benchmark runner for the hot-path suite.

A :class:`Benchmark` times callables with warmup and repeats using
``time.perf_counter`` and reports robust statistics (the median is the
headline number — it ignores one-off allocator/GC hiccups).  Passing
``n_items`` (samples, packets, reports, ...) adds a throughput figure so
stage results stay comparable when workload sizes change across PRs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["BenchmarkResult", "Benchmark", "speedup"]


@dataclass
class BenchmarkResult:
    """Timing statistics for one benchmarked stage."""

    name: str
    repeats: int
    median_s: float
    mean_s: float
    min_s: float
    max_s: float
    n_items: int | None = None
    meta: dict = field(default_factory=dict)

    @property
    def items_per_s(self) -> float | None:
        """Throughput based on the median run, if ``n_items`` was given."""
        if self.n_items is None or self.median_s <= 0:
            return None
        return self.n_items / self.median_s

    def as_dict(self) -> dict:
        """JSON-ready representation (used by ``repro.perf.report``)."""
        payload = {
            "name": self.name,
            "repeats": self.repeats,
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }
        if self.n_items is not None:
            payload["n_items"] = self.n_items
            payload["items_per_s"] = self.items_per_s
        if self.meta:
            payload["meta"] = self.meta
        return payload

    def __str__(self) -> str:
        rate = self.items_per_s
        suffix = f", {rate:,.0f} items/s" if rate is not None else ""
        return f"{self.name}: median {self.median_s * 1e3:.2f} ms{suffix}"


def _median(values: "list[float]") -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class Benchmark:
    """Times callables with a fixed warmup/repeat policy.

    Parameters
    ----------
    warmup:
        Untimed calls before measurement (JIT-free here, but the first
        call often pays lazy-import and allocator costs).
    repeats:
        Timed calls; the median is the reported statistic.
    """

    def __init__(self, warmup: int = 1, repeats: int = 5) -> None:
        if warmup < 0 or repeats < 1:
            raise ConfigurationError(
                "warmup must be >= 0 and repeats >= 1"
            )
        self.warmup = int(warmup)
        self.repeats = int(repeats)

    def run(
        self,
        name: str,
        fn,
        *,
        n_items: int | None = None,
        repeats: int | None = None,
        warmup: int | None = None,
        meta: dict | None = None,
    ) -> BenchmarkResult:
        """Time ``fn()`` and return a :class:`BenchmarkResult`."""
        warmup = self.warmup if warmup is None else int(warmup)
        repeats = self.repeats if repeats is None else int(repeats)
        if warmup < 0 or repeats < 1:
            raise ConfigurationError("warmup must be >= 0 and repeats >= 1")
        for _ in range(warmup):
            fn()
        timings: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return BenchmarkResult(
            name=name,
            repeats=repeats,
            median_s=_median(timings),
            mean_s=sum(timings) / len(timings),
            min_s=min(timings),
            max_s=max(timings),
            n_items=n_items,
            meta=dict(meta or {}),
        )


def speedup(baseline: BenchmarkResult, optimized: BenchmarkResult) -> float:
    """Median-over-median speedup of ``optimized`` vs ``baseline``."""
    if optimized.median_s <= 0:
        raise ConfigurationError("optimized median must be positive")
    return baseline.median_s / optimized.median_s
