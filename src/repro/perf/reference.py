"""Frozen pre-vectorization implementations of the hot paths.

These are verbatim copies of the per-sample / per-tone / per-packet
loops the library shipped with before the vectorization pass.  They are
kept for two jobs:

- **equivalence**: the test suite asserts the vectorized paths in
  ``repro.standard.givens``, ``repro.standard.cbf``,
  ``repro.phy.link``, and ``repro.channels.sampler`` reproduce these
  outputs (bit-exactly where the wire format or RNG stream pins the
  result);
- **speedup tracking**: ``benchmarks/bench_perf_hotpaths.py`` times
  each stage against its reference twin and records the ratio in
  ``BENCH_hotpaths.json``.

Do not "optimize" this module — its value is that it never changes.
(The link-simulation reference lives on the simulator itself as
:meth:`repro.phy.link.LinkSimulator.measure_ber_reference`, because it
shares the simulator's internal helpers.  It inherits one deliberate
change relative to the pre-vectorization release: singular vectors are
pinned to the standard's canonical phase gauge, which relabels the
noise realization of seed-pinned BER values without changing the
algorithm or the statistics.)
"""

from __future__ import annotations

import numpy as np

from repro.channels.doppler import ShadowingProcess
from repro.channels.sampler import CsiBatch, CsiSampler
from repro.channels.tgac import TgacChannel
from repro.errors import ConfigurationError, ShapeError
from repro.phy.noise import awgn
from repro.standard.cbf import (
    CbfReport,
    MimoControl,
    _delta_to_code,
    _interleave_order,
    _snr_to_code,
    _DELTA_SNR_BITS,
    grouped_tone_indices,
)
from repro.standard.givens import GivensAngles, angle_counts
from repro.utils.bits import BitReader, BitWriter
from repro.utils.rng import spawn

__all__ = [
    "reference_givens_decompose",
    "reference_givens_reconstruct",
    "reference_encode_cbf",
    "reference_decode_cbf",
    "reference_collect_session",
]


def reference_givens_decompose(bf: np.ndarray) -> GivensAngles:
    """Seed ``givens_decompose``: full-matrix rotations, per-row copies."""
    omega = np.asarray(bf, dtype=np.complex128).copy()
    if omega.ndim < 2:
        raise ShapeError("expected (..., Nt, Nss) beamforming matrices")
    n_tx, n_streams = omega.shape[-2:]
    if n_tx < n_streams:
        raise ShapeError(f"Nt={n_tx} must be >= Nss={n_streams}")
    batch_shape = omega.shape[:-2]

    last_phase = np.exp(-1j * np.angle(omega[..., -1:, :]))
    omega = omega * last_phase

    m = min(n_streams, n_tx - 1)
    phis: list[np.ndarray] = []
    psis: list[np.ndarray] = []
    for t in range(1, m + 1):
        column = omega[..., t - 1 : n_tx - 1, t - 1]
        phi_t = np.angle(column)
        phis.append(phi_t)
        rotation = np.ones(batch_shape + (n_tx, 1), dtype=np.complex128)
        rotation[..., t - 1 : n_tx - 1, 0] = np.exp(-1j * phi_t)
        omega = omega * rotation
        for ell in range(t + 1, n_tx + 1):
            top = omega[..., t - 1, t - 1].real
            low = omega[..., ell - 1, t - 1].real
            radius = np.hypot(top, low)
            safe = np.maximum(radius, 1e-300)
            cos_psi = np.clip(top / safe, -1.0, 1.0)
            psi_lt = np.arccos(cos_psi)
            psis.append(psi_lt)
            sin_psi = np.sin(psi_lt)
            row_t = omega[..., t - 1, :].copy()
            row_l = omega[..., ell - 1, :].copy()
            omega[..., t - 1, :] = (
                cos_psi[..., None] * row_t + sin_psi[..., None] * row_l
            )
            omega[..., ell - 1, :] = (
                -sin_psi[..., None] * row_t + cos_psi[..., None] * row_l
            )

    n_phi, n_psi = angle_counts(n_tx, n_streams)
    phi = (
        np.concatenate([p.reshape(batch_shape + (-1,)) for p in phis], axis=-1)
        if phis
        else np.zeros(batch_shape + (0,))
    )
    psi = (
        np.stack(psis, axis=-1).reshape(batch_shape + (-1,))
        if psis
        else np.zeros(batch_shape + (0,))
    )
    if phi.shape[-1] != n_phi or psi.shape[-1] != n_psi:
        raise ShapeError("internal angle-count mismatch")
    return GivensAngles(phi=phi, psi=psi, n_tx=n_tx, n_streams=n_streams)


def reference_givens_reconstruct(angles: GivensAngles) -> np.ndarray:
    """Seed ``givens_reconstruct``: full-matrix rotation products."""
    n_tx, n_streams = angles.n_tx, angles.n_streams
    phi, psi = np.asarray(angles.phi), np.asarray(angles.psi)
    batch_shape = phi.shape[:-1]
    m = min(n_streams, n_tx - 1)

    result = np.zeros(batch_shape + (n_tx, n_streams), dtype=np.complex128)
    result[...] = np.eye(n_tx, n_streams, dtype=np.complex128)

    phi_index = phi.shape[-1]
    psi_index = psi.shape[-1]
    for t in range(m, 0, -1):
        n_psi_t = n_tx - t
        psi_block = psi[..., psi_index - n_psi_t : psi_index]
        psi_index -= n_psi_t
        for ell in range(n_tx, t, -1):
            psi_lt = psi_block[..., ell - t - 1]
            cos_psi = np.cos(psi_lt)[..., None]
            sin_psi = np.sin(psi_lt)[..., None]
            row_t = result[..., t - 1, :].copy()
            row_l = result[..., ell - 1, :].copy()
            result[..., t - 1, :] = cos_psi * row_t - sin_psi * row_l
            result[..., ell - 1, :] = sin_psi * row_t + cos_psi * row_l
        n_phi_t = n_tx - t
        phi_block = phi[..., phi_index - n_phi_t : phi_index]
        phi_index -= n_phi_t
        rotation = np.ones(batch_shape + (n_tx, 1), dtype=np.complex128)
        rotation[..., t - 1 : n_tx - 1, 0] = np.exp(1j * phi_block)
        result = result * rotation
    if phi_index != 0 or psi_index != 0:
        raise ShapeError("angle arrays inconsistent with (n_tx, n_streams)")
    return result


def reference_encode_cbf(
    bf: np.ndarray,
    control: MimoControl,
    snr_db: "np.ndarray | float" = 30.0,
    mu_delta_db: np.ndarray | None = None,
) -> bytes:
    """Seed ``encode_cbf``: one ``BitWriter.write`` per angle field."""
    bf = np.asarray(bf, dtype=np.complex128)
    expected = (control.n_subcarriers, control.n_rows, control.n_columns)
    if bf.shape != expected:
        raise ShapeError(f"bf shape {bf.shape} != expected {expected}")

    tones = grouped_tone_indices(control.n_subcarriers, control.grouping)
    angles = reference_givens_decompose(bf[tones])
    quantizer = control.quantizer
    phi_codes = quantizer.quantize_phi(angles.phi)
    psi_codes = quantizer.quantize_psi(angles.psi)

    snr = np.broadcast_to(
        np.atleast_1d(np.asarray(snr_db, dtype=np.float64)),
        (control.n_columns,),
    )

    writer = BitWriter()
    control.pack(writer)
    writer.write_array(_snr_to_code(snr), 8)
    order, _ = _interleave_order(control.n_rows, control.n_columns)
    for tone in range(tones.size):
        for kind, idx in order:
            if kind == "phi":
                writer.write(int(phi_codes[tone, idx]), quantizer.b_phi)
            else:
                writer.write(int(psi_codes[tone, idx]), quantizer.b_psi)
    if mu_delta_db is not None:
        mu_delta_db = np.asarray(mu_delta_db, dtype=np.float64)
        if mu_delta_db.shape != (control.n_subcarriers, control.n_columns):
            raise ShapeError("bad mu_delta_db shape")
        writer.write_array(_delta_to_code(mu_delta_db), _DELTA_SNR_BITS)
    return writer.getvalue()


def reference_decode_cbf(
    data: bytes, expect_mu_exclusive: bool | None = None
) -> CbfReport:
    """Seed ``decode_cbf``: one ``BitReader.read`` per angle field."""
    reader = BitReader(data)
    control = MimoControl.unpack(reader)
    snr_codes = reader.read_array(control.n_columns, 8)

    n_phi, n_psi = angle_counts(control.n_rows, control.n_columns)
    quantizer = control.quantizer
    tones = grouped_tone_indices(control.n_subcarriers, control.grouping)
    phi_codes = np.zeros((tones.size, n_phi), dtype=np.int64)
    psi_codes = np.zeros((tones.size, n_psi), dtype=np.int64)
    order, _ = _interleave_order(control.n_rows, control.n_columns)
    for tone in range(tones.size):
        for kind, idx in order:
            if kind == "phi":
                phi_codes[tone, idx] = reader.read(quantizer.b_phi)
            else:
                psi_codes[tone, idx] = reader.read(quantizer.b_psi)

    mu_codes: np.ndarray | None = None
    mu_bits = control.n_subcarriers * control.n_columns * _DELTA_SNR_BITS
    if expect_mu_exclusive is None:
        expect_mu_exclusive = reader.bits_remaining >= mu_bits
    if expect_mu_exclusive:
        mu_codes = reader.read_array(
            control.n_subcarriers * control.n_columns, _DELTA_SNR_BITS
        ).reshape(control.n_subcarriers, control.n_columns)
    return CbfReport(
        control=control,
        snr_codes=snr_codes,
        phi_codes=phi_codes,
        psi_codes=psi_codes,
        mu_delta_codes=mu_codes,
    )


def reference_collect_session(
    sampler: CsiSampler, n_packets: int
) -> "list[CsiBatch]":
    """Seed ``CsiSampler.collect_session``: one Python step per packet.

    Consumes ``sampler.rng`` for spawn/placement/drops exactly like both
    the seed and vectorized paths, so the drop pattern (and therefore
    the sequence numbers) match the vectorized output for equal seeds.
    Per-user channel draws differ in order, so CSI values are only
    statistically — not numerically — comparable.
    """
    if n_packets < 1:
        raise ConfigurationError("n_packets must be >= 1")
    user_rngs = spawn(sampler.rng, sampler.n_users)
    offsets = sampler.env.location_offsets_deg()
    replace = sampler.n_users > offsets.size
    chosen = sampler.rng.choice(offsets, size=sampler.n_users, replace=replace)
    channels = [
        TgacChannel(
            sampler.env.profile,
            n_rx=sampler.n_rx,
            n_tx=sampler.n_tx,
            band=sampler.band,
            doppler_hz=sampler.env.doppler_hz,
            sample_interval_s=sampler.dt_s,
            angle_offset_deg=float(chosen[i]),
            rician_k_db=sampler.env.rician_k_db,
            rng=user_rngs[i],
        )
        for i in range(sampler.n_users)
    ]
    shadowing = [
        ShadowingProcess(
            sigma_db=sampler.env.shadowing_sigma_db,
            coherence_s=sampler.env.shadowing_coherence_s,
            dt_s=sampler.dt_s,
            rng=user_rngs[i],
        )
        for i in range(sampler.n_users)
    ]

    collected: list[list[np.ndarray]] = [[] for _ in range(sampler.n_users)]
    sequences: list[list[int]] = [[] for _ in range(sampler.n_users)]
    for seq in range(n_packets):
        for i in range(sampler.n_users):
            response = channels[i].step() * shadowing[i].step()
            if sampler.rng.random() < sampler.env.packet_drop_rate:
                continue
            if sampler.env.csi_noise_snr_db is not None:
                signal_power = float(np.mean(np.abs(response) ** 2))
                power = signal_power / (
                    10.0 ** (sampler.env.csi_noise_snr_db / 10.0)
                )
                response = response + awgn(
                    response.shape, power=power, rng=user_rngs[i]
                )
            collected[i].append(response)
            sequences[i].append(seq)

    batches = []
    for i in range(sampler.n_users):
        if not collected[i]:
            raise ConfigurationError("a user received no packets")
        batches.append(
            CsiBatch(
                csi=np.stack(collected[i]),
                sequence=np.asarray(sequences[i], dtype=np.int64),
            )
        )
    return batches
