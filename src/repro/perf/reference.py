"""Frozen pre-vectorization implementations of the hot paths.

These are verbatim copies of the per-sample / per-tone / per-packet
loops the library shipped with before the vectorization pass.  They are
kept for two jobs:

- **equivalence**: the test suite asserts the vectorized paths in
  ``repro.standard.givens``, ``repro.standard.cbf``,
  ``repro.phy.link``, and ``repro.channels.sampler`` reproduce these
  outputs (bit-exactly where the wire format or RNG stream pins the
  result);
- **speedup tracking**: ``benchmarks/bench_perf_hotpaths.py`` times
  each stage against its reference twin and records the ratio in
  ``BENCH_hotpaths.json``.

Do not "optimize" this module — its value is that it never changes.
(The link-simulation reference lives on the simulator itself as
:meth:`repro.phy.link.LinkSimulator.measure_ber_reference`, because it
shares the simulator's internal helpers.  It inherits one deliberate
change relative to the pre-vectorization release: singular vectors are
pinned to the standard's canonical phase gauge, which relabels the
noise realization of seed-pinned BER values without changing the
algorithm or the statistics.)

The training-stack references (:class:`ReferenceConv1d`,
:class:`ReferenceSGD`, :class:`ReferenceAdam`,
:class:`ReferenceTrainer`) freeze the pre-vectorization NN loops.  The
fused optimizers, the clip, and the trainer's batch pipeline replay the
reference arithmetic element-for-element, so trained weights are
asserted *bit-identical*; the im2col convolution's forward is likewise
bit-identical, while its backward contracts each gradient in one GEMM —
a floating-point reduction-order change, so conv gradients (and
therefore trained conv-model weights) match the reference to
rounding rather than bit-for-bit, exactly like the phase-gauge note
above: same algorithm, same statistics, relabelled low bits.
"""

from __future__ import annotations

import numpy as np

from repro.channels.doppler import ShadowingProcess
from repro.channels.sampler import CsiBatch, CsiSampler
from repro.channels.tgac import TgacChannel
from repro.errors import ConfigurationError, ShapeError
from repro.phy.noise import awgn
from repro.standard.cbf import (
    CbfReport,
    MimoControl,
    _delta_to_code,
    _interleave_order,
    _snr_to_code,
    _DELTA_SNR_BITS,
    grouped_tone_indices,
)
from repro.standard.givens import GivensAngles, angle_counts
from repro.utils.bits import BitReader, BitWriter
from repro.utils.rng import spawn

__all__ = [
    "reference_givens_decompose",
    "reference_givens_reconstruct",
    "reference_encode_cbf",
    "reference_decode_cbf",
    "reference_collect_session",
    "ReferenceConv1d",
    "ReferenceSGD",
    "ReferenceAdam",
    "ReferenceLinear",
    "ReferenceTanh",
    "ReferenceSigmoid",
    "ReferenceNormalizedL1Loss",
    "ReferenceTrainer",
    "pin_reference_nn",
    "reference_clip_gradients",
]


def reference_givens_decompose(bf: np.ndarray) -> GivensAngles:
    """Seed ``givens_decompose``: full-matrix rotations, per-row copies."""
    omega = np.asarray(bf, dtype=np.complex128).copy()
    if omega.ndim < 2:
        raise ShapeError("expected (..., Nt, Nss) beamforming matrices")
    n_tx, n_streams = omega.shape[-2:]
    if n_tx < n_streams:
        raise ShapeError(f"Nt={n_tx} must be >= Nss={n_streams}")
    batch_shape = omega.shape[:-2]

    last_phase = np.exp(-1j * np.angle(omega[..., -1:, :]))
    omega = omega * last_phase

    m = min(n_streams, n_tx - 1)
    phis: list[np.ndarray] = []
    psis: list[np.ndarray] = []
    for t in range(1, m + 1):
        column = omega[..., t - 1 : n_tx - 1, t - 1]
        phi_t = np.angle(column)
        phis.append(phi_t)
        rotation = np.ones(batch_shape + (n_tx, 1), dtype=np.complex128)
        rotation[..., t - 1 : n_tx - 1, 0] = np.exp(-1j * phi_t)
        omega = omega * rotation
        for ell in range(t + 1, n_tx + 1):
            top = omega[..., t - 1, t - 1].real
            low = omega[..., ell - 1, t - 1].real
            radius = np.hypot(top, low)
            safe = np.maximum(radius, 1e-300)
            cos_psi = np.clip(top / safe, -1.0, 1.0)
            psi_lt = np.arccos(cos_psi)
            psis.append(psi_lt)
            sin_psi = np.sin(psi_lt)
            row_t = omega[..., t - 1, :].copy()
            row_l = omega[..., ell - 1, :].copy()
            omega[..., t - 1, :] = (
                cos_psi[..., None] * row_t + sin_psi[..., None] * row_l
            )
            omega[..., ell - 1, :] = (
                -sin_psi[..., None] * row_t + cos_psi[..., None] * row_l
            )

    n_phi, n_psi = angle_counts(n_tx, n_streams)
    phi = (
        np.concatenate([p.reshape(batch_shape + (-1,)) for p in phis], axis=-1)
        if phis
        else np.zeros(batch_shape + (0,))
    )
    psi = (
        np.stack(psis, axis=-1).reshape(batch_shape + (-1,))
        if psis
        else np.zeros(batch_shape + (0,))
    )
    if phi.shape[-1] != n_phi or psi.shape[-1] != n_psi:
        raise ShapeError("internal angle-count mismatch")
    return GivensAngles(phi=phi, psi=psi, n_tx=n_tx, n_streams=n_streams)


def reference_givens_reconstruct(angles: GivensAngles) -> np.ndarray:
    """Seed ``givens_reconstruct``: full-matrix rotation products."""
    n_tx, n_streams = angles.n_tx, angles.n_streams
    phi, psi = np.asarray(angles.phi), np.asarray(angles.psi)
    batch_shape = phi.shape[:-1]
    m = min(n_streams, n_tx - 1)

    result = np.zeros(batch_shape + (n_tx, n_streams), dtype=np.complex128)
    result[...] = np.eye(n_tx, n_streams, dtype=np.complex128)

    phi_index = phi.shape[-1]
    psi_index = psi.shape[-1]
    for t in range(m, 0, -1):
        n_psi_t = n_tx - t
        psi_block = psi[..., psi_index - n_psi_t : psi_index]
        psi_index -= n_psi_t
        for ell in range(n_tx, t, -1):
            psi_lt = psi_block[..., ell - t - 1]
            cos_psi = np.cos(psi_lt)[..., None]
            sin_psi = np.sin(psi_lt)[..., None]
            row_t = result[..., t - 1, :].copy()
            row_l = result[..., ell - 1, :].copy()
            result[..., t - 1, :] = cos_psi * row_t - sin_psi * row_l
            result[..., ell - 1, :] = sin_psi * row_t + cos_psi * row_l
        n_phi_t = n_tx - t
        phi_block = phi[..., phi_index - n_phi_t : phi_index]
        phi_index -= n_phi_t
        rotation = np.ones(batch_shape + (n_tx, 1), dtype=np.complex128)
        rotation[..., t - 1 : n_tx - 1, 0] = np.exp(1j * phi_block)
        result = result * rotation
    if phi_index != 0 or psi_index != 0:
        raise ShapeError("angle arrays inconsistent with (n_tx, n_streams)")
    return result


def reference_encode_cbf(
    bf: np.ndarray,
    control: MimoControl,
    snr_db: "np.ndarray | float" = 30.0,
    mu_delta_db: np.ndarray | None = None,
) -> bytes:
    """Seed ``encode_cbf``: one ``BitWriter.write`` per angle field."""
    bf = np.asarray(bf, dtype=np.complex128)
    expected = (control.n_subcarriers, control.n_rows, control.n_columns)
    if bf.shape != expected:
        raise ShapeError(f"bf shape {bf.shape} != expected {expected}")

    tones = grouped_tone_indices(control.n_subcarriers, control.grouping)
    angles = reference_givens_decompose(bf[tones])
    quantizer = control.quantizer
    phi_codes = quantizer.quantize_phi(angles.phi)
    psi_codes = quantizer.quantize_psi(angles.psi)

    snr = np.broadcast_to(
        np.atleast_1d(np.asarray(snr_db, dtype=np.float64)),
        (control.n_columns,),
    )

    writer = BitWriter()
    control.pack(writer)
    writer.write_array(_snr_to_code(snr), 8)
    order, _ = _interleave_order(control.n_rows, control.n_columns)
    for tone in range(tones.size):
        for kind, idx in order:
            if kind == "phi":
                writer.write(int(phi_codes[tone, idx]), quantizer.b_phi)
            else:
                writer.write(int(psi_codes[tone, idx]), quantizer.b_psi)
    if mu_delta_db is not None:
        mu_delta_db = np.asarray(mu_delta_db, dtype=np.float64)
        if mu_delta_db.shape != (control.n_subcarriers, control.n_columns):
            raise ShapeError("bad mu_delta_db shape")
        writer.write_array(_delta_to_code(mu_delta_db), _DELTA_SNR_BITS)
    return writer.getvalue()


def reference_decode_cbf(
    data: bytes, expect_mu_exclusive: bool | None = None
) -> CbfReport:
    """Seed ``decode_cbf``: one ``BitReader.read`` per angle field."""
    reader = BitReader(data)
    control = MimoControl.unpack(reader)
    snr_codes = reader.read_array(control.n_columns, 8)

    n_phi, n_psi = angle_counts(control.n_rows, control.n_columns)
    quantizer = control.quantizer
    tones = grouped_tone_indices(control.n_subcarriers, control.grouping)
    phi_codes = np.zeros((tones.size, n_phi), dtype=np.int64)
    psi_codes = np.zeros((tones.size, n_psi), dtype=np.int64)
    order, _ = _interleave_order(control.n_rows, control.n_columns)
    for tone in range(tones.size):
        for kind, idx in order:
            if kind == "phi":
                phi_codes[tone, idx] = reader.read(quantizer.b_phi)
            else:
                psi_codes[tone, idx] = reader.read(quantizer.b_psi)

    mu_codes: np.ndarray | None = None
    mu_bits = control.n_subcarriers * control.n_columns * _DELTA_SNR_BITS
    if expect_mu_exclusive is None:
        expect_mu_exclusive = reader.bits_remaining >= mu_bits
    if expect_mu_exclusive:
        mu_codes = reader.read_array(
            control.n_subcarriers * control.n_columns, _DELTA_SNR_BITS
        ).reshape(control.n_subcarriers, control.n_columns)
    return CbfReport(
        control=control,
        snr_codes=snr_codes,
        phi_codes=phi_codes,
        psi_codes=psi_codes,
        mu_delta_codes=mu_codes,
    )


def reference_collect_session(
    sampler: CsiSampler, n_packets: int
) -> "list[CsiBatch]":
    """Seed ``CsiSampler.collect_session``: one Python step per packet.

    Consumes ``sampler.rng`` for spawn/placement/drops exactly like both
    the seed and vectorized paths, so the drop pattern (and therefore
    the sequence numbers) match the vectorized output for equal seeds.
    Per-user channel draws differ in order, so CSI values are only
    statistically — not numerically — comparable.
    """
    if n_packets < 1:
        raise ConfigurationError("n_packets must be >= 1")
    user_rngs = spawn(sampler.rng, sampler.n_users)
    offsets = sampler.env.location_offsets_deg()
    replace = sampler.n_users > offsets.size
    chosen = sampler.rng.choice(offsets, size=sampler.n_users, replace=replace)
    channels = [
        TgacChannel(
            sampler.env.profile,
            n_rx=sampler.n_rx,
            n_tx=sampler.n_tx,
            band=sampler.band,
            doppler_hz=sampler.env.doppler_hz,
            sample_interval_s=sampler.dt_s,
            angle_offset_deg=float(chosen[i]),
            rician_k_db=sampler.env.rician_k_db,
            rng=user_rngs[i],
        )
        for i in range(sampler.n_users)
    ]
    shadowing = [
        ShadowingProcess(
            sigma_db=sampler.env.shadowing_sigma_db,
            coherence_s=sampler.env.shadowing_coherence_s,
            dt_s=sampler.dt_s,
            rng=user_rngs[i],
        )
        for i in range(sampler.n_users)
    ]

    collected: list[list[np.ndarray]] = [[] for _ in range(sampler.n_users)]
    sequences: list[list[int]] = [[] for _ in range(sampler.n_users)]
    for seq in range(n_packets):
        for i in range(sampler.n_users):
            response = channels[i].step() * shadowing[i].step()
            if sampler.rng.random() < sampler.env.packet_drop_rate:
                continue
            if sampler.env.csi_noise_snr_db is not None:
                signal_power = float(np.mean(np.abs(response) ** 2))
                power = signal_power / (
                    10.0 ** (sampler.env.csi_noise_snr_db / 10.0)
                )
                response = response + awgn(
                    response.shape, power=power, rng=user_rngs[i]
                )
            collected[i].append(response)
            sequences[i].append(seq)

    batches = []
    for i in range(sampler.n_users):
        if not collected[i]:
            raise ConfigurationError("a user received no packets")
        batches.append(
            CsiBatch(
                csi=np.stack(collected[i]),
                sequence=np.asarray(sequences[i], dtype=np.int64),
            )
        )
    return batches


# -- frozen NN training stack (pre-vectorization loops) ------------------------


from repro.nn.conv import Conv1d as _Conv1d
from repro.nn.layers import Linear as _Linear, Sigmoid as _Sigmoid, Tanh as _Tanh
from repro.nn.losses import NormalizedL1Loss as _NormalizedL1Loss
from repro.nn.trainer import Trainer as _Trainer


class ReferenceConv1d(_Conv1d):
    """Seed ``Conv1d``: per-kernel-position unfold/fold loops.

    A drop-in twin (same constructor, same parameters) whose forward
    stacks ``k`` shifted copies per call and whose backward scatters the
    input gradient position by position — the implementation the im2col
    layer replaced.  The vectorized forward is bit-identical to this;
    the vectorized backward matches to reduction-order rounding (see
    the module docstring).
    """

    def _reference_unfold(self, inputs: np.ndarray) -> np.ndarray:
        """``(batch, C_in, L)`` -> ``(batch, L, C_in * k)`` patch matrix."""
        batch, channels, length = inputs.shape
        pad = self.kernel_size // 2
        padded = np.pad(inputs, ((0, 0), (0, 0), (pad, pad)))
        patches = np.stack(
            [padded[:, :, i : i + length] for i in range(self.kernel_size)],
            axis=3,
        )  # (batch, C_in, L, k)
        return patches.transpose(0, 2, 1, 3).reshape(
            batch, length, channels * self.kernel_size
        )

    def _reference_fold_input_grad(
        self, grad_columns: np.ndarray, shape: "tuple[int, int, int]"
    ) -> np.ndarray:
        """Scatter ``(batch, L, C_in * k)`` gradients back onto the input."""
        batch, channels, length = shape
        pad = self.kernel_size // 2
        grads = grad_columns.reshape(
            batch, length, channels, self.kernel_size
        ).transpose(0, 2, 1, 3)  # (batch, C_in, L, k)
        padded = np.zeros((batch, channels, length + 2 * pad))
        for i in range(self.kernel_size):
            padded[:, :, i : i + length] += grads[:, :, :, i]
        return padded[:, :, pad : pad + length]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv1d expected (batch, {self.in_channels}, L), "
                f"got {inputs.shape}"
            )
        columns = self._reference_unfold(inputs)  # (batch, L, C_in*k)
        self._cached_columns = columns
        self._cached_shape = inputs.shape
        kernel = self.weight.data.reshape(self.out_channels, -1)
        out = columns @ kernel.T  # (batch, L, C_out)
        if self.bias is not None:
            out = out + self.bias.data
        return out.transpose(0, 2, 1)  # (batch, C_out, L)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_columns is None or self._cached_shape is None:
            raise ShapeError("backward called before forward on Conv1d")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, _, length = self._cached_shape
        if grad_output.shape != (batch, self.out_channels, length):
            raise ShapeError(
                f"Conv1d gradient shape {grad_output.shape} != "
                f"{(batch, self.out_channels, length)}"
            )
        grad_cols_out = grad_output.transpose(0, 2, 1)  # (batch, L, C_out)
        kernel = self.weight.data.reshape(self.out_channels, -1)

        # Parameter gradients: sum over batch and positions.
        grad_kernel = np.einsum(
            "blo,blf->of", grad_cols_out, self._cached_columns
        )
        self.weight.grad += grad_kernel.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_cols_out.sum(axis=(0, 1))

        grad_columns = grad_cols_out @ kernel  # (batch, L, C_in*k)
        return self._reference_fold_input_grad(grad_columns, self._cached_shape)


class ReferenceLinear(_Linear):
    """Seed ``Linear.forward``: allocate-per-op instead of fused matmul."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = self._as_batch(inputs)
        if inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"Linear expected {self.in_features} features, "
                f"got {inputs.shape[1]}"
            )
        self._cached_input = inputs
        out = inputs @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out


class ReferenceTanh(_Tanh):
    """Seed ``Tanh``: backward re-evaluates tanh instead of reusing it."""

    def _dfn_from(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self._dfn(x)


class ReferenceSigmoid(_Sigmoid):
    """Seed ``Sigmoid``: backward re-evaluates the forward expression."""

    def _dfn_from(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self._dfn(x)


class ReferenceNormalizedL1Loss(_NormalizedL1Loss):
    """Seed Eq. (8) loss: backward recomputes the floored denominator."""

    def _value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        batch = prediction.shape[0] if prediction.ndim > 1 else 1
        err = (prediction - target) ** 2 / self._denominator(target)
        return float(np.sum(err) / batch)

    def _grad(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        batch = prediction.shape[0] if prediction.ndim > 1 else 1
        return 2.0 * (prediction - target) / self._denominator(target) / batch


_REFERENCE_LAYERS = {
    _Conv1d: ReferenceConv1d,
    _Linear: ReferenceLinear,
    _Tanh: ReferenceTanh,
    _Sigmoid: ReferenceSigmoid,
}


def pin_reference_nn(module) -> None:
    """Re-class every layer of ``module`` to its frozen reference twin.

    The reference layers store nothing beyond what the live classes
    already carry, so swapping ``__class__`` on a freshly built model
    yields the pre-vectorization implementation with the very same
    parameters — the benchmarks use this to time reference-pinned
    models.  Layers whose arithmetic never changed (ReLU, LeakyReLU,
    Dropout, Flatten, Reshape) are left alone.
    """
    for sub in module.modules():
        twin = _REFERENCE_LAYERS.get(type(sub))
        if twin is not None:
            sub.__class__ = twin



class _ReferenceOptimizer:
    """Seed ``Optimizer`` base: no packing, per-parameter ``zero_grad``."""

    def __init__(self, parameters, lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigurationError(
                f"learning rate must be positive, got {lr}"
            )
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class ReferenceSGD(_ReferenceOptimizer):
    """Seed ``SGD.step``: one Python iteration per parameter."""

    def __init__(self, parameters, lr=1e-3, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(
                f"momentum must be in [0, 1), got {momentum}"
            )
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be >= 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class ReferenceAdam(_ReferenceOptimizer):
    """Seed ``Adam.step``: one Python iteration per parameter."""

    def __init__(
        self,
        parameters,
        lr=1e-3,
        betas=(0.9, 0.999),
        eps=1e-8,
        weight_decay=0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def reference_clip_gradients(model, limit: "float | None") -> None:
    """Seed ``Trainer._clip_gradients``: per-parameter norm loop."""
    if limit is None:
        return
    total = 0.0
    params = list(model.parameters())
    for param in params:
        total += float(np.sum(param.grad**2))
    norm = np.sqrt(total)
    if norm > limit:
        scale = limit / norm
        for param in params:
            param.grad *= scale


class ReferenceTrainer(_Trainer):
    """Seed training loop: per-batch fancy-index copies, loop optimizers.

    Inherits ``fit`` (the epoch/validation/checkpoint control flow is
    unchanged) but pins the per-epoch batch pipeline, the gradient
    clip, the optimizers, the model's layers (via
    :func:`pin_reference_nn` — construction mutates the model!), and
    the default loss to their frozen pre-vectorization implementations.
    """

    def __init__(self, model, loss=None, config=None, validation_metric=None):
        if loss is None:
            loss = ReferenceNormalizedL1Loss()
        pin_reference_nn(model)
        super().__init__(
            model,
            loss=loss,
            config=config,
            validation_metric=validation_metric,
        )

    def _build_optimizer(self):
        params = list(self.model.parameters())
        if self.config.optimizer == "adam":
            return ReferenceAdam(
                params,
                lr=self.config.learning_rate,
                weight_decay=self.config.weight_decay,
            )
        return ReferenceSGD(
            params,
            lr=self.config.learning_rate,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    def _clip_gradients(self, optimizer=None) -> None:
        reference_clip_gradients(self.model, self.config.max_grad_norm)

    def _run_epoch(self, inputs, targets, optimizer, rng) -> float:
        count = inputs.shape[0]
        order = (
            rng.permutation(count) if self.config.shuffle else np.arange(count)
        )
        total = 0.0
        for start in range(0, count, self.config.batch_size):
            index = order[start : start + self.config.batch_size]
            batch_in = inputs[index]
            batch_target = targets[index]
            optimizer.zero_grad()
            prediction = self.model.forward(batch_in)
            total += self.loss.forward(prediction, batch_target) * index.size
            self.model.backward(self.loss.backward())
            self._clip_gradients()
            optimizer.step()
        return total / count
