"""Reusable BER sweeps shared by benches and examples."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import FAST, Fidelity
from repro.core.pipeline import SplitBeamFeedback, evaluate_scheme
from repro.core.training import train_splitbeam
from repro.datasets.builder import CsiDataset
from repro.phy.link import LinkConfig, LinkSimulator

__all__ = ["ber_vs_compression", "ber_vs_snr"]


def ber_vs_compression(
    dataset: CsiDataset,
    compressions: Sequence[float] = (1 / 32, 1 / 16, 1 / 8, 1 / 4),
    fidelity: Fidelity = FAST,
    link_config: LinkConfig | None = None,
    eval_dataset: CsiDataset | None = None,
    seed: int = 0,
) -> dict[float, float]:
    """Train one SplitBeam model per compression level; return test BERs.

    ``eval_dataset`` switches the evaluation to another environment's
    test split (cross-environment protocol).
    """
    link_config = link_config or LinkConfig(n_ofdm_symbols=fidelity.ofdm_symbols)
    results: dict[float, float] = {}
    for compression in compressions:
        trained = train_splitbeam(
            dataset, compression=compression, fidelity=fidelity, seed=seed
        )
        target = eval_dataset if eval_dataset is not None else dataset
        indices = target.splits.test[: fidelity.ber_samples]
        evaluation = evaluate_scheme(
            SplitBeamFeedback(trained),
            dataset,
            indices=indices,
            link_config=link_config,
            eval_dataset=eval_dataset,
        )
        results[compression] = evaluation.ber
    return results


def ber_vs_snr(
    dataset: CsiDataset,
    bf_estimates: np.ndarray,
    snrs_db: Sequence[float],
    indices: np.ndarray | None = None,
    base_config: LinkConfig | None = None,
) -> dict[float, float]:
    """Measure BER of fixed beamforming estimates across an SNR sweep."""
    base = base_config or LinkConfig()
    indices = dataset.splits.test if indices is None else indices
    out: dict[float, float] = {}
    for snr_db in snrs_db:
        config = LinkConfig(
            snr_db=float(snr_db),
            qam_order=base.qam_order,
            use_coding=base.use_coding,
            n_ofdm_symbols=base.n_ofdm_symbols,
            seed=base.seed,
        )
        simulator = LinkSimulator(config)
        result = simulator.measure_ber(
            dataset.link_channels(indices), bf_estimates
        )
        out[float(snr_db)] = result.ber
    return out
