"""Parameter sweeps with per-point confidence intervals.

The paper reports single BER numbers; a reproduction should also say
how *stable* they are.  ``ber_sweep`` measures a feedback scheme across
an SNR (or any LinkConfig-parameter) grid with several independent
noise seeds per point and returns mean ± a normal-approximation
confidence halfwidth, which the examples print alongside the point
estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.baselines.interface import FeedbackScheme
from repro.datasets.builder import CsiDataset
from repro.errors import ConfigurationError
from repro.phy.link import LinkConfig, LinkSimulator

__all__ = ["SweepPoint", "ber_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep point: mean BER over seeds plus a CI halfwidth."""

    parameter: float
    mean_ber: float
    ci_halfwidth: float
    n_seeds: int

    @property
    def low(self) -> float:
        return max(self.mean_ber - self.ci_halfwidth, 0.0)

    @property
    def high(self) -> float:
        return min(self.mean_ber + self.ci_halfwidth, 1.0)


def ber_sweep(
    scheme: FeedbackScheme,
    dataset: CsiDataset,
    snrs_db: Sequence[float],
    indices: np.ndarray | None = None,
    base_config: LinkConfig | None = None,
    n_seeds: int = 3,
    z_score: float = 1.96,
) -> list[SweepPoint]:
    """Measure BER across an SNR grid with independent noise seeds.

    The beamforming reconstruction is computed once (it does not depend
    on the link noise); only the link simulation is repeated per seed.
    """
    if not snrs_db:
        raise ConfigurationError("need at least one SNR point")
    if n_seeds < 1:
        raise ConfigurationError("n_seeds must be >= 1")
    if indices is None:
        indices = dataset.splits.test
    base = base_config or LinkConfig()
    bf = scheme.reconstruct_bf(dataset, indices)
    channels = dataset.link_channels(indices)

    points: list[SweepPoint] = []
    for snr_db in snrs_db:
        bers = []
        for seed in range(n_seeds):
            config = replace(base, snr_db=float(snr_db), seed=seed)
            result = LinkSimulator(config).measure_ber(channels, bf)
            bers.append(result.ber)
        bers_arr = np.asarray(bers)
        halfwidth = (
            z_score * float(bers_arr.std(ddof=1)) / np.sqrt(n_seeds)
            if n_seeds > 1
            else 0.0
        )
        points.append(
            SweepPoint(
                parameter=float(snr_db),
                mean_ber=float(bers_arr.mean()),
                ci_halfwidth=halfwidth,
                n_seeds=n_seeds,
            )
        )
    return points
