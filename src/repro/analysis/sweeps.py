"""Parameter sweeps with per-point confidence intervals.

The paper reports single BER numbers; a reproduction should also say
how *stable* they are.  ``ber_sweep`` measures a feedback scheme across
an SNR (or any LinkConfig-parameter) grid with several independent
noise seeds per point and returns mean ± a normal-approximation
confidence halfwidth, which the examples print alongside the point
estimates.

The (SNR x seed) grid points are independent pure tasks, so the sweep
executes through :func:`repro.runtime.executor.run_tasks`: serial and
in-process by default, on a worker pool when ``n_workers > 1`` (or
``$REPRO_RUNTIME_WORKERS`` is set) — with bit-identical results either
way, since each task seeds its own link simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.baselines.interface import FeedbackScheme
from repro.datasets.builder import CsiDataset
from repro.errors import ConfigurationError
from repro.phy.link import LinkConfig
from repro.runtime.executor import Task, run_tasks

__all__ = ["SweepPoint", "ber_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep point: mean BER over seeds plus a CI halfwidth."""

    parameter: float
    mean_ber: float
    ci_halfwidth: float
    n_seeds: int
    #: Per-seed BER measurements (length ``n_seeds``), so downstream
    #: statistics (bootstraps, seed-variance audits) need not re-run
    #: the sweep.  Empty only for hand-built points.
    seed_bers: tuple[float, ...] = ()

    @property
    def low(self) -> float:
        return max(self.mean_ber - self.ci_halfwidth, 0.0)

    @property
    def high(self) -> float:
        return min(self.mean_ber + self.ci_halfwidth, 1.0)


def ber_sweep(
    scheme: FeedbackScheme,
    dataset: CsiDataset,
    snrs_db: Sequence[float],
    indices: np.ndarray | None = None,
    base_config: LinkConfig | None = None,
    n_seeds: int = 3,
    z_score: float = 1.96,
    n_workers: int | None = None,
) -> list[SweepPoint]:
    """Measure BER across an SNR grid with independent noise seeds.

    The beamforming reconstruction is computed once (it does not depend
    on the link noise); only the link simulation is repeated per seed.
    ``n_workers`` parallelizes the (SNR x seed) grid (``None`` reads
    ``$REPRO_RUNTIME_WORKERS``; 1 = in-process serial execution, and
    results are identical regardless).
    """
    if not snrs_db:
        raise ConfigurationError("need at least one SNR point")
    if n_seeds < 1:
        raise ConfigurationError("n_seeds must be >= 1")
    if indices is None:
        indices = dataset.splits.test
    indices = np.asarray(indices)
    if indices.size == 0:
        raise ConfigurationError(
            "indices must be non-empty (an empty test split would yield "
            "a degenerate zero-bit BER mean)"
        )
    base = base_config or LinkConfig()
    bf = scheme.reconstruct_bf(dataset, indices)
    channels = dataset.link_channels(indices)

    # No shard labels: each (SNR, seed) cell is independent and carries
    # its arrays inline, so pinning cells together would only serialize
    # single-SNR multi-seed sweeps without any memoization payoff.
    tasks = [
        Task(
            task_id=f"snr{i:03d}/seed{seed:03d}",
            fn="repro.runtime.tasks:link_ber_point",
            params={
                "config": replace(base, snr_db=float(snr_db), seed=seed),
                "channels": channels,
                "bf": bf,
            },
        )
        for i, snr_db in enumerate(snrs_db)
        for seed in range(n_seeds)
    ]
    results = run_tasks(tasks, n_workers=n_workers)

    points: list[SweepPoint] = []
    for i, snr_db in enumerate(snrs_db):
        bers = [
            results[f"snr{i:03d}/seed{seed:03d}"]["ber"]
            for seed in range(n_seeds)
        ]
        bers_arr = np.asarray(bers)
        halfwidth = (
            z_score * float(bers_arr.std(ddof=1)) / np.sqrt(n_seeds)
            if n_seeds > 1
            else 0.0
        )
        points.append(
            SweepPoint(
                parameter=float(snr_db),
                mean_ber=float(bers_arr.mean()),
                ci_halfwidth=halfwidth,
                n_seeds=n_seeds,
                seed_bers=tuple(float(b) for b in bers),
            )
        )
    return points
