"""Experiment reporting: sweeps and table assembly for the benches."""

from repro.analysis.ber import ber_vs_compression, ber_vs_snr
from repro.analysis.report import ExperimentRecord, ExperimentReport
from repro.analysis.sweeps import SweepPoint, ber_sweep

__all__ = [
    "ber_vs_compression",
    "ber_vs_snr",
    "ExperimentRecord",
    "ExperimentReport",
    "SweepPoint",
    "ber_sweep",
]
