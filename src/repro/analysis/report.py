"""Structured experiment records with paper-vs-measured comparison.

Benches accumulate :class:`ExperimentRecord` rows into an
:class:`ExperimentReport`, which renders the ASCII tables printed on
stdout and the markdown fragments collected into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import render_table

__all__ = ["ExperimentRecord", "ExperimentReport"]


@dataclass(frozen=True)
class ExperimentRecord:
    """One measured quantity, optionally with the paper's value."""

    experiment: str  # e.g. "Fig. 9"
    setting: str  # e.g. "2x2 E1 20 MHz K=1/8"
    metric: str  # e.g. "BER"
    measured: float
    paper_value: float | None = None
    note: str = ""

    @property
    def ratio(self) -> float | None:
        """measured / paper, when a paper value exists and is nonzero."""
        if self.paper_value in (None, 0):
            return None
        return self.measured / self.paper_value


@dataclass
class ExperimentReport:
    """A collection of records for one table/figure."""

    title: str
    records: list[ExperimentRecord] = field(default_factory=list)

    def add(
        self,
        setting: str,
        metric: str,
        measured: float,
        paper_value: float | None = None,
        note: str = "",
    ) -> None:
        self.records.append(
            ExperimentRecord(
                experiment=self.title,
                setting=setting,
                metric=metric,
                measured=measured,
                paper_value=paper_value,
                note=note,
            )
        )

    def render(self, precision: int = 4) -> str:
        """ASCII table with measured (and paper, where known) columns."""
        has_paper = any(r.paper_value is not None for r in self.records)
        headers = ["setting", "metric", "measured"]
        if has_paper:
            headers += ["paper", "measured/paper"]
        rows = []
        for record in self.records:
            row: list[object] = [record.setting, record.metric, record.measured]
            if has_paper:
                row.append(
                    record.paper_value if record.paper_value is not None else "-"
                )
                row.append(record.ratio if record.ratio is not None else "-")
            rows.append(row)
        return render_table(headers, rows, title=self.title, precision=precision)

    def markdown(self, precision: int = 4) -> str:
        """Markdown table fragment for EXPERIMENTS.md."""
        lines = [f"### {self.title}", ""]
        lines.append("| setting | metric | measured | paper | note |")
        lines.append("|---|---|---|---|---|")
        for r in self.records:
            paper = f"{r.paper_value:.{precision}g}" if r.paper_value is not None else "-"
            lines.append(
                f"| {r.setting} | {r.metric} | {r.measured:.{precision}g} "
                f"| {paper} | {r.note} |"
            )
        lines.append("")
        return "\n".join(lines)
