"""SplitBeam reproduction: split-computing DNN beamforming feedback for Wi-Fi.

Reproduces Bahadori et al., "SplitBeam: Effective and Efficient
Beamforming in Wi-Fi Networks Through Split Computing" (ICDCS 2023).

Quickstart
----------
>>> from repro import build_dataset, dataset_spec, train_splitbeam, FAST
>>> dataset = build_dataset(dataset_spec("D1"), fidelity=FAST, seed=0)
>>> trained = train_splitbeam(dataset, compression=1 / 8, fidelity=FAST)
>>> trained.test_ber().ber  # doctest: +SKIP
0.02

Sub-packages
------------
- ``repro.nn`` -- NumPy neural-network training substrate;
- ``repro.phy`` -- MIMO-OFDM PHY (QAM, BCC/Viterbi, ZF, BER link sim);
- ``repro.standard`` -- IEEE 802.11 Givens-rotation feedback baseline;
- ``repro.channels`` -- TGn/TGac stochastic channel models (E1/E2);
- ``repro.datasets`` -- Table I dataset catalog, preprocessing, splits;
- ``repro.core`` -- the SplitBeam model, head/tail split, BOP solver;
- ``repro.baselines`` -- LB-SciFi and 802.11 feedback pipelines;
- ``repro.sounding`` -- channel-sounding protocol and delay model;
- ``repro.fpga`` -- FPGA latency model (Table III);
- ``repro.analysis`` -- experiment reporting helpers;
- ``repro.perf`` -- wall-clock benchmarks and profiling hooks;
- ``repro.runtime`` -- scenario registry, worker-pool experiment
  engine, and content-addressed result caching (``docs/runtime.md``).

See DESIGN.md for the full system inventory and per-experiment index.
"""

__version__ = "1.0.0"

from repro.errors import (
    ReproError,
    ConfigurationError,
    ShapeError,
    TrainingError,
    FeedbackError,
    ConstraintViolation,
    DatasetError,
)
from repro.config import Fidelity, PAPER, FAST, TRANSFER, SMOKE, fidelity
from repro.datasets import (
    DatasetSpec,
    CATALOG,
    dataset_spec,
    CsiDataset,
    build_dataset,
    save_dataset,
    load_dataset,
)
from repro.core import (
    SplitBeamNet,
    three_layer_widths,
    BottleneckQuantizer,
    SplitExecutor,
    train_splitbeam,
    TrainedSplitBeam,
    BopConstraints,
    BopResult,
    solve_bop,
    compare_schemes,
    NetworkConfiguration,
    ZooEntry,
    ModelZoo,
    ZooBuilder,
    ZooBuildResult,
    train_zoo,
    QosProfile,
    select_model,
    AdaptiveCompressionController,
)
from repro.core.pipeline import SplitBeamFeedback
from repro.baselines import Dot11Feedback, IdealSvdFeedback, LbSciFi, train_lbscifi
from repro.phy import LinkConfig, LinkSimulator
from repro.channels import Environment, E1, E2, SYNTHETIC, environment
from repro.core.session import NetworkSession, SessionReport
from repro.core.network import (
    NetworkCampaign,
    NetworkCampaignResult,
    run_campaign,
)
from repro.sounding import (
    bm_reporting_delay,
    simulate_sounding,
    SoundingCampaign,
    feedback_overhead_rate_bps,
)
from repro.fpga import table3_latency_s, splitbeam_latency_s
from repro.runtime import (
    CheckpointStore,
    ExperimentEngine,
    NetworkCampaignSpec,
    ResultCache,
    Scenario,
    TrainingGrid,
    campaign_names,
    get_campaign,
    get_scenario,
    get_training_grid,
    scenario_names,
    training_grid_names,
)

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "TrainingError",
    "FeedbackError",
    "ConstraintViolation",
    "DatasetError",
    # config
    "Fidelity",
    "PAPER",
    "FAST",
    "TRANSFER",
    "SMOKE",
    "fidelity",
    # datasets
    "DatasetSpec",
    "CATALOG",
    "dataset_spec",
    "CsiDataset",
    "build_dataset",
    "save_dataset",
    "load_dataset",
    # core
    "SplitBeamNet",
    "three_layer_widths",
    "BottleneckQuantizer",
    "SplitExecutor",
    "train_splitbeam",
    "TrainedSplitBeam",
    "BopConstraints",
    "BopResult",
    "solve_bop",
    "compare_schemes",
    "NetworkConfiguration",
    "ZooEntry",
    "ModelZoo",
    "ZooBuilder",
    "ZooBuildResult",
    "train_zoo",
    "QosProfile",
    "select_model",
    "AdaptiveCompressionController",
    "SplitBeamFeedback",
    # baselines
    "Dot11Feedback",
    "IdealSvdFeedback",
    "LbSciFi",
    "train_lbscifi",
    # phy
    "LinkConfig",
    "LinkSimulator",
    # channels
    "Environment",
    "E1",
    "E2",
    "SYNTHETIC",
    "environment",
    # sessions / campaigns / sounding / fpga
    "NetworkSession",
    "SessionReport",
    "NetworkCampaign",
    "NetworkCampaignResult",
    "run_campaign",
    "bm_reporting_delay",
    "simulate_sounding",
    "SoundingCampaign",
    "feedback_overhead_rate_bps",
    "table3_latency_s",
    "splitbeam_latency_s",
    # runtime orchestration
    "CheckpointStore",
    "ExperimentEngine",
    "ResultCache",
    "Scenario",
    "TrainingGrid",
    "NetworkCampaignSpec",
    "get_scenario",
    "get_training_grid",
    "get_campaign",
    "scenario_names",
    "training_grid_names",
    "campaign_names",
]
