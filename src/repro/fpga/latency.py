"""Cycle-accurate-enough FPGA latency model for SplitBeam DNNs.

The paper synthesizes its networks on a Zynq UltraScale+ XCZU9EG at a
200 MHz clock via a custom HLS library and reports end-to-end latencies
in Table III.  We cannot run Vivado offline, so we model the synthesized
design as a MAC engine with a fixed sustained throughput:

``latency = ceil(total MACs / macs_per_cycle) / clock + pipeline_depth / clock``

**Calibration:** fitting ``macs_per_cycle`` against the paper's own
Table III (twelve (MIMO, bandwidth) cells, K = 1/4 two-weight-layer
models ``[2*Nt*S, Nt*S/2, 2*Nt*S]``) gives 6.30 MACs/cycle with a
maximum relative error under 3% across all cells — strong evidence this
is how the reported numbers scale.  The model therefore *reproduces*
Table III and extrapolates consistently to other architectures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.core.model import SplitBeamNet
from repro.phy.ofdm import band_plan

__all__ = [
    "FpgaTarget",
    "ZYNQ_ULTRASCALE_XCZU9EG",
    "model_latency_s",
    "splitbeam_latency_s",
    "table3_latency_s",
]


@dataclass(frozen=True)
class FpgaTarget:
    """A synthesis target: clock and sustained MAC throughput."""

    name: str
    clock_hz: float
    macs_per_cycle: float
    pipeline_depth_cycles: int = 64  # fill/drain overhead, sub-microsecond

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.macs_per_cycle <= 0:
            raise ConfigurationError("clock and throughput must be positive")


#: The paper's target (AD9361-aligned 200 MHz clock); throughput
#: calibrated against Table III (see module docstring).
ZYNQ_ULTRASCALE_XCZU9EG = FpgaTarget(
    name="Zynq UltraScale+ XCZU9EG @ 200 MHz",
    clock_hz=200e6,
    macs_per_cycle=6.30,
)


def model_latency_s(
    macs: int, target: FpgaTarget = ZYNQ_ULTRASCALE_XCZU9EG
) -> float:
    """Latency of executing ``macs`` multiply-accumulates on ``target``."""
    if macs < 0:
        raise ConfigurationError("macs must be non-negative")
    cycles = math.ceil(macs / target.macs_per_cycle) + target.pipeline_depth_cycles
    return cycles / target.clock_hz


def splitbeam_latency_s(
    model: SplitBeamNet, target: FpgaTarget = ZYNQ_ULTRASCALE_XCZU9EG
) -> float:
    """End-to-end (head + tail) inference latency of one SplitBeam model."""
    return model_latency_s(model.head_macs() + model.tail_macs(), target)


def table3_latency_s(
    n_tx: int,
    bandwidth_mhz: int,
    compression: float = 0.25,
    target: FpgaTarget = ZYNQ_ULTRASCALE_XCZU9EG,
) -> float:
    """Latency for one Table III cell.

    Table III uses the K = 1/4 two-weight-layer model on per-STA CSI
    (``D = 2 * Nt * S``): ``[D, D/4, D]``.
    """
    if n_tx < 1:
        raise ConfigurationError("n_tx must be >= 1")
    if not 0 < compression <= 1:
        raise ConfigurationError("compression must be in (0, 1]")
    d = 2 * n_tx * band_plan(bandwidth_mhz).n_subcarriers
    bottleneck = max(1, round(compression * d))
    macs = d * bottleneck + bottleneck * d
    return model_latency_s(macs, target)
