"""FPGA latency model (substitute for the paper's HLS synthesis)."""

from repro.fpga.latency import (
    FpgaTarget,
    ZYNQ_ULTRASCALE_XCZU9EG,
    model_latency_s,
    splitbeam_latency_s,
    table3_latency_s,
)

__all__ = [
    "FpgaTarget",
    "ZYNQ_ULTRASCALE_XCZU9EG",
    "model_latency_s",
    "splitbeam_latency_s",
    "table3_latency_s",
]
