"""Configuration for the determinism & concurrency linter.

Every rule reads its knobs from one :class:`LintConfig` instance so the
fixture tests can point the analyzer at synthetic projects (different
task-root modules, different sanctioned env module) without touching
the defaults the CLI enforces on the real tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fully-qualified external calls that are nondeterministic per se:
#: wall clocks, entropy sources, and process identity.
NONDET_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getpid",
        "os.getppid",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.choice",
    }
)

#: Module prefixes whose *module-level* functions draw from hidden
#: global RNG state.  Seeded constructors are explicitly allowed.
NONDET_PREFIXES = ("numpy.random.", "random.")

#: Names under the nondet prefixes that are deterministic when seeded
#: (constructing a generator is fine; drawing from the global one is not).
NONDET_PREFIX_ALLOWED = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.BitGenerator",
        "random.Random",
    }
)

#: Builtins whose value depends on process identity or PYTHONHASHSEED.
NONDET_BUILTINS = frozenset({"id", "hash"})

#: Dict keys that are cosmetic/display-only and must never feed a
#: content address (REP-HASH-INPUT).
COSMETIC_KEYS = frozenset(
    {"name", "label", "title", "description", "display_name", "comment", "note"}
)

#: Attribute-name conventions marking per-instance transient caches
#: that ``__getstate__`` must strip before a class ships over IPC.
TRANSIENT_PREFIXES = ("_cached", "_cache", "_scratch", "_memo", "_tmp")
TRANSIENT_EXACT = frozenset({"_mask"})

#: Substrings identifying a lock-ish name (case-insensitive).
LOCK_NAME_HINTS = ("lock", "mutex", "guard")

#: Method attributes registering a completion callback that will run on
#: an executor/coordinator thread (thread-escape seed discovery).
CALLBACK_REGISTER_ATTRS = frozenset({"add_done_callback"})

#: Method attributes handing a callable to a worker pool (runs in its
#: own process under ProcessPoolExecutor: worker-local, not shared).
WORKER_SUBMIT_ATTRS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply_async", "map_async"}
)

#: Constructors that spawn a coordinator-side thread around a callable.
THREAD_FACTORIES = frozenset({"threading.Thread", "threading.Timer"})

#: External calls producing an iteration order that varies run to run
#: (filesystem enumeration); iterating them while accumulating floats
#: is the REP-REDUCTION-ORDER bug family.
UNORDERED_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Method attributes with the same property (``Path.iterdir``).
UNORDERED_ATTRS = frozenset({"iterdir", "glob", "rglob"})

#: Order-independent accumulators (exact float summation).
ORDER_SAFE_CALLS = frozenset({"math.fsum"})


@dataclass
class LintConfig:
    """All repo-specific knobs the rules consult."""

    #: Modules whose ``__all__`` functions are the task roots REP-NONDET
    #: walks the call graph from.
    task_root_modules: tuple[str, ...] = ("repro.runtime.tasks",)

    #: Explicit extra root functions (fully qualified), mainly for tests.
    task_root_functions: tuple[str, ...] = ()

    #: The only modules allowed to touch ``os.environ`` (REP-ENV-READ).
    sanctioned_env_modules: tuple[str, ...] = ("repro.runtime.knobs",)

    #: Base classes whose subclasses ship through ``PayloadStore``/IPC
    #: (REP-GETSTATE-CACHE walks project subclasses of these).
    shipped_bases: tuple[str, ...] = (
        "repro.nn.module.Module",
        "repro.nn.module.Parameter",
    )

    #: Additional shipped classes that do not subclass a shipped base.
    shipped_classes: tuple[str, ...] = (
        "repro.standard.quantization.BottleneckQuantizer",
    )

    #: Functions whose first argument is hashed into a content address
    #: (REP-HASH-INPUT inspects their spec arguments; REP-KEY-COVERAGE
    #: anchors root/key-builder binding inference on their call sites).
    key_functions: tuple[str, ...] = (
        "repro.runtime.hashing.task_key",
        "repro.runtime.hashing.canonical_json",
    )

    #: Task-constructor classes: a function that calls ``task_key`` and
    #: builds one of these with ``fn=<"module:function">`` in the same
    #: body binds that task root to the key-spec builder
    #: (REP-KEY-COVERAGE inference).
    task_constructors: tuple[str, ...] = ("repro.runtime.executor.Task",)

    #: Explicit (task_root_fq, key_builder_fq) bindings for roots the
    #: planner-site inference cannot see; an empty builder means the
    #: spec is hashed as-is.  Mainly for fixtures.
    key_bindings: tuple[tuple[str, str], ...] = ()

    #: Modules whose module-level mutable state is known to be touched
    #: from executor callback threads even when the module itself does
    #: not declare a lock (REP-UNLOCKED-GLOBAL treats these as
    #: thread-exposed).
    concurrent_modules: tuple[str, ...] = (
        "repro.perf.profile",
        "repro.obs.metrics",
        "repro.obs.trace",
        "repro.runtime.cache",
        "repro.runtime.checkpoints",
        "repro.runtime.payloads",
        "repro.runtime.executor",
        "repro.runtime.faults",
    )

    nondet_calls: frozenset = field(default_factory=lambda: NONDET_CALLS)
    nondet_prefixes: tuple[str, ...] = NONDET_PREFIXES
    nondet_prefix_allowed: frozenset = field(
        default_factory=lambda: NONDET_PREFIX_ALLOWED
    )
    nondet_builtins: frozenset = field(default_factory=lambda: NONDET_BUILTINS)
    cosmetic_keys: frozenset = field(default_factory=lambda: COSMETIC_KEYS)
    transient_prefixes: tuple[str, ...] = TRANSIENT_PREFIXES
    transient_exact: frozenset = field(default_factory=lambda: TRANSIENT_EXACT)
    lock_name_hints: tuple[str, ...] = LOCK_NAME_HINTS
    callback_register_attrs: frozenset = field(
        default_factory=lambda: CALLBACK_REGISTER_ATTRS
    )
    worker_submit_attrs: frozenset = field(
        default_factory=lambda: WORKER_SUBMIT_ATTRS
    )
    thread_factories: frozenset = field(default_factory=lambda: THREAD_FACTORIES)
    unordered_calls: frozenset = field(default_factory=lambda: UNORDERED_CALLS)
    unordered_attrs: frozenset = field(default_factory=lambda: UNORDERED_ATTRS)
    order_safe_calls: frozenset = field(default_factory=lambda: ORDER_SAFE_CALLS)
