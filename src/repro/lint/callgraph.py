"""Best-effort call-graph construction and lightweight type inference.

Resolution is deliberately conservative: a call the analyzer cannot
attribute to a project function or a known external name is ignored
rather than guessed at.  That keeps findings precise (no speculative
noise) at the cost of missing exotic dispatch — acceptable for a linter
whose job is catching the boring, common ways determinism breaks.

What *is* modelled, because the runtime code actually uses it:

- plain calls and dotted calls through module imports (incl. aliases
  and imports that happen inside function bodies);
- ``self.method()`` through the project MRO, and ``super().method()``;
- ``obj.method()`` where ``obj`` is a local assigned from a project
  class constructor earlier in the function (``link = LinkSimulator(c);
  link.measure_ber(...)``);
- ``ClassName(args).method()`` chained constructor calls;
- constructor calls edge into ``__init__``;
- *indirect references*: a bare function or method passed as a call
  argument (``functools.partial(time.time)``, ``callback=self._on_done``,
  ``executor.submit(run_chunk, payload)``) records a call site — and a
  project edge — as if the reference were invoked, because callbacks
  eventually are.  Bare class references (``isinstance(x, LinkConfig)``)
  and locally-bound data names are excluded to keep the graph quiet.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

from repro.lint.scopes import (
    ClassInfo,
    FunctionInfo,
    ModuleScope,
    ScopeTable,
    dotted_name,
)


@dataclass
class CallSite:
    """One call expression inside a function."""

    caller: FunctionInfo
    node: ast.Call
    raw: str  # the dotted text as written, best effort
    target_fq: "str | None"  # fully-qualified resolution, None if unknown
    target_fn: "FunctionInfo | None"  # set when it lands on project code
    #: True when the target was *referenced* (passed as an argument,
    #: e.g. a callback) rather than called directly at this site.
    indirect: bool = False

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def col(self) -> int:
        return self.node.col_offset


def _locally_bound_names(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> "set[str]":
    """Names bound inside the function: params, assignments, nested defs.

    Used to keep indirect-reference resolution quiet: a local variable
    that shadows a module-level name must not resolve as a reference to
    the module-level thing.
    """
    args = node.args
    names = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
    for vararg in (args.vararg, args.kwarg):
        if vararg is not None:
            names.add(vararg.arg)
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            names.add(child.id)
        elif isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and child is not node:
            names.add(child.name)
        elif isinstance(child, ast.ExceptHandler) and child.name:
            names.add(child.name)
    return names


def annotation_classes(
    scopes: ScopeTable,
    scope: ModuleScope,
    ann: "ast.expr | None",
    local_imports: "dict[str, str] | None" = None,
) -> list[ClassInfo]:
    """Project classes named in a (possibly string / optional) annotation."""
    if ann is None:
        return []
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return []
    out: list[ClassInfo] = []
    for node in ast.walk(ann):
        name = dotted_name(node)
        if name is None or name in ("None", "Optional", "Union"):
            continue
        fq = scopes.resolve_in_module(scope, name, local_imports)
        if fq is None:
            continue
        cls = scopes.resolve_class(fq)
        if cls is not None:
            out.append(cls)
    return out


def local_class_bindings(
    scopes: ScopeTable, fn: FunctionInfo
) -> dict[str, ClassInfo]:
    """Locals (and parameters) known to hold instances of project classes."""
    scope = scopes.scope_of(fn.module)
    bindings: dict[str, ClassInfo] = {}

    args = fn.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        classes = annotation_classes(scopes, scope, arg.annotation, fn.local_imports)
        if len(classes) == 1:
            bindings[arg.arg] = classes[0]

    for node in ast.walk(fn.node):
        value: "ast.expr | None" = None
        target_name: "str | None" = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            if isinstance(node.targets[0], ast.Name):
                target_name = node.targets[0].id
                value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            target_name = node.target.id
            classes = annotation_classes(
                scopes, scope, node.annotation, fn.local_imports
            )
            if len(classes) == 1:
                bindings[target_name] = classes[0]
            value = node.value
        if target_name is None or value is None:
            continue
        cls = constructed_class(scopes, scope, fn, value)
        if cls is not None:
            bindings[target_name] = cls
    return bindings


def constructed_class(
    scopes: ScopeTable,
    scope: ModuleScope,
    fn: "FunctionInfo | None",
    value: ast.expr,
) -> "ClassInfo | None":
    """The project class ``value`` constructs, if it is a constructor call.

    Sees through ``X(...) if cond else None`` so optionally-held stores
    (`self.cache = ResultCache(root) if root else None`) still type.
    """
    if isinstance(value, ast.IfExp):
        return constructed_class(scopes, scope, fn, value.body) or constructed_class(
            scopes, scope, fn, value.orelse
        )
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    local_imports = fn.local_imports if fn is not None else None
    fq = scopes.resolve_in_module(scope, name, local_imports)
    if fq is None:
        return None
    return scopes.resolve_class(fq)


def class_attr_bindings(
    scopes: ScopeTable, cls: ClassInfo
) -> dict[str, ClassInfo]:
    """``self.X`` attributes known to hold project-class instances."""
    bindings: dict[str, ClassInfo] = {}
    for klass in reversed(scopes.mro(cls)):
        for method in klass.methods.values():
            param_types = local_class_bindings(scopes, method)
            for node in ast.walk(method.node):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                klass_scope = scopes.scope_of(klass.module)
                attr_cls = constructed_class(scopes, klass_scope, method, node.value)
                if attr_cls is None and isinstance(node.value, ast.Name):
                    attr_cls = param_types.get(node.value.id)
                if attr_cls is not None:
                    bindings[target.attr] = attr_cls
    return bindings


class CallGraph:
    """Call sites, project edges, and reachability over a project."""

    def __init__(self, scopes: ScopeTable) -> None:
        self.scopes = scopes
        #: caller fq -> list of CallSite
        self.calls: dict[str, list[CallSite]] = {}
        #: caller fq -> set of callee fq (project functions only)
        self.edges: dict[str, set[str]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        for scope in scopes.scopes.values():
            for fn in scope.functions.values():
                self.functions[fn.fq] = fn
        for fn in self.functions.values():
            self._analyze(fn)

    # -- construction -------------------------------------------------------

    def _analyze(self, fn: FunctionInfo) -> None:
        scope = self.scopes.scope_of(fn.module)
        bindings = local_class_bindings(self.scopes, fn)
        attr_bindings: dict[str, ClassInfo] = {}
        if fn.class_name is not None:
            own_cls = scope.classes.get(fn.class_name)
            if own_cls is not None:
                attr_bindings = class_attr_bindings(self.scopes, own_cls)
        local_names = _locally_bound_names(fn.node)
        sites: list[CallSite] = []
        edges: set[str] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            site = self._resolve_call(fn, scope, bindings, attr_bindings, node)
            if site is not None:
                sites.append(site)
                if site.target_fn is not None:
                    edges.add(site.target_fn.fq)
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                ref = self._resolve_reference(
                    fn, scope, bindings, local_names, node, arg
                )
                if ref is None:
                    continue
                sites.append(ref)
                if ref.target_fn is not None:
                    edges.add(ref.target_fn.fq)
        self.calls[fn.fq] = sites
        self.edges[fn.fq] = edges

    def _resolve_reference(
        self,
        fn: FunctionInfo,
        scope: ModuleScope,
        bindings: dict[str, ClassInfo],
        local_names: "set[str]",
        call_node: ast.Call,
        expr: ast.expr,
    ) -> "CallSite | None":
        """A bare function/method reference passed as a call argument.

        Treated as an (indirect) call site: callbacks handed to
        executors, threads, or ``functools.partial`` eventually run.
        """
        if not isinstance(expr, (ast.Name, ast.Attribute)):
            return None
        raw = dotted_name(expr)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")

        if head == "self" and fn.class_name is not None and rest and "." not in rest:
            own = scope.classes.get(fn.class_name)
            if own is not None:
                method = self.scopes.resolve_method(own, rest)
                if method is not None:
                    return CallSite(fn, call_node, raw, method.fq, method,
                                    indirect=True)
            return None
        if head in bindings and rest and "." not in rest:
            method = self.scopes.resolve_method(bindings[head], rest)
            if method is not None:
                return CallSite(fn, call_node, raw, method.fq, method,
                                indirect=True)
            return None
        if head in local_names:
            return None  # a local data variable, not a module-level name
        fq = self.scopes.resolve_in_module(scope, raw, fn.local_imports)
        if fq is None:
            return None
        if self.scopes.resolve_class(fq) is not None:
            return None  # bare class reference (isinstance, annotations, ...)
        target = self.scopes.resolve_function(fq)
        if target is not None:
            return CallSite(fn, call_node, raw, fq, target, indirect=True)
        imported = (
            head in fn.local_imports
            or head in scope.imports
            or fq.startswith("builtins.")
        )
        if imported:
            # external callable reference (time.time, np.random.rand, hash)
            return CallSite(fn, call_node, raw, fq, None, indirect=True)
        return None

    def _resolve_call(
        self,
        fn: FunctionInfo,
        scope: ModuleScope,
        bindings: dict[str, ClassInfo],
        attr_bindings: dict[str, ClassInfo],
        node: ast.Call,
    ) -> "CallSite | None":
        func = node.func
        raw = dotted_name(func)

        # ClassName(args).method(...) and super().method(...)
        if (
            raw is None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
        ):
            inner_name = dotted_name(func.value.func)
            if inner_name == "super" and fn.class_name is not None:
                own = scope.classes.get(fn.class_name)
                if own is not None:
                    for base_fq in own.base_names:
                        base = self.scopes.resolve_class(base_fq)
                        if base is not None:
                            method = self.scopes.resolve_method(base, func.attr)
                            if method is not None:
                                return CallSite(
                                    fn, node, f"super().{func.attr}",
                                    method.fq, method,
                                )
                return None
            if inner_name is not None:
                inner_cls = self._class_for(scope, fn, inner_name)
                if inner_cls is not None:
                    method = self.scopes.resolve_method(inner_cls, func.attr)
                    if method is not None:
                        return CallSite(
                            fn, node, f"{inner_name}().{func.attr}",
                            method.fq, method,
                        )
            return None
        if raw is None:
            return None

        head, _, rest = raw.partition(".")

        # self.method(...) / self.attr.method(...)
        if head == "self" and fn.class_name is not None:
            own = scope.classes.get(fn.class_name)
            if own is None or not rest:
                return None
            first, _, trailing = rest.partition(".")
            if not trailing:
                method = self.scopes.resolve_method(own, first)
                if method is not None:
                    return CallSite(fn, node, raw, method.fq, method)
                return CallSite(fn, node, raw, None, None)
            attr_cls = attr_bindings.get(first)
            if attr_cls is not None and "." not in trailing:
                method = self.scopes.resolve_method(attr_cls, trailing)
                if method is not None:
                    return CallSite(fn, node, raw, method.fq, method)
            return CallSite(fn, node, raw, None, None)

        # local = ProjectClass(...); local.method(...)
        if head in bindings and rest and "." not in rest:
            method = self.scopes.resolve_method(bindings[head], rest)
            if method is not None:
                return CallSite(fn, node, raw, method.fq, method)
            return CallSite(fn, node, raw, None, None)

        fq = self.scopes.resolve_in_module(scope, raw, fn.local_imports)
        if fq is None:
            return CallSite(fn, node, raw, None, None)
        target = self.scopes.resolve_function(fq)
        if target is not None:
            return CallSite(fn, node, raw, fq, target)
        return CallSite(fn, node, raw, fq, None)

    def _class_for(
        self, scope: ModuleScope, fn: FunctionInfo, name: str
    ) -> "ClassInfo | None":
        fq = self.scopes.resolve_in_module(scope, name, fn.local_imports)
        if fq is None:
            return None
        return self.scopes.resolve_class(fq)

    # -- queries ------------------------------------------------------------

    def reachable_from(
        self, roots: "list[str]"
    ) -> "dict[str, str | None]":
        """BFS over project edges: reachable fq -> predecessor fq."""
        predecessor: dict[str, "str | None"] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root in self.functions and root not in predecessor:
                predecessor[root] = None
                queue.append(root)
        while queue:
            current = queue.popleft()
            for callee in sorted(self.edges.get(current, ())):
                if callee not in predecessor:
                    predecessor[callee] = current
                    queue.append(callee)
        return predecessor

    def chain(
        self, predecessor: "dict[str, str | None]", fq: str
    ) -> list[str]:
        """Root-first path to ``fq`` recorded by :meth:`reachable_from`."""
        path = [fq]
        seen = {fq}
        while True:
            prev = predecessor.get(path[-1])
            if prev is None or prev in seen:
                break
            path.append(prev)
            seen.add(prev)
        return list(reversed(path))
