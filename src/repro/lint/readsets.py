"""Transitive read-set summaries propagated over the call graph.

The interprocedural half of the read-set engine: for each project
function it computes, per parameter, the set of field subtrees the
function (and everything it calls) may read.  Summaries are built on
demand, memoized, and stitched at call sites: when a tracked value
flows into a resolved project callee, the callee's summary for the
receiving parameter is re-rooted under the caller's field path.

Widening rules keep the analysis sound-by-default and bounded:

- a flow into an *unresolved* callee (external library, exotic
  dispatch) reads everything under the flowing path;
- a flow into ``*args``/``**kwargs`` or past the recursion depth bound
  reads everything under the flowing path;
- recursion cycles widen the same way instead of iterating to a fixed
  point — the runtime's task trees are DAGs, so precision only drops
  on code that was already exotic.

Witness locations survive propagation: a read reported at the task
root still points at the deep ``file:line`` where the field was
actually touched, and the owning function is recorded so rules can
render a call chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.callgraph import CallGraph
from repro.lint.dataflow import (
    MAX_EVENTS,
    MAX_PATH_DEPTH,
    ReadEvent,
    analyze_function,
    param_names,
)
from repro.lint.scopes import FunctionInfo

#: Maximum call-stack depth a summary may recurse through before the
#: remaining flow widens to "reads everything under this path".
MAX_SUMMARY_DEPTH = 16


@dataclass
class ReadSummary:
    """Per-parameter transitive read events for one function."""

    fn: FunctionInfo
    #: parameter name -> subtree read events (paths relative to it)
    by_param: dict[str, list[ReadEvent]]

    def events(self, param: str) -> "list[ReadEvent]":
        return self.by_param.get(param, [])


class ReadSetAnalysis:
    """Lazy, memoized read-set summaries over a project call graph."""

    def __init__(self, callgraph: CallGraph) -> None:
        self.callgraph = callgraph
        self._memo: dict[str, ReadSummary] = {}
        self._active: set[str] = set()

    def summary(self, fn: FunctionInfo) -> "ReadSummary | None":
        """The transitive read summary of ``fn`` (None while in-cycle)."""
        cached = self._memo.get(fn.fq)
        if cached is not None:
            return cached
        if fn.fq in self._active or len(self._active) >= MAX_SUMMARY_DEPTH:
            return None  # caller widens the flow instead
        self._active.add(fn.fq)
        try:
            summary = self._build(fn)
        finally:
            self._active.discard(fn.fq)
        self._memo[fn.fq] = summary
        return summary

    # -- construction -------------------------------------------------------

    def _build(self, fn: FunctionInfo) -> ReadSummary:
        access = analyze_function(fn)
        by_param: dict[str, list[ReadEvent]] = {}
        for event in access.reads:
            by_param.setdefault(event.param, []).append(event)

        site_by_node = {
            id(site.node): site
            for site in self.callgraph.calls.get(fn.fq, ())
            if not site.indirect  # args of this call resolve against the call
        }
        for flow in access.flows:
            widened = ReadEvent(
                param=flow.param,
                path=flow.path,
                module=fn.module.name,
                line=flow.line,
                col=flow.col,
                fn_fq=fn.fq,
            )
            site = site_by_node.get(id(flow.node))
            callee = site.target_fn if site is not None else None
            if callee is None:
                by_param.setdefault(flow.param, []).append(widened)
                continue
            callee_summary = self.summary(callee)
            if callee_summary is None:
                by_param.setdefault(flow.param, []).append(widened)
                continue
            receiver = _receiving_param(callee, flow.arg_index, flow.keyword)
            if receiver is None:
                by_param.setdefault(flow.param, []).append(widened)
                continue
            events = callee_summary.events(receiver)
            if not events:
                continue
            bucket = by_param.setdefault(flow.param, [])
            for event in events:
                path = (flow.path + event.path)[:MAX_PATH_DEPTH]
                bucket.append(
                    ReadEvent(
                        param=flow.param,
                        path=path,
                        module=event.module,
                        line=event.line,
                        col=event.col,
                        fn_fq=event.fn_fq,
                    )
                )

        for param, events in by_param.items():
            deduped = _dedupe(events)
            if len(deduped) > MAX_EVENTS:
                first = deduped[0]
                deduped = [
                    ReadEvent(param, (), first.module, first.line,
                              first.col, first.fn_fq)
                ]
            by_param[param] = deduped
        return ReadSummary(fn=fn, by_param=by_param)


def _receiving_param(
    callee: FunctionInfo, arg_index: "int | None", keyword: "str | None"
) -> "str | None":
    """Which of ``callee``'s parameters a call argument lands on."""
    names = param_names(callee.node)
    if keyword is not None:
        return keyword if keyword in names else None
    if arg_index is None:
        return None
    index = arg_index
    if names and names[0] in ("self", "cls"):
        index += 1  # bound method / constructor call: skip the receiver
    positional = len(callee.node.args.posonlyargs) + len(callee.node.args.args)
    if index < positional:
        return names[index]
    return None  # lands on *args — caller widens


def _dedupe(events: "list[ReadEvent]") -> "list[ReadEvent]":
    """Drop events subsumed by a shorter (wider) path on the same param.

    Keeps the first witness per surviving path, in a deterministic
    (path, location) order.
    """
    ordered = sorted(events, key=lambda e: (e.path, e.module, e.line, e.col))
    kept: list[ReadEvent] = []
    seen_paths: list[tuple[str, ...]] = []
    seen_exact: set[tuple[str, ...]] = set()
    for event in ordered:
        if event.path in seen_exact:
            continue
        if any(event.path[: len(p)] == p for p in seen_paths):
            continue  # a recorded prefix already reads this subtree
        seen_exact.add(event.path)
        seen_paths.append(event.path)
        kept.append(event)
    return kept
