"""Module discovery and parsing for the linter.

A :class:`Project` is a set of parsed source modules keyed by dotted
module name.  Discovery never imports anything — analysis is pure AST,
so the linter can safely chew on code whose import-time side effects
(or missing optional dependencies) would make ``importlib`` hazardous.

Suppression comments are extracted here too: ``# repro: allow[RULE]``
on a line suppresses findings of that rule on the same line; a comment
that has the whole line to itself covers the following line instead.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-,\s*]+)\]")


class LintUsageError(Exception):
    """Bad CLI input: missing paths, unparseable files, unknown rules."""


@dataclass
class SourceModule:
    """One parsed source file."""

    name: str  # dotted module name, e.g. "repro.runtime.tasks"
    path: Path
    source: str
    tree: ast.Module
    #: True for ``__init__.py`` (affects relative-import resolution).
    is_package: bool = False
    #: line number -> set of rule codes suppressed there ("*" = all)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    def line_text(self, lineno: int) -> str:
        lines = self.lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""

    def is_suppressed(self, rule: str, lineno: int) -> bool:
        codes = self.suppressions.get(lineno)
        if not codes:
            return False
        return "*" in codes or rule in codes


def _extract_suppressions(source: str) -> dict[int, set[str]]:
    """Map line numbers to the rule codes allowed on them.

    Uses ``tokenize`` so comment-looking text inside strings is never
    misread.  A comment-only line forwards its allowance to the next
    line, which keeps long statements suppressible without trailing
    100-column comments.
    """
    out: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    code_lines = {
        tok.start[0]
        for tok in tokens
        if tok.type
        not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        )
    }
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        codes = {part.strip() for part in match.group(1).split(",") if part.strip()}
        line = tok.start[0]
        target = line if line in code_lines else line + 1
        out.setdefault(target, set()).update(codes)
    return out


def load_source(path: Path, module_name: str) -> SourceModule:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintUsageError(f"{path}: cannot parse: {exc}") from exc
    return SourceModule(
        name=module_name,
        path=path,
        source=source,
        tree=tree,
        is_package=path.name == "__init__.py",
        suppressions=_extract_suppressions(source),
    )


def _module_name(py_file: Path, package_root: Path) -> str:
    """Dotted module name of ``py_file`` under ``package_root``'s parent."""
    rel = py_file.relative_to(package_root.parent)
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _find_package_roots(path: Path) -> list[Path]:
    """Top-level package directories reachable from ``path``.

    ``path`` may be a package itself, a directory of packages (``src/``),
    or a plain directory of scripts (each file becomes its own module).
    """
    if (path / "__init__.py").exists():
        return [path]
    roots = [
        child
        for child in sorted(path.iterdir())
        if child.is_dir() and (child / "__init__.py").exists()
    ]
    return roots


@dataclass
class Project:
    """Every module the linter can see, keyed by dotted name."""

    modules: dict[str, SourceModule] = field(default_factory=dict)

    def get(self, name: str) -> "SourceModule | None":
        return self.modules.get(name)

    def __iter__(self):
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)

    def sorted_modules(self) -> "list[SourceModule]":
        return [self.modules[name] for name in sorted(self.modules)]


def load_project(paths: "list[str | Path]") -> Project:
    """Discover and parse every module under the given paths."""
    project = Project()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintUsageError(f"path does not exist: {path}")
        if path.is_file():
            if path.suffix != ".py":
                raise LintUsageError(f"not a python file: {path}")
            mod = load_source(path, path.stem)
            project.modules[mod.name] = mod
            continue
        package_roots = _find_package_roots(path)
        if package_roots:
            for root in package_roots:
                for py_file in sorted(root.rglob("*.py")):
                    if "__pycache__" in py_file.parts:
                        continue
                    mod = load_source(py_file, _module_name(py_file, root))
                    project.modules[mod.name] = mod
        else:
            for py_file in sorted(path.glob("*.py")):
                mod = load_source(py_file, py_file.stem)
                project.modules[mod.name] = mod
    if not project.modules:
        raise LintUsageError(f"no python modules found under: {', '.join(map(str, paths))}")
    return project
