"""``repro.lint``: the determinism & concurrency linter.

An AST/call-graph static-analysis pass that mechanically enforces the
runtime's bit-identity contract (see ``docs/runtime.md`` "Determinism
guarantees" and ``docs/static-analysis.md`` for the rule catalog):

==================  ====================================================
``REP-NONDET``       nondeterminism sources (wall clocks, entropy,
                     global RNGs, ``id()``/``hash()``) reachable from
                     registered runtime task functions
``REP-FALSY-STORE``  truthiness tests on ``__len__``-bearing objects
                     where identity is meant (the PR 7 bug family)
``REP-UNLOCKED-GLOBAL``  unguarded mutation of module-level shared
                     state in thread-exposed modules
``REP-ENV-READ``     ``os.environ`` access outside ``runtime/knobs.py``
``REP-GETSTATE-CACHE``  shipped classes whose ``__getstate__`` leaks
                     transient cache attributes
``REP-HASH-INPUT``   cosmetic/display fields feeding content addresses
``REP-KEY-COVERAGE``  spec fields a task reads but its ``task_key``
                     builder never hashes (stale-cache hazard), via
                     interprocedural read-set summaries
``REP-PURE-TASK``    task-reachable reads of module-level mutable
                     state that another function mutates
``REP-THREAD-ESCAPE``  unguarded mutation on inferred callback-shared
                     paths (``add_done_callback``/``Thread(target=)``)
``REP-REDUCTION-ORDER``  float accumulation over sets/``os.listdir``
                     orderings reachable from task roots
==================  ====================================================

Usage::

    python -m repro.lint src/                  # lint, exit 1 on findings
    python -m repro.lint src/ --format json
    python -m repro.lint src/ --write-baseline # grandfather current findings

Inline suppression: ``# repro: allow[REP-NONDET]`` on (or immediately
above) the flagged line.
"""

from repro.lint.config import LintConfig
from repro.lint.findings import Baseline, Finding
from repro.lint.loader import LintUsageError, Project, load_project
from repro.lint.report import LintResult, render_json, render_text
from repro.lint.rules import RULES
from repro.lint.runner import run_lint

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "LintUsageError",
    "Project",
    "RULES",
    "load_project",
    "render_json",
    "render_text",
    "run_lint",
]
