"""Per-function def-use chains with field-sensitive access tracking.

This is the intraprocedural half of the read-set engine (the
interprocedural half lives in :mod:`repro.lint.readsets`).  For one
function it answers: *which fields of which parameters does this body
touch, and where do parameter-derived values flow into other calls?*

Field paths are tracked through the access idioms the runtime actually
uses — ``params["fidelity"]``, ``params.get("link", {})``, attribute
access (``spec.foo``), shallow copies (``dict(params)``), and local
aliases (``train = params["train"]`` followed by ``train["seed"]``).

Every recorded read is a *subtree* read: once a tracked value is
consumed by something the analyzer cannot see into (an external call,
iteration, a comparison, a return), everything under its path counts as
read.  That is the widening the issue calls "reads everything": sound
by default, and bounded — paths are capped at :data:`MAX_PATH_DEPTH`
segments and a parameter whose event list exceeds :data:`MAX_EVENTS`
collapses to a single root read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.scopes import FunctionInfo

#: Longest tracked field path; deeper accesses widen to their prefix.
MAX_PATH_DEPTH = 6

#: Per-parameter event cap; beyond it the read-set widens to the root.
MAX_EVENTS = 200

#: Mapping methods that navigate to a single field when the key is a
#: string literal (``params.get("link", {})``).
_GETTER_METHODS = frozenset({"get"})

#: Shallow-copy calls that alias rather than consume their argument.
_COPY_CALLS = frozenset({"dict"})


@dataclass(frozen=True)
class Access:
    """A tracked binding: which parameter, at which field path."""

    param: str
    path: tuple[str, ...]

    def extend(self, segment: str) -> "Access":
        if len(self.path) >= MAX_PATH_DEPTH:
            return self  # widen: deeper access collapses onto the prefix
        return Access(self.param, self.path + (segment,))


@dataclass(frozen=True)
class ReadEvent:
    """One subtree read of a parameter field, with its witness site."""

    param: str
    path: tuple[str, ...]
    module: str
    line: int
    col: int
    fn_fq: str


@dataclass(frozen=True)
class CallFlow:
    """A tracked value passed into a call (argument position recorded)."""

    param: str
    path: tuple[str, ...]
    node: ast.Call
    arg_index: "int | None"  # positional index as written, None for keyword
    keyword: "str | None"
    line: int
    col: int


@dataclass
class FunctionAccess:
    """Everything one function does with its parameters."""

    fn: FunctionInfo
    reads: list[ReadEvent] = field(default_factory=list)
    flows: list[CallFlow] = field(default_factory=list)


def param_names(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> list[str]:
    """Positional parameter names in call order (kwonly appended)."""
    args = node.args
    return [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


def analyze_function(fn: FunctionInfo) -> FunctionAccess:
    """Collect field reads and outgoing flows for every parameter."""
    return _Collector(fn).run()


class _Collector:
    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.out = FunctionAccess(fn=fn)
        self.env: dict[str, Access] = {}
        args = fn.node.args
        names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
        for name in names:
            if name in ("self", "cls"):
                continue
            self.env[name] = Access(name, ())

    def run(self) -> FunctionAccess:
        for stmt in self.fn.node.body:
            self._stmt(stmt)
        self._cap()
        return self.out

    def _cap(self) -> None:
        by_param: dict[str, int] = {}
        for event in self.out.reads:
            by_param[event.param] = by_param.get(event.param, 0) + 1
        widened = {param for param, n in by_param.items() if n > MAX_EVENTS}
        if not widened:
            return
        kept = [e for e in self.out.reads if e.param not in widened]
        for param in sorted(widened):
            first = next(e for e in self.out.reads if e.param == param)
            kept.append(
                ReadEvent(param, (), first.module, first.line, first.col, first.fn_fq)
            )
        self.out.reads = kept

    # -- recording ----------------------------------------------------------

    def _read(self, access: Access, node: ast.AST) -> None:
        self.out.reads.append(
            ReadEvent(
                param=access.param,
                path=access.path,
                module=self.fn.module.name,
                line=getattr(node, "lineno", self.fn.node.lineno),
                col=getattr(node, "col_offset", 0),
                fn_fq=self.fn.fq,
            )
        )

    # -- navigation (no read recorded) --------------------------------------

    def _ref(self, expr: "ast.expr | None") -> "Access | None":
        """The tracked access ``expr`` denotes, if it is pure navigation."""
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Subscript):
            base = self._ref(expr.value)
            if base is None:
                return None
            key = expr.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                return base.extend(key.value)
            return None
        if isinstance(expr, ast.Attribute):
            base = self._ref(expr.value)
            if base is None or expr.attr.startswith("__"):
                return None
            return base.extend(expr.attr)
        if isinstance(expr, ast.Call):
            func = expr.func
            # dict(X) / dict(X, extra=...) is a shallow copy: same fields.
            if (
                isinstance(func, ast.Name)
                and func.id in _COPY_CALLS
                and expr.args
                and not isinstance(expr.args[0], ast.Starred)
            ):
                return self._ref(expr.args[0])
            # X.get("field"[, default]) navigates to one field.
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _GETTER_METHODS
                and expr.args
                and isinstance(expr.args[0], ast.Constant)
                and isinstance(expr.args[0].value, str)
                and len(expr.args) <= 2
            ):
                base = self._ref(func.value)
                if base is not None:
                    return base.extend(expr.args[0].value)
        return None

    # -- statements ----------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._consume(stmt.value)
            self._consume(stmt.target)
        elif isinstance(stmt, ast.Return):
            self._consume(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._consume(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._consume(stmt.test)
            for child in [*stmt.body, *stmt.orelse]:
                self._stmt(child)
        elif isinstance(stmt, ast.For):
            self._consume(stmt.iter)
            self._unbind(stmt.target)
            for child in [*stmt.body, *stmt.orelse]:
                self._stmt(child)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._consume(item.context_expr)
            for child in stmt.body:
                self._stmt(child)
        elif isinstance(stmt, ast.Try):
            for child in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                self._stmt(child)
            for handler in stmt.handlers:
                for child in handler.body:
                    self._stmt(child)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._consume(value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._consume(target)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested definitions are analyzed as their own functions
        elif isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Pass, ast.Global,
                               ast.Nonlocal, ast.Break, ast.Continue)):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._consume(child)
                elif isinstance(child, ast.stmt):
                    self._stmt(child)

    def _assign(self, targets: "list[ast.expr]", value: ast.expr) -> None:
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            ref = self._ref(value)
            if ref is not None:
                self.env[targets[0].id] = ref
                return
            self._consume(value)
            self.env.pop(targets[0].id, None)
            return
        self._consume(value)
        for target in targets:
            self._unbind(target)
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._consume(target.value)

    def _unbind(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._unbind(element)

    # -- expressions ----------------------------------------------------------

    def _consume(self, expr: "ast.expr | None") -> None:
        """Record the reads a used expression implies."""
        if expr is None:
            return
        ref = self._ref(expr)
        if ref is not None:
            self._read(ref, expr)
            return
        if isinstance(expr, ast.Call):
            self._consume_call(expr)
            return
        if isinstance(expr, ast.Subscript):
            base = self._ref(expr.value)
            if base is not None:
                # dynamic key: the whole mapping may be read
                self._read(base, expr)
            else:
                self._consume(expr.value)
            self._consume(expr.slice)
            return
        if isinstance(expr, ast.Starred):
            self._consume(expr.value)
            return
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in expr.generators:
                self._consume(gen.iter)
                self._unbind(gen.target)
                for cond in gen.ifs:
                    self._consume(cond)
            if isinstance(expr, ast.DictComp):
                self._consume(expr.key)
                self._consume(expr.value)
            else:
                self._consume(expr.elt)
            return
        if isinstance(expr, ast.Lambda):
            self._consume(expr.body)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._consume(child)

    def _consume_call(self, call: ast.Call) -> None:
        func = call.func
        handled_args: set[int] = set()
        if isinstance(func, ast.Attribute):
            base = self._ref(func.value)
            if base is not None:
                if (
                    func.attr in _GETTER_METHODS
                    and call.args
                    and isinstance(call.args[0], ast.Constant)
                    and isinstance(call.args[0].value, str)
                ):
                    # consumed `.get("k")`: reads just that field
                    self._read(base.extend(call.args[0].value), call)
                    handled_args.add(0)
                else:
                    # .items()/.keys()/unknown method: reads the mapping
                    self._read(base, call)
            else:
                self._consume(func.value)
        else:
            fref = self._ref(func)
            if fref is not None:
                self._read(fref, call)  # calling a tracked value
            elif not isinstance(func, ast.Name):
                self._consume(func)

        for index, arg in enumerate(call.args):
            if index in handled_args:
                continue
            if isinstance(arg, ast.Starred):
                inner = self._ref(arg.value)
                if inner is not None:
                    self._read(inner, arg)
                else:
                    self._consume(arg.value)
                continue
            ref = self._ref(arg)
            if ref is not None:
                self.out.flows.append(
                    CallFlow(
                        param=ref.param,
                        path=ref.path,
                        node=call,
                        arg_index=index,
                        keyword=None,
                        line=arg.lineno,
                        col=arg.col_offset,
                    )
                )
            else:
                self._consume(arg)
        for kw in call.keywords:
            ref = self._ref(kw.value)
            if kw.arg is None:  # **spread: every field escapes
                if ref is not None:
                    self._read(ref, kw.value)
                else:
                    self._consume(kw.value)
                continue
            if ref is not None:
                self.out.flows.append(
                    CallFlow(
                        param=ref.param,
                        path=ref.path,
                        node=call,
                        arg_index=None,
                        keyword=kw.arg,
                        line=kw.value.lineno,
                        col=kw.value.col_offset,
                    )
                )
            else:
                self._consume(kw.value)
