"""Per-module symbol tables and cross-module name resolution.

The linter needs just enough scope modelling to answer three questions
without importing anything:

1. What fully-qualified thing does the dotted name ``np.random.rand``
   (or ``LinkSimulator``) refer to in this module/function?
2. Which function or class does a fully-qualified name land on,
   following re-export chains (``repro.runtime.hashing.state_digest``
   is really ``repro.nn.serialize.state_digest``)?
3. What classes/types can a local variable, parameter, or ``self``
   attribute hold (tracked only for project classes, from constructor
   calls and annotations)?
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

from repro.lint.loader import Project, SourceModule

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass
class FunctionInfo:
    """One function or method definition."""

    module: SourceModule
    qualname: str  # "fn" or "Class.method" or "outer.inner"
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    class_name: "str | None" = None  # owning class, for methods
    #: imports that happen inside the function body
    local_imports: dict[str, str] = field(default_factory=dict)

    @property
    def fq(self) -> str:
        return f"{self.module.name}.{self.qualname}"


@dataclass
class ClassInfo:
    """One class definition with resolved project bases."""

    module: SourceModule
    name: str
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)  # fully qualified
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def fq(self) -> str:
        return f"{self.module.name}.{self.name}"


@dataclass
class ModuleScope:
    """Symbol table for one module."""

    module: SourceModule
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: top-level Name = <expr> assignments
    module_assigns: dict[str, ast.expr] = field(default_factory=dict)
    #: names exported via a literal ``__all__``
    dunder_all: list[str] = field(default_factory=list)


def _relative_base(module: SourceModule, level: int) -> str:
    """Package prefix a level-``level`` relative import resolves against."""
    parts = module.name.split(".")
    if not module.is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:-drop] if drop < len(parts) else []
    return ".".join(parts)


def _collect_imports(
    module: SourceModule, body: "list[ast.stmt]", out: dict[str, str]
) -> None:
    for stmt in body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                out[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                base = _relative_base(module, stmt.level)
                prefix = f"{base}.{stmt.module}" if stmt.module else base
            else:
                prefix = stmt.module or ""
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out[local] = f"{prefix}.{alias.name}" if prefix else alias.name


def dotted_name(expr: ast.expr) -> "str | None":
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _body_stmts(node) -> "list[ast.stmt]":
    """All statements inside a function, including nested blocks."""
    out: list[ast.stmt] = []
    stack = list(node.body)
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        for child_field in ("body", "orelse", "finalbody"):
            out.extend(getattr(stmt, child_field, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            out.extend(handler.body)
    return out


class ScopeTable:
    """Symbol tables for every module plus cross-module resolution."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.scopes: dict[str, ModuleScope] = {}
        for module in project:
            self.scopes[module.name] = self._build(module)

    # -- construction -------------------------------------------------------

    def _build(self, module: SourceModule) -> ModuleScope:
        scope = ModuleScope(module=module)
        _collect_imports(module, module.tree.body, scope.imports)
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(scope, stmt, prefix="", class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(scope, stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        scope.module_assigns[target.id] = stmt.value
                        if target.id == "__all__":
                            scope.dunder_all = _literal_str_list(stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    scope.module_assigns[stmt.target.id] = stmt.value
        return scope

    def _add_function(
        self,
        scope: ModuleScope,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        prefix: str,
        class_name: "str | None",
    ) -> None:
        qualname = f"{prefix}{node.name}"
        info = FunctionInfo(
            module=scope.module,
            qualname=qualname,
            node=node,
            class_name=class_name,
        )
        _collect_imports(scope.module, _body_stmts(node), info.local_imports)
        scope.functions[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(
                    scope, stmt, prefix=f"{qualname}.", class_name=class_name
                )

    def _add_class(self, scope: ModuleScope, node: ast.ClassDef) -> None:
        info = ClassInfo(module=scope.module, name=node.name, node=node)
        for base in node.bases:
            name = dotted_name(base)
            if name is not None:
                resolved = self.resolve_in_module(scope, name)
                if resolved is not None:
                    info.base_names.append(resolved)
        scope.classes[node.name] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(
                    scope, stmt, prefix=f"{node.name}.", class_name=node.name
                )
                info.methods[stmt.name] = scope.functions[f"{node.name}.{stmt.name}"]

    # -- resolution ---------------------------------------------------------

    def scope_of(self, module: SourceModule) -> ModuleScope:
        return self.scopes[module.name]

    def resolve_in_module(
        self,
        scope: ModuleScope,
        dotted: str,
        local_imports: "dict[str, str] | None" = None,
    ) -> "str | None":
        """Fully qualify ``dotted`` as used inside ``scope``'s module.

        Resolution order: function-local imports, module imports,
        module-level defs, builtins.  Unknown names resolve to None.
        """
        head, _, rest = dotted.partition(".")
        target: "str | None" = None
        if local_imports and head in local_imports:
            target = local_imports[head]
        elif head in scope.imports:
            target = scope.imports[head]
        elif head in scope.functions or head in scope.classes:
            target = f"{scope.module.name}.{head}"
        elif head in scope.module_assigns:
            target = f"{scope.module.name}.{head}"
        elif head in _BUILTIN_NAMES:
            target = f"builtins.{head}"
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def split_module_prefix(
        self, fq: str
    ) -> "tuple[ModuleScope, str] | None":
        """Split ``fq`` into (owning module scope, remainder)."""
        parts = fq.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            if mod_name in self.scopes:
                return self.scopes[mod_name], ".".join(parts[cut:])
        return None

    def resolve_function(
        self, fq: str, _seen: "frozenset[str]" = frozenset()
    ) -> "FunctionInfo | None":
        """The project function a fully-qualified name lands on.

        Follows one-hop re-exports (``from x import f`` then importing
        ``module.f``) with cycle protection.
        """
        if fq in _seen:
            return None
        split = self.split_module_prefix(fq)
        if split is None:
            return None
        scope, remainder = split
        if not remainder:
            return None
        if remainder in scope.functions:
            return scope.functions[remainder]
        head, _, rest = remainder.partition(".")
        if head in scope.classes:
            cls = scope.classes[head]
            if rest:
                return self.resolve_method(cls, rest)
            init = self.resolve_method(cls, "__init__")
            return init
        if head in scope.imports:
            re_exported = scope.imports[head] + (f".{rest}" if rest else "")
            return self.resolve_function(re_exported, _seen | {fq})
        return None

    def resolve_class(
        self, fq: str, _seen: "frozenset[str]" = frozenset()
    ) -> "ClassInfo | None":
        if fq in _seen:
            return None
        split = self.split_module_prefix(fq)
        if split is None:
            return None
        scope, remainder = split
        if remainder in scope.classes:
            return scope.classes[remainder]
        if remainder in scope.imports:
            return self.resolve_class(scope.imports[remainder], _seen | {fq})
        return None

    def mro(self, cls: ClassInfo) -> "list[ClassInfo]":
        """The class plus its project base classes, nearest first."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.fq in seen:
                continue
            seen.add(current.fq)
            out.append(current)
            for base_fq in current.base_names:
                base = self.resolve_class(base_fq)
                if base is not None:
                    stack.append(base)
        return out

    def resolve_method(self, cls: ClassInfo, name: str) -> "FunctionInfo | None":
        for klass in self.mro(cls):
            if name in klass.methods:
                return klass.methods[name]
        return None

    def subclasses_of(self, base_fqs: "set[str]") -> "list[ClassInfo]":
        """Every project class whose MRO intersects ``base_fqs``."""
        out: list[ClassInfo] = []
        for scope in self.scopes.values():
            for cls in scope.classes.values():
                mro_fqs = {klass.fq for klass in self.mro(cls)}
                if mro_fqs & base_fqs:
                    out.append(cls)
        return out


def _literal_str_list(expr: ast.expr) -> list[str]:
    if not isinstance(expr, (ast.List, ast.Tuple)):
        return []
    out = []
    for element in expr.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            out.append(element.value)
    return out
