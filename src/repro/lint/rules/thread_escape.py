"""REP-THREAD-ESCAPE: unguarded mutation on a callback-shared path.

Unlike REP-UNLOCKED-GLOBAL — which only watches modules that *declare*
a lock or are hand-listed as concurrent — this rule infers sharing from
the code itself.  Any function reachable from a callable registered as
a completion callback (``future.add_done_callback(f)``) or handed to a
coordinator-side thread (``threading.Thread(target=f)``) runs
concurrently with the coordinator, so its mutations of module-level
containers and ``self.<attr>`` state race unless a lock is held.  See
:mod:`repro.lint.escape` for the lattice.

No module lists, no lock declaration required: deleting the ``with
self._lock:`` around a sweep that runs in a done-callback re-surfaces
the finding from inference alone.
"""

from __future__ import annotations

from repro.lint.escape import build_escape_lattice
from repro.lint.findings import Finding, make_finding
from repro.lint.mutations import ModuleFacts, walk_mutations
from repro.lint.rules.base import LintContext, Rule, register


@register
class ThreadEscapeRule(Rule):
    code = "REP-THREAD-ESCAPE"
    summary = "callback-shared code mutates shared state without a lock"

    def run(self, ctx: LintContext) -> "list[Finding]":
        graph = ctx.callgraph
        lattice = build_escape_lattice(graph, ctx.config)
        if not lattice.callback_shared:
            return []
        facts_cache: dict[str, ModuleFacts] = {}
        findings: list[Finding] = []
        for fq in sorted(lattice.callback_shared):
            fn = graph.functions.get(fq)
            if fn is None:
                continue
            module_name = fn.module.name
            if module_name not in facts_cache:
                scope = ctx.scopes.scopes.get(module_name)
                if scope is None:
                    continue
                facts_cache[module_name] = ModuleFacts(
                    ctx.scopes, ctx.config, scope
                )
            facts = facts_cache[module_name]
            chain = tuple(lattice.chain(graph, fq))
            seed = chain[0] if chain else fq
            registered_at = lattice.callback_seeds.get(seed, "?")
            for node, name, action, held in walk_mutations(
                fn,
                facts.mutable_globals,
                locks=facts.locks,
                hints=ctx.config.lock_name_hints,
                self_attrs=True,
            ):
                if held:
                    continue
                findings.append(
                    make_finding(
                        self.code,
                        fn.module,
                        node.lineno,
                        node.col_offset,
                        f"{action} of {name!r} in {fn.qualname!r}, which "
                        "runs on a callback thread (registered as "
                        f"{seed.split('.')[-1]!r} at {registered_at}) "
                        "concurrently with the coordinator; guard the "
                        "mutation with 'with <lock>:'",
                        chain=chain,
                    )
                )
        return findings
