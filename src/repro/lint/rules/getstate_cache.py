"""REP-GETSTATE-CACHE: shipped classes must strip transient caches.

Models and quantizers travel through ``PayloadStore``/IPC and are
content-addressed by their pickled bytes.  A layer that stashes forward
activations in ``self._cached_*`` (or ``_cache``/``_scratch``/``_mask``)
and fails to drop them in ``__getstate__`` serializes differently
before and after a forward pass — same weights, different bytes,
different content address, broken payload dedupe.

Detection is by convention plus registry: every project subclass of a
registered shipped base (``repro.nn.module.Module``) — and every class
explicitly listed as shipped — must have a ``__getstate__`` somewhere
in its project MRO whose body demonstrably covers each transient-named
attribute the class assigns, either exactly (``state.pop("_mask")``,
``state["_mask"] = None``, ``key == "_mask"``) or by prefix
(``key.startswith("_cached")``).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding, make_finding
from repro.lint.rules.base import LintContext, Rule, register
from repro.lint.scopes import ClassInfo, FunctionInfo


def _transient_attrs(
    ctx: LintContext, cls: ClassInfo
) -> "dict[str, tuple[FunctionInfo, int, int]]":
    """Transient-named ``self.X`` assignments in this class's own methods."""
    out: dict[str, tuple[FunctionInfo, int, int]] = {}
    prefixes = ctx.config.transient_prefixes
    exact = ctx.config.transient_exact
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                name = target.attr
                matches = name in exact or any(
                    name.startswith(prefix) for prefix in prefixes
                )
                if matches and name not in out:
                    out[name] = (method, target.lineno, target.col_offset)
    return out


def _getstate_coverage(
    ctx: LintContext, cls: ClassInfo
) -> "tuple[bool, set[str], set[str]]":
    """(has __getstate__, exactly-covered names, covered prefixes) over the MRO."""
    exact: set[str] = set()
    prefixes: set[str] = set()
    found = False
    for klass in ctx.scopes.mro(cls):
        method = klass.methods.get("__getstate__")
        if method is None:
            continue
        found = True
        for node in ast.walk(method.node):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                continue
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    # state.pop("name") / state.startswith("prefix") via key
                    if func.attr == "pop" and node.args:
                        literal = _str_literal(node.args[0])
                        if literal is not None:
                            exact.add(literal)
                    elif func.attr == "startswith" and node.args:
                        literal = _str_literal(node.args[0])
                        if literal is not None:
                            prefixes.add(literal)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for operand in operands:
                    literal = _str_literal(operand)
                    if literal is not None:
                        exact.add(literal)
            elif isinstance(node, (ast.Assign, ast.Delete)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else node.targets
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        literal = _str_literal(target.slice)
                        if literal is not None:
                            exact.add(literal)
    return found, exact, prefixes


def _str_literal(node: ast.expr) -> "str | None":
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@register
class GetstateCacheRule(Rule):
    code = "REP-GETSTATE-CACHE"
    summary = "shipped class whose __getstate__ leaks transient cache attrs"

    def run(self, ctx: LintContext) -> "list[Finding]":
        shipped_roots = set(ctx.config.shipped_bases)
        shipped = {
            cls.fq: cls for cls in ctx.scopes.subclasses_of(shipped_roots)
        }
        for fq in ctx.config.shipped_classes:
            cls = ctx.scopes.resolve_class(fq)
            if cls is not None:
                shipped[cls.fq] = cls
        findings: list[Finding] = []
        for fq in sorted(shipped):
            cls = shipped[fq]
            transients = _transient_attrs(ctx, cls)
            if not transients:
                continue
            has_getstate, exact, prefixes = _getstate_coverage(ctx, cls)
            for name in sorted(transients):
                method, lineno, col = transients[name]
                covered = has_getstate and (
                    name in exact
                    or any(name.startswith(prefix) for prefix in prefixes)
                )
                if covered:
                    continue
                reason = (
                    "no __getstate__ in its MRO"
                    if not has_getstate
                    else "__getstate__ does not strip it"
                )
                findings.append(
                    make_finding(
                        self.code,
                        method.module,
                        lineno,
                        col,
                        f"transient attribute {name!r} on shipped class "
                        f"{cls.name} survives pickling ({reason}); pickled "
                        "bytes will differ before vs after a forward pass, "
                        "breaking content-addressed payload dedupe",
                    )
                )
        return findings
