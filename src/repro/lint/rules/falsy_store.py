"""REP-FALSY-STORE: truthiness tests on ``__len__``-bearing objects.

PR 7 shipped three copies of the same latent bug: ``if self.cache:`` on
a store that defines ``__len__`` is False for an *empty* store, so code
that meant "is a cache configured?" silently skipped every get on cold
runs.  This rule generalizes the family: any bare truthiness test
(``if x:``, ``if not x:``, ``x and ...``, ``while x:``, ...) on a name
or attribute the analyzer can type to a project class that defines
``__len__`` (and no ``__bool__``) is ambiguous between identity and
emptiness — write ``x is not None`` or ``len(x) == 0`` instead.
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import class_attr_bindings, local_class_bindings
from repro.lint.findings import Finding, make_finding
from repro.lint.rules.base import LintContext, Rule, register
from repro.lint.scopes import ClassInfo, FunctionInfo


def _sized_classes(ctx: LintContext) -> "set[str]":
    """Project classes defining ``__len__`` but not ``__bool__``."""
    out: set[str] = set()
    for scope in ctx.scopes.scopes.values():
        for cls in scope.classes.values():
            mro = ctx.scopes.mro(cls)
            has_len = any("__len__" in klass.methods for klass in mro)
            has_bool = any("__bool__" in klass.methods for klass in mro)
            if has_len and not has_bool:
                out.add(cls.fq)
    return out


def _boolean_contexts(fn_node: ast.AST) -> "list[ast.expr]":
    """Expressions evaluated for truthiness inside ``fn_node``."""
    out: list[ast.expr] = []
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.If, ast.While)):
            out.append(node.test)
        elif isinstance(node, ast.IfExp):
            out.append(node.test)
        elif isinstance(node, ast.Assert):
            out.append(node.test)
        elif isinstance(node, ast.BoolOp):
            out.extend(node.values)
        elif isinstance(node, ast.comprehension):
            out.extend(node.ifs)
    # Unwrap `not x` and collapse duplicates by identity.
    expanded: list[ast.expr] = []
    seen: set[int] = set()
    for expr in out:
        while isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            expr = expr.operand
        if id(expr) not in seen:
            seen.add(id(expr))
            expanded.append(expr)
    return expanded


@register
class FalsyStoreRule(Rule):
    code = "REP-FALSY-STORE"
    summary = "truthiness test on a __len__-bearing object where identity is meant"

    def run(self, ctx: LintContext) -> "list[Finding]":
        sized = _sized_classes(ctx)
        if not sized:
            return []
        findings: list[Finding] = []
        for scope in ctx.scopes.scopes.values():
            for fn in scope.functions.values():
                findings.extend(self._check_function(ctx, fn, sized))
        return findings

    def _check_function(
        self, ctx: LintContext, fn: FunctionInfo, sized: "set[str]"
    ) -> "list[Finding]":
        locals_map = local_class_bindings(ctx.scopes, fn)
        attr_map: dict[str, ClassInfo] = {}
        if fn.class_name is not None:
            own = ctx.scopes.scope_of(fn.module).classes.get(fn.class_name)
            if own is not None:
                attr_map = class_attr_bindings(ctx.scopes, own)
        findings: list[Finding] = []
        for expr in _boolean_contexts(fn.node):
            cls: "ClassInfo | None" = None
            described = ""
            if isinstance(expr, ast.Name):
                cls = locals_map.get(expr.id)
                described = expr.id
            elif (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                cls = attr_map.get(expr.attr)
                described = f"self.{expr.attr}"
            if cls is None or cls.fq not in sized:
                continue
            findings.append(
                make_finding(
                    self.code,
                    fn.module,
                    expr.lineno,
                    expr.col_offset,
                    f"truthiness test on {described!r} ({cls.name} defines "
                    "__len__, so an empty instance is falsy); use "
                    f"'{described} is not None' for presence or an explicit "
                    "len() comparison for emptiness",
                )
            )
        return findings
