"""REP-REDUCTION-ORDER: float accumulation over an unordered iteration.

Float addition is not associative: summing the same values in a
different order changes the low-order bits of the result.  Set
iteration order depends on ``PYTHONHASHSEED`` (for strings) and on
insertion history; ``os.listdir``/``glob.glob`` order depends on the
filesystem.  A task that accumulates floats over such an ordering can
therefore produce different result bytes for the same parameter
mapping — breaking the bit-identity contract the cache and the
``repro verify`` gate rely on.

Flagged, when reachable from a task root:

* ``sum(...)`` whose operand iterates a set literal/comprehension,
  ``set()``/``frozenset()`` call, an unordered filesystem call
  (``os.listdir``, ``glob.glob``, ``Path.iterdir`` ...), or a
  comprehension driven by one of those;
* ``acc += <float expr>`` inside a ``for`` loop over such an iterable.

Not flagged: clearly integral accumulation (int constants, ``len()``,
``//``) — integer addition is associative; iteration wrapped in
``sorted(...)``; and ``math.fsum``, whose compensated summation is
order-independent.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding, make_finding
from repro.lint.rules.base import LintContext, Rule, register, task_roots
from repro.lint.scopes import FunctionInfo

_SET_FACTORIES = frozenset({"builtins.set", "builtins.frozenset"})
_INTEGRAL_CALLS = frozenset({"len", "int", "ord", "count", "index"})


@register
class ReductionOrderRule(Rule):
    code = "REP-REDUCTION-ORDER"
    summary = "float accumulation over an unordered iteration order"

    def run(self, ctx: LintContext) -> "list[Finding]":
        roots = task_roots(ctx)
        if not roots:
            return []
        graph = ctx.callgraph
        predecessor = graph.reachable_from(roots)
        findings: list[Finding] = []
        for fq in sorted(predecessor):
            fn = graph.functions.get(fq)
            if fn is None:
                continue
            chain = tuple(graph.chain(predecessor, fq))
            findings.extend(self._check_fn(ctx, fn, chain))
        return findings

    def _check_fn(
        self, ctx: LintContext, fn: FunctionInfo, chain: "tuple[str, ...]"
    ) -> "list[Finding]":
        sites = {
            id(site.node): site.target_fq
            for site in ctx.callgraph.calls.get(fn.fq, ())
            if not site.indirect and site.target_fq is not None
        }
        assigns: dict[str, ast.expr] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    assigns[target.id] = node.value

        def unordered(expr: ast.expr, depth: int = 0) -> "str | None":
            """A description of why ``expr`` iterates unordered, or None."""
            if depth > 4:
                return None
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return "a set"
            if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if expr.generators:
                    return unordered(expr.generators[0].iter, depth + 1)
                return None
            if isinstance(expr, ast.Call):
                target = sites.get(id(expr))
                if target in ctx.config.order_safe_calls:
                    return None
                if target == "builtins.sorted":
                    return None
                if target in _SET_FACTORIES:
                    return "set()"
                if target in ctx.config.unordered_calls:
                    return f"{target}()"
                if (
                    isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in ctx.config.unordered_attrs
                ):
                    return f".{expr.func.attr}()"
                return None
            if isinstance(expr, ast.Name) and expr.id in assigns:
                value = assigns[expr.id]
                if value is not expr:
                    return unordered(value, depth + 1)
            return None

        findings: list[Finding] = []
        root_name = chain[0].split(".")[-1] if chain else fn.qualname

        def emit(node: ast.AST, what: str, source: str) -> None:
            findings.append(
                make_finding(
                    self.code,
                    fn.module,
                    node.lineno,
                    node.col_offset,
                    f"{what} over {source} in {fn.qualname!r} (reachable "
                    f"from task root {root_name!r}); float addition is not "
                    "associative, so the unordered iteration changes result "
                    "bits across runs — iterate sorted(...) or use "
                    "math.fsum",
                    chain=chain,
                )
            )

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and sites.get(id(node)) == "builtins.sum":
                if not node.args:
                    continue
                operand = node.args[0]
                source = unordered(operand)
                if source is None:
                    continue
                if isinstance(
                    operand, (ast.GeneratorExp, ast.ListComp)
                ) and _integral(operand.elt):
                    continue
                emit(node, "sum()", source)
            elif isinstance(node, ast.For):
                source = unordered(node.iter)
                if source is None:
                    continue
                for stmt in ast.walk(node):
                    if (
                        isinstance(stmt, ast.AugAssign)
                        and isinstance(stmt.op, ast.Add)
                        and isinstance(stmt.target, ast.Name)
                        and not _integral(stmt.value)
                    ):
                        emit(stmt, "'+=' accumulation", source)
        return findings


def _integral(expr: ast.expr) -> bool:
    """Conservatively true when the value is clearly an int."""
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, int) and not isinstance(expr.value, bool)
    if isinstance(expr, ast.Call):
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _INTEGRAL_CALLS
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, ast.Div):
            return False
        return _integral(expr.left) and _integral(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _integral(expr.operand)
    return False
