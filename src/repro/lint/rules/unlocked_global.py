"""REP-UNLOCKED-GLOBAL: unguarded mutation of module-level shared state.

The executor's callback threads and worker-delta merges touch several
process-wide registries (``perf/profile.py``'s ``_REGISTRY``,
``obs/metrics.py`` counters).  A module that declares a lock — or is
configured as thread-exposed — is promising those registries are shared
across threads, so every mutation of module-level mutable state
(container mutation, or rebinding through ``global``) must happen under
a ``with <lock>:`` block.  A lightweight race detector, not a proof:
it catches the "forgot the lock on the second code path" bug class.

The mutation/lock modelling itself lives in
:mod:`repro.lint.mutations`, shared with REP-PURE-TASK and the
inference-driven REP-THREAD-ESCAPE (which needs no lock declaration or
module list to fire — see :mod:`repro.lint.escape`).
"""

from __future__ import annotations

from repro.lint.findings import Finding, make_finding
from repro.lint.mutations import ModuleFacts, walk_mutations
from repro.lint.rules.base import LintContext, Rule, register


@register
class UnlockedGlobalRule(Rule):
    code = "REP-UNLOCKED-GLOBAL"
    summary = "module-level mutable state mutated outside a lock"

    def run(self, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        for scope in ctx.scopes.scopes.values():
            facts = ModuleFacts(ctx.scopes, ctx.config, scope)
            exposed = bool(facts.locks) or (
                scope.module.name in ctx.config.concurrent_modules
            )
            if not exposed or not (facts.mutable_globals or facts.locks):
                continue
            for fn in scope.functions.values():
                for node, name, action, held in walk_mutations(
                    fn,
                    facts.mutable_globals,
                    locks=facts.locks,
                    hints=ctx.config.lock_name_hints,
                ):
                    if held:
                        continue
                    findings.append(
                        make_finding(
                            self.code,
                            fn.module,
                            node.lineno,
                            node.col_offset,
                            f"{action} of module-level {name!r} in "
                            f"{fn.qualname!r} without holding a lock; wrap "
                            "the mutation in 'with <lock>:' (shared across "
                            "executor callback threads)",
                        )
                    )
        return findings
