"""REP-UNLOCKED-GLOBAL: unguarded mutation of module-level shared state.

The executor's callback threads and worker-delta merges touch several
process-wide registries (``perf/profile.py``'s ``_REGISTRY``,
``obs/metrics.py`` counters).  A module that declares a lock — or is
configured as thread-exposed — is promising those registries are shared
across threads, so every mutation of module-level mutable state
(container mutation, or rebinding through ``global``) must happen under
a ``with <lock>:`` block.  A lightweight race detector, not a proof:
it catches the "forgot the lock on the second code path" bug class.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding, make_finding
from repro.lint.rules.base import LintContext, Rule, register
from repro.lint.scopes import FunctionInfo, ModuleScope, dotted_name

_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "remove",
        "discard",
    }
)

_MUTABLE_FACTORIES = frozenset(
    {
        "builtins.dict",
        "builtins.list",
        "builtins.set",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    }
)

_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)


def _is_mutable_literal(expr: ast.expr) -> bool:
    return isinstance(
        expr,
        (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
    )


def _lockish_name(name: str, hints: "tuple[str, ...]") -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in hints)


class _ModuleFacts:
    """Mutable globals and lock names declared at module level."""

    def __init__(self, ctx: LintContext, scope: ModuleScope) -> None:
        self.mutable_globals: set[str] = set()
        self.locks: set[str] = set()
        hints = ctx.config.lock_name_hints
        for name, value in scope.module_assigns.items():
            if name.startswith("__"):
                continue
            if _is_mutable_literal(value):
                self.mutable_globals.add(name)
                continue
            if isinstance(value, ast.Call):
                raw = dotted_name(value.func)
                fq = (
                    ctx.scopes.resolve_in_module(scope, raw)
                    if raw is not None
                    else None
                )
                if fq in _MUTABLE_FACTORIES:
                    self.mutable_globals.add(name)
                elif fq in _LOCK_FACTORIES or (
                    raw is not None and _lockish_name(raw.split(".")[-1], hints)
                ):
                    self.locks.add(name)
                elif _lockish_name(name, hints):
                    self.locks.add(name)


@register
class UnlockedGlobalRule(Rule):
    code = "REP-UNLOCKED-GLOBAL"
    summary = "module-level mutable state mutated outside a lock"

    def run(self, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        for scope in ctx.scopes.scopes.values():
            facts = _ModuleFacts(ctx, scope)
            exposed = bool(facts.locks) or (
                scope.module.name in ctx.config.concurrent_modules
            )
            if not exposed or not (facts.mutable_globals or facts.locks):
                continue
            for fn in scope.functions.values():
                findings.extend(self._check_function(ctx, scope, fn, facts))
        return findings

    def _check_function(
        self,
        ctx: LintContext,
        scope: ModuleScope,
        fn: FunctionInfo,
        facts: _ModuleFacts,
    ) -> "list[Finding]":
        hints = ctx.config.lock_name_hints
        rebindable: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                rebindable.update(node.names)
        findings: list[Finding] = []

        def guarded(with_stack: "list[ast.expr]") -> bool:
            for expr in with_stack:
                name = dotted_name(expr)
                if name is None:
                    continue
                last = name.split(".")[-1]
                if last in facts.locks or _lockish_name(last, hints):
                    return True
            return False

        def flag(node: ast.AST, name: str, action: str) -> None:
            findings.append(
                make_finding(
                    self.code,
                    fn.module,
                    node.lineno,
                    node.col_offset,
                    f"{action} of module-level {name!r} in "
                    f"{fn.qualname!r} without holding a lock; wrap the "
                    "mutation in 'with <lock>:' (shared across executor "
                    "callback threads)",
                )
            )

        def subscript_root(target: ast.expr) -> "str | None":
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                return target.value.id
            return None

        def visit(node: ast.AST, with_stack: "list[ast.expr]") -> None:
            if isinstance(node, ast.With):
                items = [item.context_expr for item in node.items]
                for child in node.body:
                    visit(child, with_stack + items)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                node is not fn.node
            ):
                return  # nested defs are analyzed as their own functions
            if isinstance(node, (ast.Assign, ast.AugAssign)) and not guarded(
                with_stack
            ):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    root = subscript_root(target)
                    if root is not None and root in facts.mutable_globals:
                        flag(node, root, "item assignment")
                    elif (
                        isinstance(target, ast.Name) and target.id in rebindable
                    ):
                        flag(node, target.id, "rebinding")
            elif isinstance(node, ast.Delete) and not guarded(with_stack):
                for target in node.targets:
                    root = subscript_root(target)
                    if root is not None and root in facts.mutable_globals:
                        flag(node, root, "item deletion")
            elif isinstance(node, ast.Call) and not guarded(with_stack):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in facts.mutable_globals
                    and func.attr in _MUTATORS
                ):
                    flag(node, func.value.id, f".{func.attr}() mutation")
            for child in ast.iter_child_nodes(node):
                visit(child, with_stack)

        for stmt in fn.node.body:
            visit(stmt, [])
        return findings
