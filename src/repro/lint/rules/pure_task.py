"""REP-PURE-TASK: task results must not depend on mutable shared state.

A cached task result is only replayable if the task is a pure function
of its parameter mapping.  A task (or any helper it reaches) that reads
a module-level mutable container which *some other function* mutates has
a hidden input: the result depends on whether the mutator ran first in
this process.  The cache cannot see that input, so a hit may replay a
result computed under different state.

Two shapes are flagged, both over the call graph from the task roots:

* a reachable function reads a module-level mutable global that another
  function in the same module mutates (memo registries cleared by a
  ``clear_memos()``-style helper are the canonical case);
* a reachable function defines a closure that rebinds enclosing state
  via ``nonlocal`` — per-process accumulator state the cache key never
  sees.

Process-safe memoization (read-through caches keyed purely on the spec)
is a deliberate pattern in this tree; such sites carry inline
``# repro: allow[REP-PURE-TASK]`` suppressions with a justification.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding, make_finding
from repro.lint.mutations import ModuleFacts, global_reads, walk_mutations
from repro.lint.rules.base import LintContext, Rule, register, task_roots


@register
class PureTaskRule(Rule):
    code = "REP-PURE-TASK"
    summary = "task result depends on mutable module or closure state"

    def run(self, ctx: LintContext) -> "list[Finding]":
        roots = task_roots(ctx)
        if not roots:
            return []
        graph = ctx.callgraph
        predecessor = graph.reachable_from(roots)
        facts_cache: dict[str, ModuleFacts] = {}
        mutators_cache: dict[str, dict[str, set[str]]] = {}
        findings: list[Finding] = []
        for fq in sorted(predecessor):
            fn = graph.functions.get(fq)
            if fn is None:
                continue
            module_name = fn.module.name
            scope = ctx.scopes.scopes.get(module_name)
            if scope is None:
                continue
            if module_name not in facts_cache:
                facts = ModuleFacts(ctx.scopes, ctx.config, scope)
                facts_cache[module_name] = facts
                mutators: dict[str, set[str]] = {}
                for other in scope.functions.values():
                    for _node, name, _action, _held in walk_mutations(
                        other,
                        facts.mutable_globals,
                        locks=facts.locks,
                        hints=ctx.config.lock_name_hints,
                    ):
                        if name in facts.mutable_globals:
                            mutators.setdefault(name, set()).add(other.qualname)
                mutators_cache[module_name] = mutators
            facts = facts_cache[module_name]
            mutators = mutators_cache[module_name]
            chain = tuple(graph.chain(predecessor, fq))
            root_name = chain[0].split(".")[-1] if chain else fn.qualname

            reported: set[str] = set()
            for node, name in global_reads(fn, facts.mutable_globals):
                others = mutators.get(name, set()) - {fn.qualname}
                if not others or name in reported:
                    continue
                reported.add(name)
                findings.append(
                    make_finding(
                        self.code,
                        fn.module,
                        node.lineno,
                        node.col_offset,
                        f"{fn.qualname!r} (reachable from task root "
                        f"{root_name!r}) reads module-level mutable "
                        f"{name!r}, which {_fmt(others)} mutates; the task "
                        "result depends on process state the cache key "
                        "never sees",
                        chain=chain,
                    )
                )
            findings.extend(self._closures(ctx, fn, chain, root_name))
        return findings

    def _closures(self, ctx, fn, chain, root_name) -> "list[Finding]":
        findings: list[Finding] = []
        for node in ast.walk(fn.node):
            if node is fn.node or not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            captured = sorted(
                name
                for inner in ast.walk(node)
                if isinstance(inner, ast.Nonlocal)
                for name in inner.names
            )
            if not captured:
                continue
            findings.append(
                make_finding(
                    self.code,
                    fn.module,
                    node.lineno,
                    node.col_offset,
                    f"closure {node.name!r} in {fn.qualname!r} (reachable "
                    f"from task root {root_name!r}) rebinds enclosing state "
                    f"via nonlocal ({', '.join(captured)}); accumulator "
                    "state is invisible to the cache key",
                    chain=chain,
                )
            )
        return findings


def _fmt(names: "set[str]") -> str:
    listed = sorted(names)
    if len(listed) == 1:
        return repr(listed[0])
    return ", ".join(repr(n) for n in listed[:-1]) + f" and {listed[-1]!r}"
