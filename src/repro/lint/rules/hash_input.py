"""REP-HASH-INPUT: cosmetic fields must not feed content addresses.

``task_key`` hashes a canonical spec into the cache address.  Display
labels, titles, and descriptions are cosmetic — two points differing
only in label must share a cache entry (PR 2 established that contract)
— so a spec dict that still carries ``"label"``/``"name"``-style keys
when it reaches key construction either fragments the cache or, worse,
makes byte-identity depend on how a point happens to be titled.

Detection is one-level dataflow: a call to a registered key function is
flagged when its spec argument is (or was assigned, in the same
function, from) a dict literal or ``dict(...)`` call containing a
cosmetic key at any literal nesting depth.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding, make_finding
from repro.lint.rules.base import LintContext, Rule, register
from repro.lint.scopes import FunctionInfo, dotted_name


def _cosmetic_keys_in(expr: ast.expr, cosmetic: frozenset) -> "list[tuple[str, int, int]]":
    """Cosmetic string keys anywhere inside a literal dict expression."""
    out: list[tuple[str, int, int]] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and key.value in cosmetic
                ):
                    out.append((key.value, key.lineno, key.col_offset))
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "dict" or (name or "").endswith(".dict"):
                for keyword in node.keywords:
                    if keyword.arg in cosmetic:
                        out.append(
                            (keyword.arg, keyword.value.lineno, keyword.value.col_offset)
                        )
    return out


def _local_dict_assignments(fn: FunctionInfo) -> "dict[str, ast.expr]":
    out: dict[str, ast.expr] = {}
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            out[node.targets[0].id] = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                out[node.target.id] = node.value
    return out


@register
class HashInputRule(Rule):
    code = "REP-HASH-INPUT"
    summary = "cosmetic/display field flows into content-address construction"

    def run(self, ctx: LintContext) -> "list[Finding]":
        key_functions = set(ctx.config.key_functions)
        cosmetic = ctx.config.cosmetic_keys
        findings: list[Finding] = []
        graph = ctx.callgraph
        for fq, sites in sorted(graph.calls.items()):
            fn = graph.functions[fq]
            local_dicts: "dict[str, ast.expr] | None" = None
            for site in sites:
                if site.target_fq not in key_functions:
                    continue
                spec_arg = self._spec_argument(site.node)
                if spec_arg is None:
                    continue
                if isinstance(spec_arg, ast.Name):
                    if local_dicts is None:
                        local_dicts = _local_dict_assignments(fn)
                    spec_arg = local_dicts.get(spec_arg.id, spec_arg)
                for key, lineno, col in _cosmetic_keys_in(spec_arg, cosmetic):
                    findings.append(
                        make_finding(
                            self.code,
                            fn.module,
                            lineno,
                            col,
                            f"cosmetic field {key!r} reaches "
                            f"{site.raw}() inside {fn.qualname!r}; display "
                            "fields must be stripped before key "
                            "construction or equal work will hash to "
                            "different content addresses",
                        )
                    )
        return findings

    @staticmethod
    def _spec_argument(call: ast.Call) -> "ast.expr | None":
        if call.args:
            return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "spec":
                return keyword.value
        return None
