"""Rule protocol, shared analysis context, and the rule registry."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.callgraph import CallGraph
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.loader import Project
from repro.lint.scopes import ScopeTable


@dataclass
class LintContext:
    """Everything a rule may consult; heavy layers built once, lazily."""

    project: Project
    config: LintConfig
    _scopes: "ScopeTable | None" = field(default=None, repr=False)
    _callgraph: "CallGraph | None" = field(default=None, repr=False)

    @property
    def scopes(self) -> ScopeTable:
        if self._scopes is None:
            self._scopes = ScopeTable(self.project)
        return self._scopes

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.scopes)
        return self._callgraph


def task_roots(ctx: LintContext) -> "list[str]":
    """Fully-qualified task entry points the call-graph rules walk from.

    Explicit ``task_root_functions`` plus everything ``__all__``-exported
    (or, lacking ``__all__``, every function) in ``task_root_modules``.
    """
    roots = list(ctx.config.task_root_functions)
    for module_name in ctx.config.task_root_modules:
        scope = ctx.scopes.scopes.get(module_name)
        if scope is None:
            continue
        exported = scope.dunder_all or sorted(scope.functions)
        for name in exported:
            if name in scope.functions:
                roots.append(f"{module_name}.{name}")
    return roots


class Rule:
    """A single lint rule: a code, a one-liner, and a ``run`` method."""

    code: str = ""
    summary: str = ""

    def run(self, ctx: LintContext) -> "list[Finding]":
        raise NotImplementedError


#: code -> rule instance, populated by :func:`register` at import time.
RULES: dict[str, Rule] = {}


def register(cls: "type[Rule]") -> "type[Rule]":
    instance = cls()
    if not instance.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if instance.code in RULES:
        raise ValueError(f"duplicate rule code {instance.code}")
    RULES[instance.code] = instance
    return cls
