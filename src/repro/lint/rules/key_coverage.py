"""REP-KEY-COVERAGE: every field a task reads must feed its cache key.

The content-addressed cache serves a stored result whenever
``task_key(spec)`` matches — so a task that reads a spec field the key
builder never hashes will silently serve *stale* bytes after that field
changes.  This rule closes the loop mechanically:

1. **Binding inference.**  A function that calls a key function
   (``task_key(builder(spec), ...)``) and constructs a task object
   (``Task(fn="module:function", params=spec)``) over the *same* spec
   value binds that task root to that key-spec builder.  Aliases
   (``params = spec``, ``params = {**spec, ...}``) are followed.
   Explicit ``LintConfig.key_bindings`` entries supplement inference.

2. **Hashed-field model.**  The builder body is abstracted into
   *contributions* — source-field subtrees that flow into the returned
   spec.  Both builder shapes in the tree are modelled: inclusion
   (an explicit dict literal, ``zoo_builder.checkpoint_spec``) and
   exclusion (a dict comprehension filtering keys,
   ``planner.measurement_spec``); values routed through helper calls
   over-approximate to every field mentioned in their arguments.

3. **Read-set comparison.**  The task root's transitive read-set (see
   :mod:`repro.lint.readsets`) is checked path-by-path against the
   model.  A read field the key never hashes is an **error**; a field
   the builder deliberately excludes is an error unless the field is a
   registered cosmetic key (``label``, ``name``, ...); a
   hashed-but-never-read field and a whole-mapping read that is only
   partially hashed are **info** findings (advisory, exit code 0).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.callgraph import CallSite
from repro.lint.dataflow import MAX_PATH_DEPTH
from repro.lint.findings import Finding, make_finding
from repro.lint.readsets import ReadSetAnalysis
from repro.lint.rules.base import LintContext, Rule, register
from repro.lint.scopes import FunctionInfo


@dataclass(frozen=True)
class Contribution:
    """One source-field subtree flowing into the hashed key spec.

    ``path`` is hashed in full **except** the subtrees in ``excluded``
    (exclusion-model builders drop specific keys).  ``path == ()`` with
    exclusions is the pure exclusion model: "everything but these".
    """

    path: tuple[str, ...]
    excluded: frozenset = frozenset()


@dataclass
class Binding:
    """One inferred (task root, key builder) pair and where it was made."""

    root: FunctionInfo
    builder: "FunctionInfo | None"  # None: the spec is hashed as-is
    site_fn: "FunctionInfo | None"
    line: int


def _prefix(shorter: tuple, longer: tuple) -> bool:
    return longer[: len(shorter)] == shorter


def _covered(path: tuple, contribs: "list[Contribution]") -> bool:
    for contribution in contribs:
        if _prefix(contribution.path, path) and not any(
            _prefix(excluded, path) for excluded in contribution.excluded
        ):
            return True
    return False


@register
class KeyCoverageRule(Rule):
    code = "REP-KEY-COVERAGE"
    summary = "task reads a spec field its cache key never hashes"

    def run(self, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        analysis = ReadSetAnalysis(ctx.callgraph)
        for binding in self._bindings(ctx):
            findings.extend(self._check(ctx, analysis, binding))
        return findings

    # -- binding discovery ---------------------------------------------------

    def _bindings(self, ctx: LintContext) -> "list[Binding]":
        out: list[Binding] = []
        seen: set[tuple[str, str]] = set()
        for root_fq, builder_fq in ctx.config.key_bindings:
            root = ctx.callgraph.functions.get(root_fq)
            if root is None:
                continue
            builder = (
                ctx.callgraph.functions.get(builder_fq) if builder_fq else None
            )
            out.append(Binding(root, builder, None, root.node.lineno))
            seen.add((root_fq, builder_fq or ""))
        for fn in sorted(ctx.callgraph.functions.values(), key=lambda f: f.fq):
            for binding in self._infer_in(ctx, fn):
                key = (binding.root.fq, binding.builder.fq if binding.builder else "")
                if key not in seen:
                    seen.add(key)
                    out.append(binding)
        return out

    def _infer_in(self, ctx: LintContext, fn: FunctionInfo) -> "list[Binding]":
        sites = [s for s in ctx.callgraph.calls.get(fn.fq, ()) if not s.indirect]
        site_by_node = {id(site.node): site for site in sites}
        key_sites = [
            s for s in sites if s.target_fq in ctx.config.key_functions
        ]
        task_sites = [
            s for s in sites if s.target_fq in ctx.config.task_constructors
        ]
        if not key_sites or not task_sites:
            return []
        aliases = _alias_sets(fn.node)
        out: list[Binding] = []
        for key_site in key_sites:
            if not key_site.node.args:
                continue
            spec_expr = key_site.node.args[0]
            builder: "FunctionInfo | None" = None
            if isinstance(spec_expr, ast.Call):
                inner = site_by_node.get(id(spec_expr))
                builder = inner.target_fn if inner is not None else None
                if builder is None or not spec_expr.args:
                    continue
                spec_expr = spec_expr.args[0]
            if not isinstance(spec_expr, ast.Name):
                continue
            spec_aliases = aliases.get(spec_expr.id, {spec_expr.id})
            for task_site in task_sites:
                root = self._task_root(ctx, fn, task_site)
                params = _keyword(task_site.node, "params")
                if root is None or not isinstance(params, ast.Name):
                    continue
                if params.id in spec_aliases:
                    out.append(
                        Binding(root, builder, fn, key_site.node.lineno)
                    )
        return out

    def _task_root(
        self, ctx: LintContext, fn: FunctionInfo, site: CallSite
    ) -> "FunctionInfo | None":
        value = _keyword(site.node, "fn")
        if isinstance(value, ast.Name):
            scope = ctx.scopes.scope_of(fn.module)
            value = scope.module_assigns.get(value.id)
        if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
            return None
        spec = value.value
        fq = spec.replace(":", ".") if ":" in spec else spec
        return ctx.callgraph.functions.get(fq)

    # -- the check -----------------------------------------------------------

    def _check(
        self, ctx: LintContext, analysis: ReadSetAnalysis, binding: Binding
    ) -> "list[Finding]":
        root = binding.root
        params = [
            name
            for name in _positional_params(root.node)
            if name not in ("self", "cls")
        ]
        if not params:
            return []
        summary = analysis.summary(root)
        if summary is None:
            return []
        reads = summary.events(params[0])
        contribs = self._key_model(ctx, binding.builder)
        if contribs is None:
            return []  # unanalyzable builder: claim nothing
        findings: list[Finding] = []
        predecessor = ctx.callgraph.reachable_from([root.fq])
        root_name = root.qualname.split(".")[-1]
        builder_name = (
            binding.builder.qualname if binding.builder else "<spec hashed as-is>"
        )
        reported: set[tuple] = set()

        def emit(event, path, text, severity="error"):
            if (tuple(path), severity) in reported:
                return
            reported.add((tuple(path), severity))
            module = ctx.project.get(event.module)
            if module is None:
                return
            chain = tuple(ctx.callgraph.chain(predecessor, event.fn_fq))
            findings.append(
                make_finding(
                    self.code, module, event.line, event.col, text,
                    chain=chain, severity=severity,
                )
            )

        all_excluded = sorted(
            {e for c in contribs for e in c.excluded}
        )
        for event in reads:
            dotted = ".".join(event.path) or "<whole mapping>"
            if _covered(event.path, contribs):
                for excluded in all_excluded:
                    if (
                        len(excluded) > len(event.path)
                        and _prefix(event.path, excluded)
                        and not _covered(excluded, contribs)
                        and excluded[-1] not in ctx.config.cosmetic_keys
                    ):
                        emit(
                            event,
                            excluded,
                            f"task root {root_name!r} reads the whole "
                            f"{dotted!r} subtree, but key builder "
                            f"{builder_name!r} excludes "
                            f"{'.'.join(excluded)!r} from the hash; a change "
                            "to that field would serve stale cached results",
                        )
                continue
            partial = [
                c for c in contribs
                if len(c.path) > len(event.path) and _prefix(event.path, c.path)
            ]
            if partial:
                hashed = ", ".join(
                    sorted(".".join(c.path) for c in partial)
                )
                emit(
                    event,
                    event.path,
                    f"task root {root_name!r} may read any field under "
                    f"{dotted!r}, but key builder {builder_name!r} hashes "
                    f"only: {hashed}",
                    severity="info",
                )
                continue
            emit(
                event,
                event.path,
                f"task root {root_name!r} reads spec field {dotted!r}, "
                f"which key builder {builder_name!r} never hashes into the "
                "cache key; a change to that field would serve stale cached "
                "results",
            )

        # hashed-but-never-read: advisory, anchored at the binding site
        if binding.site_fn is not None:
            read_paths = [event.path for event in reads]
            for contribution in sorted(contribs, key=lambda c: c.path):
                if not contribution.path:
                    continue
                if any(
                    _prefix(r, contribution.path) or _prefix(contribution.path, r)
                    for r in read_paths
                ):
                    continue
                findings.append(
                    make_finding(
                        self.code,
                        binding.site_fn.module,
                        binding.line,
                        0,
                        f"key builder {builder_name!r} hashes field "
                        f"{'.'.join(contribution.path)!r}, but task root "
                        f"{root_name!r} never reads it; the field fragments "
                        "the cache without affecting results",
                        severity="info",
                    )
                )
        return findings

    # -- the hashed-field model ---------------------------------------------

    def _key_model(
        self, ctx: LintContext, builder: "FunctionInfo | None"
    ) -> "list[Contribution] | None":
        if builder is None:
            return [Contribution(())]  # spec hashed as-is: full coverage
        params = [
            name
            for name in _positional_params(builder.node)
            if name not in ("self", "cls")
        ]
        if not params:
            return None
        analyzer = _BuilderAnalyzer(params[0])
        for stmt in builder.node.body:
            analyzer.stmt(stmt)
        if not analyzer.result:
            return None
        return analyzer.result


def _keyword(node: ast.Call, name: str) -> "ast.expr | None":
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _positional_params(node) -> "list[str]":
    args = node.args
    return [a.arg for a in [*args.posonlyargs, *args.args]]


def _alias_sets(node) -> "dict[str, set[str]]":
    """name -> the set of names known to alias the same spec mapping.

    Follows ``a = b``, ``a = dict(b)``, and ``a = {**b, ...}`` — the
    shapes planners use to derive task params from the keyed spec.
    """
    edges: list[tuple[str, str]] = []
    for child in ast.walk(node):
        if not (isinstance(child, ast.Assign) and len(child.targets) == 1):
            continue
        target = child.targets[0]
        if not isinstance(target, ast.Name):
            continue
        sources: list[str] = []
        value = child.value
        if isinstance(value, ast.Name):
            sources.append(value.id)
        elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id == "dict" and value.args:
                if isinstance(value.args[0], ast.Name):
                    sources.append(value.args[0].id)
        elif isinstance(value, ast.Dict):
            for key, item in zip(value.keys, value.values):
                if key is None and isinstance(item, ast.Name):
                    sources.append(item.id)
        for source in sources:
            edges.append((target.id, source))
    groups: dict[str, set[str]] = {}
    for target, source in edges:
        group = groups.setdefault(source, {source})
        group.add(target)
        groups[target] = group
    return groups


class _BuilderAnalyzer:
    """Abstracts a key-builder body into hashed-field contributions."""

    def __init__(self, param: str) -> None:
        self.param = param
        #: local name -> _Ref | _DictModel | list[Contribution]
        self.env: dict[str, object] = {param: _Ref(())}
        self.result: list[Contribution] = []

    # -- statements ----------------------------------------------------------

    def stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                self.env[target.id] = self.model(stmt.value)
                return
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                model = self.env.get(target.value.id)
                if isinstance(model, _DictModel):
                    model.setitem(target.slice.value, self.contribs(stmt.value))
                    return
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self.result.extend(_to_contribs(self.model(stmt.value)))
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self.stmt(child)

    # -- value models --------------------------------------------------------

    def ref(self, expr: ast.expr) -> "_Ref | None":
        """Pure navigation from the spec parameter, or None."""
        if isinstance(expr, ast.Name):
            model = self.env.get(expr.id)
            return model if isinstance(model, _Ref) else None
        if isinstance(expr, ast.Subscript):
            base = self.ref(expr.value)
            key = expr.slice
            if (
                base is not None
                and isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            ):
                return base.extend(key.value)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Name)
                and func.id == "dict"
                and expr.args
            ):
                return self.ref(expr.args[0])
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and expr.args
                and isinstance(expr.args[0], ast.Constant)
                and isinstance(expr.args[0].value, str)
            ):
                base = self.ref(func.value)
                if base is not None:
                    return base.extend(expr.args[0].value)
        return None

    def model(self, expr: ast.expr) -> object:
        ref = self.ref(expr)
        if ref is not None:
            return ref
        if isinstance(expr, ast.Name) and expr.id in self.env:
            return self.env[expr.id]
        if isinstance(expr, ast.Dict):
            dm = _DictModel()
            for key, value in zip(expr.keys, expr.values):
                if key is None:  # {**spread}
                    dm.rest.extend(_to_contribs(self.model(value)))
                elif isinstance(key, ast.Constant) and isinstance(key.value, str):
                    dm.entries[key.value] = self.contribs(value)
                else:
                    dm.rest.extend(self.contribs(value))
            return dm
        if isinstance(expr, ast.DictComp):
            comp = self._exclusion_comp(expr)
            if comp is not None:
                dm = _DictModel()
                dm.rest.append(comp)
                return dm
        return self.contribs(expr)

    def _exclusion_comp(self, expr: ast.DictComp) -> "Contribution | None":
        """``{k: v for k, v in spec[...].items() if k != "lit"}``."""
        if len(expr.generators) != 1:
            return None
        gen = expr.generators[0]
        if not (
            isinstance(gen.iter, ast.Call)
            and isinstance(gen.iter.func, ast.Attribute)
            and gen.iter.func.attr == "items"
        ):
            return None
        base = self.ref(gen.iter.func.value)
        if base is None:
            return None
        key_var: "str | None" = None
        if isinstance(gen.target, ast.Tuple) and len(gen.target.elts) == 2:
            first = gen.target.elts[0]
            if isinstance(first, ast.Name):
                key_var = first.id
        excluded: set[tuple[str, ...]] = set()
        for cond in gen.ifs:
            for name in _excluded_names(cond, key_var):
                excluded.add(base.path + (name,))
        return Contribution(base.path, frozenset(excluded))

    def contribs(self, expr: "ast.expr | None") -> "list[Contribution]":
        """Every source-field subtree mentioned anywhere in ``expr``.

        Over-approximates fields routed through helper calls (a field
        handed to ``splitbeam_training_config`` counts as hashed), which
        errs toward fewer findings — the safe direction for a linter.
        """
        if expr is None:
            return []
        ref = self.ref(expr)
        if ref is not None:
            return [Contribution(ref.path)]
        model = self.model(expr) if isinstance(expr, (ast.Dict, ast.DictComp)) else None
        if model is not None:
            return _to_contribs(model)
        if isinstance(expr, ast.Name):
            return _to_contribs(self.env.get(expr.id))
        out: list[Contribution] = []
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                out.extend(self.contribs(child))
            elif isinstance(child, ast.comprehension):
                out.extend(self.contribs(child.iter))
            elif isinstance(child, ast.keyword):
                out.extend(self.contribs(child.value))
        return out


@dataclass(frozen=True)
class _Ref:
    path: tuple[str, ...]

    def extend(self, segment: str) -> "_Ref":
        if len(self.path) >= MAX_PATH_DEPTH:
            return self
        return _Ref(self.path + (segment,))


@dataclass
class _DictModel:
    entries: dict = field(default_factory=dict)
    rest: list = field(default_factory=list)  # list[Contribution]

    def setitem(self, key: str, contribs: "list[Contribution]") -> None:
        self.entries[key] = contribs
        # the identity-mapped source key is replaced, so exclude it from
        # every pass-through contribution
        self.rest = [
            Contribution(c.path, c.excluded | {c.path + (key,)})
            for c in self.rest
        ]


def _to_contribs(model: object) -> "list[Contribution]":
    if isinstance(model, _Ref):
        return [Contribution(model.path)]
    if isinstance(model, _DictModel):
        out = list(model.rest)
        for contribs in model.entries.values():
            out.extend(contribs)
        return out
    if isinstance(model, list):
        return model
    return []


def _excluded_names(cond: ast.expr, key_var: "str | None") -> "list[str]":
    """String literals a ``k != "x"`` / ``k not in (...)`` filter drops."""
    if key_var is None or not isinstance(cond, ast.Compare):
        return []
    if not (
        isinstance(cond.left, ast.Name)
        and cond.left.id == key_var
        and len(cond.ops) == 1
    ):
        return []
    comparator = cond.comparators[0]
    if isinstance(cond.ops[0], ast.NotEq):
        if isinstance(comparator, ast.Constant) and isinstance(
            comparator.value, str
        ):
            return [comparator.value]
    elif isinstance(cond.ops[0], ast.NotIn):
        if isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
            return [
                element.value
                for element in comparator.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
    return []
