"""REP-ENV-READ: ``os.environ`` access outside the sanctioned knobs module.

Scattered environment reads are how "works on my machine" enters a
deterministic runtime: a knob read at a random call site is invisible
to the cache key and impossible to audit.  All ``$REPRO_RUNTIME_*``
(and any other) environment access must route through
``repro.runtime.knobs`` so there is exactly one place that can observe
ambient process state.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding, make_finding
from repro.lint.rules.base import LintContext, Rule, register
from repro.lint.scopes import dotted_name

#: os attributes that read or write the process environment.
_ENV_ATTRS = frozenset({"os.environ", "os.getenv", "os.putenv", "os.unsetenv"})


@register
class EnvReadRule(Rule):
    code = "REP-ENV-READ"
    summary = "os.environ access outside the sanctioned knobs module"

    def run(self, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        sanctioned = set(ctx.config.sanctioned_env_modules)
        for scope in ctx.scopes.scopes.values():
            if scope.module.name in sanctioned:
                continue
            for node in ast.walk(scope.module.tree):
                if not isinstance(node, (ast.Attribute, ast.Name)):
                    continue
                raw = dotted_name(node)
                if raw is None:
                    continue
                fq = ctx.scopes.resolve_in_module(scope, raw)
                # Exact match only: for `os.environ.get(...)` the inner
                # `os.environ` attribute node matches, so each access
                # yields exactly one finding.
                if fq not in _ENV_ATTRS:
                    continue
                findings.append(
                    make_finding(
                        self.code,
                        scope.module,
                        node.lineno,
                        node.col_offset,
                        f"environment access {raw!r}; route it through "
                        f"{' or '.join(sorted(sanctioned))} so ambient "
                        "process state has a single auditable entry point",
                    )
                )
        return findings
