"""Rule registry: importing this package registers every built-in rule."""

from repro.lint.rules.base import RULES, LintContext, Rule, register
from repro.lint.rules import (  # noqa: F401  (imported for registration side effect)
    env_read,
    falsy_store,
    getstate_cache,
    hash_input,
    key_coverage,
    nondet,
    pure_task,
    reduction_order,
    thread_escape,
    unlocked_global,
)

__all__ = ["RULES", "LintContext", "Rule", "register"]
