"""REP-NONDET: nondeterminism sources reachable from task functions.

The runtime's bit-identity contract says every task result is a pure
function of the task's parameter mapping.  This rule walks the project
call graph from the registered task functions (``runtime/tasks.py``'s
``__all__``) and flags any reachable call to a wall clock, an entropy
source, process identity, the *global* numpy/python RNGs, or the
``id()``/``hash()`` builtins (PYTHONHASHSEED makes ``hash(str)`` differ
across worker processes).  Seeded generators (``np.random.default_rng``,
``random.Random``) are explicitly allowed; so is ``time.perf_counter``,
which only feeds telemetry, never result bytes.
"""

from __future__ import annotations

from repro.lint.findings import Finding, make_finding
from repro.lint.rules.base import LintContext, Rule, register, task_roots


@register
class NondetRule(Rule):
    code = "REP-NONDET"
    summary = "nondeterminism source reachable from a runtime task body"

    def _is_nondet(self, ctx: LintContext, fq: str) -> bool:
        config = ctx.config
        if fq in config.nondet_calls:
            return True
        stripped = fq[len("builtins.") :] if fq.startswith("builtins.") else None
        if stripped is not None and stripped in config.nondet_builtins:
            return True
        for prefix in config.nondet_prefixes:
            if fq.startswith(prefix) and fq not in config.nondet_prefix_allowed:
                return True
        return False

    def run(self, ctx: LintContext) -> "list[Finding]":
        roots = task_roots(ctx)
        if not roots:
            return []
        graph = ctx.callgraph
        predecessor = graph.reachable_from(roots)
        findings: list[Finding] = []
        for fq in sorted(predecessor):
            fn = graph.functions.get(fq)
            if fn is None:
                continue
            for site in graph.calls.get(fq, ()):
                target = site.target_fq
                if target is None or not self._is_nondet(ctx, target):
                    continue
                chain = tuple(graph.chain(predecessor, fq))
                via = " -> ".join(part.split(".")[-1] for part in chain)
                findings.append(
                    make_finding(
                        self.code,
                        fn.module,
                        site.lineno,
                        site.col,
                        f"nondeterministic call {site.raw}() ({target}) is "
                        f"reachable from task root {chain[0].split('.')[-1]!r} "
                        f"(via {via}); task results must be pure functions of "
                        "their parameter mapping",
                        chain=chain,
                    )
                )
        return findings
