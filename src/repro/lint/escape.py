"""Thread-escape lattice: which functions run on which kind of thread.

Classifies every project function into a three-point lattice by walking
the call graph from *inferred* concurrency seeds — no hand-configured
module lists:

``callback-shared``
    Reachable from a callable registered as a completion callback
    (``future.add_done_callback(f)``) or handed to a coordinator-side
    thread (``threading.Thread(target=f)``, ``threading.Timer(_, f)``).
    These run concurrently with the coordinator inside the same
    process, so every module-level or instance attribute they mutate is
    shared state.

``worker-local``
    Reachable from a callable submitted to an executor pool
    (``pool.submit(f, ...)``, ``pool.map(f, ...)``).  With a process
    pool these run in their own interpreter: module globals are
    per-process and need no locking.

``coordinator``
    Everything else: single-threaded coordinator code.

``callback-shared`` dominates ``worker-local`` (a function reachable
both ways can race), which dominates ``coordinator``.  Seed discovery
leans on the call graph's indirect-reference resolution, so
``self._on_done`` method references and ``lambda f: handler(f)``
wrappers both seed correctly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.callgraph import CallGraph, local_class_bindings
from repro.lint.config import LintConfig
from repro.lint.scopes import FunctionInfo, dotted_name

ESCAPE_COORDINATOR = "coordinator"
ESCAPE_CALLBACK = "callback-shared"
ESCAPE_WORKER = "worker-local"


@dataclass
class EscapeLattice:
    """Escape classification for every project function."""

    #: fq -> predecessor fq on a path from a callback seed (BFS tree)
    callback_shared: dict[str, "str | None"] = field(default_factory=dict)
    #: fq -> predecessor fq on a path from a worker seed
    worker_local: dict[str, "str | None"] = field(default_factory=dict)
    #: seed fq -> human-readable registration site ("module:line")
    callback_seeds: dict[str, str] = field(default_factory=dict)
    worker_seeds: dict[str, str] = field(default_factory=dict)

    def classify(self, fq: str) -> str:
        if fq in self.callback_shared:
            return ESCAPE_CALLBACK
        if fq in self.worker_local:
            return ESCAPE_WORKER
        return ESCAPE_COORDINATOR

    def chain(self, graph: CallGraph, fq: str) -> "list[str]":
        """Root-first path from the callback seed that shares ``fq``."""
        return graph.chain(self.callback_shared, fq)


def build_escape_lattice(graph: CallGraph, config: LintConfig) -> EscapeLattice:
    """Infer concurrency seeds from registration sites and close over calls."""
    lattice = EscapeLattice()
    callback_roots: list[str] = []
    worker_roots: list[str] = []
    for fn in graph.functions.values():
        for target, kind, node in _seed_sites(graph, fn, config):
            where = f"{fn.module.name}:{node.lineno}"
            if kind == ESCAPE_CALLBACK:
                callback_roots.append(target.fq)
                lattice.callback_seeds.setdefault(target.fq, where)
            else:
                worker_roots.append(target.fq)
                lattice.worker_seeds.setdefault(target.fq, where)
    lattice.callback_shared = graph.reachable_from(sorted(set(callback_roots)))
    lattice.worker_local = graph.reachable_from(sorted(set(worker_roots)))
    return lattice


def _seed_sites(graph: CallGraph, fn: FunctionInfo, config: LintConfig):
    """(target function, escape kind, registration node) triples in ``fn``."""
    scope = graph.scopes.scope_of(fn.module)
    bindings = None  # computed lazily; most functions register nothing
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        candidates: "list[tuple[ast.expr, str]]" = []
        if isinstance(func, ast.Attribute):
            if func.attr in config.callback_register_attrs and node.args:
                candidates.append((node.args[0], ESCAPE_CALLBACK))
            elif func.attr in config.worker_submit_attrs and node.args:
                candidates.append((node.args[0], ESCAPE_WORKER))
        raw = dotted_name(func)
        if raw is not None:
            fq = graph.scopes.resolve_in_module(scope, raw, fn.local_imports)
            if fq in config.thread_factories:
                for kw in node.keywords:
                    if kw.arg in ("target", "function"):
                        candidates.append((kw.value, ESCAPE_CALLBACK))
                if len(node.args) >= 2:  # threading.Timer(interval, function)
                    candidates.append((node.args[1], ESCAPE_CALLBACK))
        for expr, kind in candidates:
            if bindings is None:
                bindings = local_class_bindings(graph.scopes, fn)
            target = _resolve_callable(graph, fn, scope, bindings, expr)
            if target is not None:
                yield target, kind, node


def _resolve_callable(graph, fn, scope, bindings, expr) -> "FunctionInfo | None":
    """The project function a callback expression designates, if any."""
    if isinstance(expr, ast.Lambda):
        # `lambda f: handler(f)` — classify what the wrapper invokes
        body = expr.body
        if isinstance(body, ast.Call):
            return _resolve_callable(graph, fn, scope, bindings, body.func)
        return None
    if isinstance(expr, ast.Call):
        # functools.partial(handler, ...) freezes args around `handler`
        raw = dotted_name(expr.func)
        fq = (
            graph.scopes.resolve_in_module(scope, raw, fn.local_imports)
            if raw is not None
            else None
        )
        if fq == "functools.partial" and expr.args:
            return _resolve_callable(graph, fn, scope, bindings, expr.args[0])
        return None
    if not isinstance(expr, (ast.Name, ast.Attribute)):
        return None
    raw = dotted_name(expr)
    if raw is None:
        return None
    head, _, rest = raw.partition(".")
    if head == "self" and fn.class_name is not None and rest and "." not in rest:
        own = scope.classes.get(fn.class_name)
        if own is not None:
            return graph.scopes.resolve_method(own, rest)
        return None
    if head in bindings and rest and "." not in rest:
        return graph.scopes.resolve_method(bindings[head], rest)
    fq = graph.scopes.resolve_in_module(scope, raw, fn.local_imports)
    if fq is None:
        return None
    return graph.scopes.resolve_function(fq)
