"""Orchestration: load a project, run rules, filter, and report.

With ``jobs > 1`` the selected rules are partitioned round-robin across
a fork-based ``ProcessPoolExecutor``.  The parent builds the analysis
context (parsed project, scope table, call graph) *once* and the forked
workers inherit it copy-on-write, so the fixed cost is paid once and
only rule execution fans out.  Findings are reassembled in rule order,
making the output byte-identical to a serial run.  Rule partitioning
(rather than module partitioning) keeps the interprocedural rules
whole — a call-graph walk cannot see only half the project.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.findings import (
    Baseline,
    Finding,
    apply_suppressions,
    assign_fingerprints,
)
from repro.lint.loader import LintUsageError, Project, load_project
from repro.lint.report import LintResult
from repro.lint.rules import RULES, LintContext

#: Parent-side slot the forked workers read the prepared context from.
_SHARED: dict = {}


def _run_rule_batch(codes: "list[str]") -> "list[Finding]":
    """Worker-side: run one batch of rules over the inherited context."""
    ctx = _SHARED["ctx"]
    findings: list[Finding] = []
    for code in codes:
        findings.extend(RULES[code].run(ctx))
    return findings


def _run_parallel(
    ctx: LintContext, selected: "list[str]", jobs: int
) -> "list[Finding] | None":
    """Fan rules out across processes; None means "fall back to serial"."""
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    jobs = min(jobs, len(selected))
    if jobs < 2:
        return None
    try:
        fork = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: serial is still correct
        return None
    # Force the lazy layers now so every worker inherits them built.
    ctx.scopes
    ctx.callgraph
    by_code: dict[str, list[Finding]] = {}
    _SHARED["ctx"] = ctx
    try:
        with ProcessPoolExecutor(max_workers=jobs, mp_context=fork) as pool:
            # one task per rule: the pool load-balances around the
            # expensive rules instead of a static batch assignment
            futures = [
                pool.submit(_run_rule_batch, [code]) for code in selected
            ]
            for code, future in zip(selected, futures):
                by_code[code] = future.result()
    except OSError:  # no usable multiprocessing here
        return None
    finally:
        _SHARED.pop("ctx", None)
    # reassemble in rule order: identical to the serial concatenation
    return [f for code in selected for f in by_code.get(code, [])]


def run_lint(
    paths: "list[str | Path] | None" = None,
    *,
    project: "Project | None" = None,
    config: "LintConfig | None" = None,
    rules: "list[str] | None" = None,
    baseline: "Baseline | None" = None,
    jobs: int = 1,
) -> LintResult:
    """Lint ``paths`` (or a pre-loaded project) and return the result.

    ``rules`` selects a subset by code; ``baseline`` marks grandfathered
    fingerprints as non-failing.  Suppression comments are always
    honoured.  ``jobs`` > 1 partitions rules across forked worker
    processes (0 means one per CPU).
    """
    if project is None:
        if not paths:
            raise LintUsageError("no paths given")
        project = load_project(list(paths))
    config = config or LintConfig()
    selected = _select_rules(rules)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    ctx = LintContext(project=project, config=config)
    findings = None
    if jobs > 1:
        findings = _run_parallel(ctx, selected, jobs)
    if findings is None:
        findings = []
        for code in selected:
            findings.extend(RULES[code].run(ctx))
    assign_fingerprints(findings)
    apply_suppressions(findings, project.modules)
    if baseline is not None:
        baseline.apply(findings)
    return LintResult(
        findings=findings,
        n_modules=len(project),
        rules_run=tuple(selected),
    )


def _select_rules(rules: "list[str] | None") -> "list[str]":
    if rules is None:
        return sorted(RULES)
    unknown = [code for code in rules if code not in RULES]
    if unknown:
        raise LintUsageError(
            f"unknown rule(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return sorted(dict.fromkeys(rules))
