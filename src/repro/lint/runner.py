"""Orchestration: load a project, run rules, filter, and report."""

from __future__ import annotations

from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.findings import (
    Baseline,
    apply_suppressions,
    assign_fingerprints,
)
from repro.lint.loader import LintUsageError, Project, load_project
from repro.lint.report import LintResult
from repro.lint.rules import RULES, LintContext


def run_lint(
    paths: "list[str | Path] | None" = None,
    *,
    project: "Project | None" = None,
    config: "LintConfig | None" = None,
    rules: "list[str] | None" = None,
    baseline: "Baseline | None" = None,
) -> LintResult:
    """Lint ``paths`` (or a pre-loaded project) and return the result.

    ``rules`` selects a subset by code; ``baseline`` marks grandfathered
    fingerprints as non-failing.  Suppression comments are always
    honoured.
    """
    if project is None:
        if not paths:
            raise LintUsageError("no paths given")
        project = load_project(list(paths))
    config = config or LintConfig()
    selected = _select_rules(rules)
    ctx = LintContext(project=project, config=config)
    findings = []
    for code in selected:
        findings.extend(RULES[code].run(ctx))
    assign_fingerprints(findings)
    apply_suppressions(findings, project.modules)
    if baseline is not None:
        baseline.apply(findings)
    return LintResult(
        findings=findings,
        n_modules=len(project),
        rules_run=tuple(selected),
    )


def _select_rules(rules: "list[str] | None") -> "list[str]":
    if rules is None:
        return sorted(RULES)
    unknown = [code for code in rules if code not in RULES]
    if unknown:
        raise LintUsageError(
            f"unknown rule(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return sorted(dict.fromkeys(rules))
