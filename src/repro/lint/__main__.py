"""CLI entry point: ``python -m repro.lint [paths...]``.

Exit codes: 0 clean (or fully suppressed/baselined), 1 findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.findings import DEFAULT_BASELINE, Baseline
from repro.lint.loader import LintUsageError
from repro.lint.report import render_json, render_text
from repro.lint.rules import RULES
from repro.lint.runner import run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "determinism & concurrency linter enforcing the runtime's "
            "bit-identity contract (docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files, package dirs, or source roots (e.g. src/)"
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report everything)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run rules across N worker processes (0 = one per CPU)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show suppressed and baselined findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule codes and exit"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}: {RULES[code].summary}")
        return 0
    if not args.paths:
        print("error: no paths given (try: python -m repro.lint src/)", file=sys.stderr)
        return 2
    rules = None
    if args.rules:
        rules = [part.strip() for part in args.rules.split(",") if part.strip()]
    baseline = None if args.no_baseline else Baseline.load(args.baseline)
    try:
        result = run_lint(
            list(args.paths), rules=rules, baseline=baseline, jobs=args.jobs
        )
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        Baseline.write(args.baseline, result.findings)
        print(
            f"wrote {len([f for f in result.findings if not f.suppressed])} "
            f"finding(s) to {args.baseline}"
        )
        return 0
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
