"""Shared mutation/lock modelling for the concurrency rules.

REP-UNLOCKED-GLOBAL, REP-PURE-TASK, and REP-THREAD-ESCAPE all need the
same three facts about code: which module-level names hold mutable
containers, which names hold locks, and whether a given statement
mutates a watched name while (not) holding a lock.  This module owns
that logic so the rules stay small and agree on what "a mutation" is.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.scopes import FunctionInfo, ModuleScope, ScopeTable, dotted_name

#: Container methods that mutate the receiver in place.
MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "remove",
        "discard",
    }
)

MUTABLE_FACTORIES = frozenset(
    {
        "builtins.dict",
        "builtins.list",
        "builtins.set",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    }
)

LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)


def is_mutable_literal(expr: ast.expr) -> bool:
    return isinstance(
        expr,
        (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
    )


def lockish_name(name: str, hints: "tuple[str, ...]") -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in hints)


class ModuleFacts:
    """Mutable globals and lock names declared at module level."""

    def __init__(
        self, scopes: ScopeTable, config: LintConfig, scope: ModuleScope
    ) -> None:
        self.mutable_globals: set[str] = set()
        self.locks: set[str] = set()
        hints = config.lock_name_hints
        for name, value in scope.module_assigns.items():
            if name.startswith("__"):
                continue
            if is_mutable_literal(value):
                self.mutable_globals.add(name)
                continue
            if isinstance(value, ast.Call):
                raw = dotted_name(value.func)
                fq = (
                    scopes.resolve_in_module(scope, raw)
                    if raw is not None
                    else None
                )
                if fq in MUTABLE_FACTORIES:
                    self.mutable_globals.add(name)
                elif fq in LOCK_FACTORIES or (
                    raw is not None and lockish_name(raw.split(".")[-1], hints)
                ):
                    self.locks.add(name)
                elif lockish_name(name, hints):
                    self.locks.add(name)


def guarded(
    with_stack: "list[ast.expr]",
    locks: "set[str]",
    hints: "tuple[str, ...]",
) -> bool:
    """True when any enclosing ``with`` item looks like a lock."""
    for expr in with_stack:
        name = dotted_name(expr)
        if name is None:
            continue
        last = name.split(".")[-1]
        if last in locks or lockish_name(last, hints):
            return True
    return False


def global_rebinds(fn: FunctionInfo) -> "set[str]":
    """Names the function declares ``global`` (rebinding mutates them)."""
    out: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            out.update(node.names)
    return out


def walk_mutations(
    fn: FunctionInfo,
    watched: "set[str]",
    *,
    locks: "set[str]",
    hints: "tuple[str, ...]",
    self_attrs: bool = False,
):
    """Yield ``(node, name, action, guarded)`` for mutations of watched state.

    ``watched`` holds module-global names; with ``self_attrs`` the walk
    also reports mutation of any ``self.<attr>`` container (the name is
    then reported as ``"self.<attr>"``).  ``guarded`` reflects whether a
    lock-looking ``with`` block encloses the mutation.
    """
    rebindable = global_rebinds(fn)

    def root_name(target: ast.expr) -> "str | None":
        if isinstance(target, ast.Subscript):
            inner = target.value
            if isinstance(inner, ast.Name) and inner.id in watched:
                return inner.id
            if (
                self_attrs
                and isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
            ):
                return f"self.{inner.attr}"
        return None

    def visit(node: ast.AST, with_stack: "list[ast.expr]"):
        if isinstance(node, ast.With):
            items = [item.context_expr for item in node.items]
            for child in node.body:
                yield from visit(child, with_stack + items)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node is not fn.node
        ):
            return  # nested defs are analyzed as their own functions
        held = guarded(with_stack, locks, hints)
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                root = root_name(target)
                if root is not None:
                    yield node, root, "item assignment", held
                elif isinstance(target, ast.Name) and target.id in rebindable:
                    yield node, target.id, "rebinding", held
                elif (
                    self_attrs
                    and isinstance(node, ast.AugAssign)
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield node, f"self.{target.attr}", "augmented assignment", held
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = root_name(target)
                if root is not None:
                    yield node, root, "item deletion", held
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
                owner = func.value
                if isinstance(owner, ast.Name) and owner.id in watched:
                    yield node, owner.id, f".{func.attr}() mutation", held
                elif (
                    self_attrs
                    and isinstance(owner, ast.Attribute)
                    and isinstance(owner.value, ast.Name)
                    and owner.value.id == "self"
                ):
                    yield (
                        node,
                        f"self.{owner.attr}",
                        f".{func.attr}() mutation",
                        held,
                    )
        for child in ast.iter_child_nodes(node):
            yield from visit(child, with_stack)

    for stmt in fn.node.body:
        yield from visit(stmt, [])


def global_reads(fn: FunctionInfo, watched: "set[str]"):
    """Yield ``(node, name)`` for loads of watched module-global names."""
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in watched
        ):
            yield node, node.id
