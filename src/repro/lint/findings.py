"""The finding model, suppression filtering, and the baseline file.

Fingerprints are deliberately line-number-free: a finding is identified
by (rule, module, stripped source text of the flagged line, occurrence
index among identical lines).  Inserting code above a grandfathered
finding therefore does not invalidate the baseline, while editing the
flagged line itself does — exactly the invalidation you want.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.loader import LintUsageError, SourceModule

BASELINE_VERSION = 1
DEFAULT_BASELINE = "lint-baseline.json"


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule: str
    module: str
    path: str
    line: int
    col: int
    message: str
    #: root-first call chain for call-graph rules, e.g. task -> helper
    chain: tuple[str, ...] = ()
    line_text: str = ""
    fingerprint: str = ""
    suppressed: bool = False
    baselined: bool = False
    #: "error" findings fail the gate; "info" findings are advisory
    #: (e.g. a hashed-but-never-read key field) and never affect the
    #: exit code.
    severity: str = "error"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.chain:
            out["chain"] = list(self.chain)
        if self.suppressed:
            out["suppressed"] = True
        if self.baselined:
            out["baselined"] = True
        if self.severity != "error":
            out["severity"] = self.severity
        return out


def make_finding(
    rule: str,
    module: SourceModule,
    line: int,
    col: int,
    message: str,
    chain: "tuple[str, ...]" = (),
    severity: str = "error",
) -> Finding:
    return Finding(
        rule=rule,
        module=module.name,
        path=str(module.path),
        line=line,
        col=col,
        message=message,
        chain=chain,
        line_text=module.line_text(line).strip(),
        severity=severity,
    )


def assign_fingerprints(findings: "list[Finding]") -> None:
    """Stable ids: (rule, module, line text, occurrence among identical)."""
    ordered = sorted(findings, key=lambda f: (f.module, f.line, f.col, f.rule))
    occurrence: dict[tuple, int] = {}
    for finding in ordered:
        key = (finding.rule, finding.module, finding.line_text)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        raw = "\x00".join(
            [finding.rule, finding.module, finding.line_text, str(index)]
        )
        finding.fingerprint = hashlib.sha256(raw.encode()).hexdigest()[:16]


def apply_suppressions(
    findings: "list[Finding]", modules: "dict[str, SourceModule]"
) -> None:
    for finding in findings:
        module = modules.get(finding.module)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            finding.suppressed = True


@dataclass
class Baseline:
    """Grandfathered findings committed alongside the code."""

    path: "Path | None" = None
    fingerprints: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: "str | Path | None") -> "Baseline":
        if path is None:
            return cls()
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise LintUsageError(f"unreadable baseline {path}: {exc}") from exc
        entries = data.get("findings", []) if isinstance(data, dict) else []
        fingerprints = {
            entry["fingerprint"]
            for entry in entries
            if isinstance(entry, dict) and "fingerprint" in entry
        }
        return cls(path=path, fingerprints=fingerprints)

    def apply(self, findings: "list[Finding]") -> None:
        for finding in findings:
            if finding.suppressed:
                continue
            if finding.fingerprint in self.fingerprints:
                finding.baselined = True

    @staticmethod
    def write(path: "str | Path", findings: "list[Finding]") -> None:
        """Persist the current (unsuppressed) findings as the new baseline."""
        entries = [
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "module": finding.module,
                "line": finding.line,
                "message": finding.message,
            }
            for finding in sorted(
                findings, key=lambda f: (f.module, f.line, f.col, f.rule)
            )
            if not finding.suppressed
        ]
        payload = {"version": BASELINE_VERSION, "findings": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
