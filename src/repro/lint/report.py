"""Text and JSON rendering of lint results."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.lint.findings import Finding


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    n_modules: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def active(self) -> "list[Finding]":
        """Findings that count against the run: not suppressed/baselined."""
        return [
            finding
            for finding in self.findings
            if not finding.suppressed and not finding.baselined
        ]

    @property
    def errors(self) -> "list[Finding]":
        """Active findings that fail the gate (info severity does not)."""
        return [f for f in self.active if f.severity == "error"]

    @property
    def n_suppressed(self) -> int:
        return sum(1 for finding in self.findings if finding.suppressed)

    @property
    def n_baselined(self) -> int:
        return sum(1 for finding in self.findings if finding.baselined)

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def sorted_findings(self) -> "list[Finding]":
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )


def render_text(result: LintResult, verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in result.sorted_findings():
        if finding.suppressed or finding.baselined:
            if not verbose:
                continue
            tag = " [suppressed]" if finding.suppressed else " [baselined]"
        else:
            tag = ""
        if finding.severity != "error":
            tag = f" [{finding.severity}]{tag}"
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.message}{tag}"
        )
        if finding.chain and len(finding.chain) > 1:
            lines.append(f"    call chain: {' -> '.join(finding.chain)}")
    active = len(result.active)
    n_info = len(result.active) - len(result.errors)
    info_note = f", {n_info} info" if n_info else ""
    summary = (
        f"{active} finding{'s' if active != 1 else ''}"
        f" ({result.n_suppressed} suppressed, {result.n_baselined} baselined"
        f"{info_note})"
        f" across {result.n_modules} modules"
        f" [{', '.join(result.rules_run)}]"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "findings": [
            finding.to_dict() for finding in result.sorted_findings()
        ],
        "summary": {
            "active": len(result.active),
            "errors": len(result.errors),
            "suppressed": result.n_suppressed,
            "baselined": result.n_baselined,
            "modules": result.n_modules,
            "rules": list(result.rules_run),
        },
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
