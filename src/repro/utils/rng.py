"""Deterministic random-number handling.

Every stochastic component in the library (channel generators, dataset
builders, trainers, link simulators) accepts either an integer seed or a
``numpy.random.Generator`` and converts it through :func:`as_generator`,
so experiments are reproducible end to end from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn", "RngMixin"]

SeedLike = "int | np.random.Generator | None"


def as_generator(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngMixin:
    """Mixin giving a class a seeded ``self.rng`` attribute."""

    def __init__(self, seed: "int | np.random.Generator | None" = None) -> None:
        self.rng = as_generator(seed)

    def reseed(self, seed: "int | np.random.Generator | None") -> None:
        """Replace the internal generator (e.g. between repetitions)."""
        self.rng = as_generator(seed)
