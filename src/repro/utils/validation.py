"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, ShapeError

__all__ = ["check_positive", "check_in_range", "check_shape", "check_member"]


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ConfigurationError` unless ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    inclusive: bool = True,
) -> None:
    """Raise unless ``low <= value <= high`` (or strict, per ``inclusive``)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bounds = "[%s, %s]" if inclusive else "(%s, %s)"
        raise ConfigurationError(
            f"{name} must be in {bounds % (low, high)}, got {value!r}"
        )


def check_shape(name: str, array: np.ndarray, shape: Sequence[int | None]) -> None:
    """Raise unless ``array.shape`` matches ``shape`` (None = wildcard)."""
    actual = np.shape(array)
    if len(actual) != len(shape):
        raise ShapeError(
            f"{name} must have {len(shape)} dimensions {tuple(shape)}, "
            f"got shape {actual}"
        )
    for got, want in zip(actual, shape):
        if want is not None and got != want:
            raise ShapeError(f"{name} must have shape {tuple(shape)}, got {actual}")


def check_member(name: str, value: object, allowed: Iterable[object]) -> None:
    """Raise unless ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed}, got {value!r}")
