"""Deterministic JSON artifact writing.

Every manifest emitter in the reproduction (`EngineRun`,
`ZooBuildResult`, `NetworkCampaignResult`) promises byte-identical
output for identical content — the artifacts are diffed across worker
counts and cold/warm runs.  That contract (2-space indent, sorted keys,
one trailing newline) lives here once so a format tweak can never move
one artifact family out of sync with the others.
"""

from __future__ import annotations

import json
import os

from repro.errors import ConfigurationError

__all__ = ["write_json_artifact"]


def write_json_artifact(path: "str | os.PathLike", payload) -> None:
    """Write ``payload`` as a deterministic JSON file at ``path``.

    Parent directories are created as needed.  The write is atomic
    (temp file + rename, pid-stamped like the runtime stores): a writer
    killed mid-write leaves only a ``<name>.tmp.<pid>`` file — never a
    truncated artifact — and the runtime stores' stale-temp sweeper
    (:func:`repro.runtime.cache.sweep_stale_tmp`) reclaims it.
    """
    if not str(path):
        raise ConfigurationError("artifact path must be non-empty")
    path = str(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
