"""Plain-text table rendering for benchmark output.

The benchmark harness reproduces the paper's tables and figure series as
aligned ASCII tables on stdout, so results can be compared against the
paper without a plotting stack.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object, precision: int = 4) -> str:
    """Format one table cell: floats get fixed precision, rest -> str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    text_rows = [[format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(separator))
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
