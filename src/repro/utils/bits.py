"""MSB-first bit-stream packing for over-the-air frame codecs.

The 802.11 compressed beamforming report packs quantized angle codes of
heterogeneous widths (``b_phi``/``b_psi`` bits) back-to-back into octets.
:class:`BitWriter` and :class:`BitReader` implement that wire format:
values are written most-significant-bit first and the final octet is
zero-padded, matching how the feedback frames in ``repro.standard.cbf``
are laid out.

Performance notes: the writer accumulates into one preallocated,
amortized-doubling ``uint8`` buffer (one ``np.packbits`` at the end),
per-width shift/weight tables are cached module-wide so scalar writes
allocate nothing, and :meth:`BitWriter.write_bits` /
:meth:`BitReader.read_bits` move whole pre-expanded bit blocks in a
single copy — the path the vectorized CBF codec uses to pack a full
multi-tone angle payload per call.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeedbackError

__all__ = ["BitWriter", "BitReader", "bits_to_bytes", "bytes_to_bits"]

#: Cached MSB-first shift vectors, keyed by field width.
_SHIFT_CACHE: dict[int, np.ndarray] = {}
#: Cached MSB-first bit weights (1 << shift), keyed by field width.
_WEIGHT_CACHE: dict[int, np.ndarray] = {}


def _shifts(width: int) -> np.ndarray:
    table = _SHIFT_CACHE.get(width)
    if table is None:
        table = np.arange(width - 1, -1, -1, dtype=np.int64)
        _SHIFT_CACHE[width] = table
    return table


def _weights(width: int) -> np.ndarray:
    table = _WEIGHT_CACHE.get(width)
    if table is None:
        table = np.left_shift(np.int64(1), _shifts(width))
        _WEIGHT_CACHE[width] = table
    return table


def _check_width(width: int) -> None:
    if width < 1 or width > 64:
        raise FeedbackError(f"field width must be in [1, 64], got {width}")


def bits_to_bytes(n_bits: int) -> int:
    """Octets needed to hold ``n_bits`` bits (zero-padded)."""
    if n_bits < 0:
        raise FeedbackError("bit count must be non-negative")
    return (n_bits + 7) // 8


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Expand a byte string into an MSB-first 0/1 array."""
    raw = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(raw)


class BitWriter:
    """Accumulates unsigned integers of arbitrary width into a byte string."""

    def __init__(self, capacity: int = 256) -> None:
        self._buf = np.empty(max(int(capacity), 8), dtype=np.uint8)
        self._n_bits = 0

    @property
    def bit_length(self) -> int:
        """Bits written so far (before padding)."""
        return self._n_bits

    def _reserve(self, extra: int) -> int:
        """Grow the buffer for ``extra`` more bits; return the write offset."""
        start = self._n_bits
        needed = start + extra
        if needed > self._buf.size:
            grown = np.empty(max(needed, 2 * self._buf.size), dtype=np.uint8)
            grown[:start] = self._buf[:start]
            self._buf = grown
        self._n_bits = needed
        return start

    def write(self, value: int, width: int) -> None:
        """Append one unsigned integer using ``width`` bits, MSB first."""
        _check_width(width)
        value = int(value)
        if value < 0 or value >= (1 << width):
            raise FeedbackError(
                f"value {value} does not fit in {width} unsigned bits"
            )
        start = self._reserve(width)
        self._buf[start : start + width] = (value >> _shifts(width)) & 1

    def write_array(self, values: np.ndarray, width: int) -> None:
        """Append a flat array of equal-width unsigned integers."""
        _check_width(width)
        values = np.asarray(values, dtype=np.int64).reshape(-1)
        if values.size == 0:
            return
        if values.min() < 0 or values.max() >= (1 << width):
            raise FeedbackError(
                f"array values outside [0, 2^{width}) cannot be packed"
            )
        bits = (values[:, None] >> _shifts(width)[None, :]) & 1
        start = self._reserve(width * values.size)
        self._buf[start : self._n_bits] = bits.reshape(-1)

    def write_bits(self, bits: np.ndarray) -> None:
        """Append a flat, pre-expanded MSB-first 0/1 array verbatim."""
        bits = np.asarray(bits).reshape(-1)
        if bits.size == 0:
            return
        if np.any((bits != 0) & (bits != 1)):
            raise FeedbackError("write_bits expects 0/1 values")
        start = self._reserve(bits.size)
        self._buf[start : self._n_bits] = bits

    def getvalue(self) -> bytes:
        """Return the packed bytes (final octet zero-padded)."""
        if self._n_bits == 0:
            return b""
        return np.packbits(self._buf[: self._n_bits]).tobytes()


class BitReader:
    """Reads unsigned integers of arbitrary width from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._bits = bytes_to_bits(data)
        self._pos = 0

    @property
    def bits_remaining(self) -> int:
        """Unread bits left in the stream (includes any pad bits)."""
        return self._bits.size - self._pos

    def _consume(self, count: int) -> np.ndarray:
        if self._pos + count > self._bits.size:
            raise FeedbackError(
                f"bit stream exhausted: need {count} bits, "
                f"have {self.bits_remaining}"
            )
        chunk = self._bits[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read(self, width: int) -> int:
        """Consume ``width`` bits and return them as an unsigned integer."""
        _check_width(width)
        chunk = self._consume(width)
        return int(np.dot(chunk.astype(np.int64), _weights(width)))

    def read_array(self, count: int, width: int) -> np.ndarray:
        """Consume ``count`` equal-width fields into an int64 array."""
        if count < 0:
            raise FeedbackError("count must be non-negative")
        _check_width(width)
        chunk = self._consume(count * width)
        matrix = chunk.reshape(count, width).astype(np.int64)
        return matrix @ _weights(width)

    def read_bits(self, count: int) -> np.ndarray:
        """Consume ``count`` raw bits as an MSB-first 0/1 ``uint8`` array."""
        if count < 0:
            raise FeedbackError("count must be non-negative")
        return self._consume(count).copy()

    def align_to_byte(self) -> None:
        """Skip pad bits up to the next octet boundary."""
        remainder = self._pos % 8
        if remainder:
            self._pos += 8 - remainder
