"""MSB-first bit-stream packing for over-the-air frame codecs.

The 802.11 compressed beamforming report packs quantized angle codes of
heterogeneous widths (``b_phi``/``b_psi`` bits) back-to-back into octets.
:class:`BitWriter` and :class:`BitReader` implement that wire format:
values are written most-significant-bit first and the final octet is
zero-padded, matching how the feedback frames in ``repro.standard.cbf``
are laid out.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeedbackError

__all__ = ["BitWriter", "BitReader", "bits_to_bytes", "bytes_to_bits"]


def bits_to_bytes(n_bits: int) -> int:
    """Octets needed to hold ``n_bits`` bits (zero-padded)."""
    if n_bits < 0:
        raise FeedbackError("bit count must be non-negative")
    return (n_bits + 7) // 8


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Expand a byte string into an MSB-first 0/1 array."""
    raw = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(raw)


class BitWriter:
    """Accumulates unsigned integers of arbitrary width into a byte string."""

    def __init__(self) -> None:
        self._bits: list[np.ndarray] = []
        self._n_bits = 0

    @property
    def bit_length(self) -> int:
        """Bits written so far (before padding)."""
        return self._n_bits

    def write(self, value: int, width: int) -> None:
        """Append one unsigned integer using ``width`` bits, MSB first."""
        if width < 1 or width > 64:
            raise FeedbackError(f"field width must be in [1, 64], got {width}")
        value = int(value)
        if value < 0 or value >= (1 << width):
            raise FeedbackError(
                f"value {value} does not fit in {width} unsigned bits"
            )
        bits = (value >> np.arange(width - 1, -1, -1)) & 1
        self._bits.append(bits.astype(np.uint8))
        self._n_bits += width

    def write_array(self, values: np.ndarray, width: int) -> None:
        """Append a flat array of equal-width unsigned integers."""
        if width < 1 or width > 64:
            raise FeedbackError(f"field width must be in [1, 64], got {width}")
        values = np.asarray(values, dtype=np.int64).reshape(-1)
        if values.size == 0:
            return
        if values.min() < 0 or values.max() >= (1 << width):
            raise FeedbackError(
                f"array values outside [0, 2^{width}) cannot be packed"
            )
        shifts = np.arange(width - 1, -1, -1)
        bits = ((values[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
        self._bits.append(bits.reshape(-1))
        self._n_bits += width * values.size

    def getvalue(self) -> bytes:
        """Return the packed bytes (final octet zero-padded)."""
        if not self._bits:
            return b""
        stream = np.concatenate(self._bits)
        return np.packbits(stream).tobytes()


class BitReader:
    """Reads unsigned integers of arbitrary width from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._bits = bytes_to_bits(data)
        self._pos = 0

    @property
    def bits_remaining(self) -> int:
        """Unread bits left in the stream (includes any pad bits)."""
        return self._bits.size - self._pos

    def read(self, width: int) -> int:
        """Consume ``width`` bits and return them as an unsigned integer."""
        if width < 1 or width > 64:
            raise FeedbackError(f"field width must be in [1, 64], got {width}")
        if self._pos + width > self._bits.size:
            raise FeedbackError(
                f"bit stream exhausted: need {width} bits, "
                f"have {self.bits_remaining}"
            )
        chunk = self._bits[self._pos : self._pos + width]
        self._pos += width
        weights = 1 << np.arange(width - 1, -1, -1, dtype=np.int64)
        return int(np.dot(chunk.astype(np.int64), weights))

    def read_array(self, count: int, width: int) -> np.ndarray:
        """Consume ``count`` equal-width fields into an int64 array."""
        if count < 0:
            raise FeedbackError("count must be non-negative")
        if width < 1 or width > 64:
            raise FeedbackError(f"field width must be in [1, 64], got {width}")
        total = count * width
        if self._pos + total > self._bits.size:
            raise FeedbackError(
                f"bit stream exhausted: need {total} bits, "
                f"have {self.bits_remaining}"
            )
        chunk = self._bits[self._pos : self._pos + total]
        self._pos += total
        matrix = chunk.reshape(count, width).astype(np.int64)
        weights = 1 << np.arange(width - 1, -1, -1, dtype=np.int64)
        return matrix @ weights

    def align_to_byte(self) -> None:
        """Skip pad bits up to the next octet boundary."""
        remainder = self._pos % 8
        if remainder:
            self._pos += 8 - remainder
