"""Complex-matrix helpers used throughout the PHY and DNN pipelines.

The paper (Sec. IV-D) decouples real and imaginary components of the CSI
matrix ``H`` and the beamforming matrix ``V`` and treats them as
double-sized real vectors before feeding them to the DNN.  This module
centralizes that packing so that the exact layout is defined in one
place, together with the phase-gauge fix that makes the map ``H -> V``
learnable (DESIGN.md Sec. 3.3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "complex_to_real",
    "real_to_complex",
    "fix_phase_gauge",
    "is_unitary_columns",
    "column_correlation",
    "batched_small_inverse",
    "hermitian_inverse_diagonal",
]


def complex_to_real(values: np.ndarray) -> np.ndarray:
    """Pack a complex array into a flat real vector per trailing sample.

    The layout is ``[real..., imag...]`` over the flattened trailing
    dimensions, with the leading axis (if 2-D or higher) treated as the
    batch axis.  A 1-D complex input of length ``n`` becomes a 1-D real
    output of length ``2 n``; an input of shape ``(b, ...)`` becomes
    ``(b, 2 * prod(...))``.
    """
    values = np.asarray(values)
    if values.ndim == 0:
        raise ShapeError("complex_to_real expects at least a 1-D array")
    if values.ndim == 1:
        return np.concatenate([values.real, values.imag]).astype(np.float64)
    batch = values.shape[0]
    flat = values.reshape(batch, -1)
    return np.concatenate([flat.real, flat.imag], axis=1).astype(np.float64)


def real_to_complex(values: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Invert :func:`complex_to_real` back into complex shape ``shape``.

    ``shape`` is the per-sample complex shape.  1-D inputs produce a
    single sample; 2-D inputs are treated as a batch.
    """
    values = np.asarray(values, dtype=np.float64)
    size = int(np.prod(shape))
    if values.ndim == 1:
        if values.shape[0] != 2 * size:
            raise ShapeError(
                f"expected {2 * size} packed reals for complex shape {shape}, "
                f"got {values.shape[0]}"
            )
        return (values[:size] + 1j * values[size:]).reshape(shape)
    if values.shape[1] != 2 * size:
        raise ShapeError(
            f"expected {2 * size} packed reals for complex shape {shape}, "
            f"got {values.shape[1]}"
        )
    real = values[:, :size]
    imag = values[:, size:]
    return (real + 1j * imag).reshape((values.shape[0],) + tuple(shape))


def fix_phase_gauge(bf: np.ndarray) -> np.ndarray:
    """Rotate each column of a beamforming matrix to the standard gauge.

    Right-singular vectors are unique only up to a per-column phase, so a
    supervised ``H -> V`` regression target must pick one representative.
    We use the representative the 802.11 standard itself uses
    (Algorithm 1): multiply each column by ``exp(-j * angle(last row))``
    so the last row becomes real and non-negative.  The standard proves
    this matrix is beamforming-equivalent to the original.

    ``bf`` may be ``(Nt, Nss)`` or batched ``(..., Nt, Nss)``.
    """
    bf = np.asarray(bf, dtype=np.complex128)
    if bf.ndim < 2:
        raise ShapeError("fix_phase_gauge expects a matrix (Nt, Nss)")
    last_row = bf[..., -1:, :]
    phase = np.exp(-1j * np.angle(last_row))
    return bf * phase


def is_unitary_columns(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """Return True when the columns of ``matrix`` are orthonormal."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ShapeError("is_unitary_columns expects a 2-D matrix")
    gram = matrix.conj().T @ matrix
    return bool(np.allclose(gram, np.eye(matrix.shape[1]), atol=tol))


def batched_small_inverse(matrices: np.ndarray) -> np.ndarray:
    """Invert a batch of small square matrices without LAPACK round trips.

    ``np.linalg.inv`` dispatches one LAPACK LU factorization per matrix,
    which dominates hot paths that invert tens of thousands of 2x2/3x3
    Gram matrices (the ZF precoder).  Orders 1-3 use the closed-form
    adjugate/determinant inverse as pure elementwise array math; larger
    orders fall back to ``np.linalg.inv``.  Any matrix whose closed-form
    inverse comes out non-finite (numerically singular) is repaired with
    ``np.linalg.pinv``, matching the LAPACK path's behaviour of falling
    back to the pseudo-inverse.
    """
    matrices = np.asarray(matrices)
    if matrices.ndim < 2 or matrices.shape[-1] != matrices.shape[-2]:
        raise ShapeError(
            f"expected square matrices (..., n, n), got {matrices.shape}"
        )
    n = matrices.shape[-1]
    if n > 3:
        try:
            return np.linalg.inv(matrices)
        except np.linalg.LinAlgError:
            return np.linalg.pinv(matrices)
    a = matrices
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if n == 1:
            inverse = 1.0 / a
        elif n == 2:
            det = a[..., 0, 0] * a[..., 1, 1] - a[..., 0, 1] * a[..., 1, 0]
            inverse = np.empty_like(a)
            inverse[..., 0, 0] = a[..., 1, 1]
            inverse[..., 0, 1] = -a[..., 0, 1]
            inverse[..., 1, 0] = -a[..., 1, 0]
            inverse[..., 1, 1] = a[..., 0, 0]
            inverse /= det[..., None, None]
        else:
            c00 = a[..., 1, 1] * a[..., 2, 2] - a[..., 1, 2] * a[..., 2, 1]
            c01 = a[..., 1, 2] * a[..., 2, 0] - a[..., 1, 0] * a[..., 2, 2]
            c02 = a[..., 1, 0] * a[..., 2, 1] - a[..., 1, 1] * a[..., 2, 0]
            det = (
                a[..., 0, 0] * c00
                + a[..., 0, 1] * c01
                + a[..., 0, 2] * c02
            )
            inverse = np.empty_like(a)
            inverse[..., 0, 0] = c00
            inverse[..., 1, 0] = c01
            inverse[..., 2, 0] = c02
            inverse[..., 0, 1] = (
                a[..., 0, 2] * a[..., 2, 1] - a[..., 0, 1] * a[..., 2, 2]
            )
            inverse[..., 1, 1] = (
                a[..., 0, 0] * a[..., 2, 2] - a[..., 0, 2] * a[..., 2, 0]
            )
            inverse[..., 2, 1] = (
                a[..., 0, 1] * a[..., 2, 0] - a[..., 0, 0] * a[..., 2, 1]
            )
            inverse[..., 0, 2] = (
                a[..., 0, 1] * a[..., 1, 2] - a[..., 0, 2] * a[..., 1, 1]
            )
            inverse[..., 1, 2] = (
                a[..., 0, 2] * a[..., 1, 0] - a[..., 0, 0] * a[..., 1, 2]
            )
            inverse[..., 2, 2] = (
                a[..., 0, 0] * a[..., 1, 1] - a[..., 0, 1] * a[..., 1, 0]
            )
            inverse /= det[..., None, None]
    bad = ~np.isfinite(inverse).all(axis=(-2, -1))
    if np.any(bad):
        inverse[bad] = np.linalg.pinv(a[bad])
    return inverse


def hermitian_inverse_diagonal(matrices: np.ndarray) -> np.ndarray:
    """``diag(A^-1)`` (real) for batches of small Hermitian matrices.

    The ZF noise-calibration step only needs the inverse Gram's
    diagonal (``|ideal gain_i|^2 = sigma_i^2 / [(V†V)^-1]_ii``), so
    computing the full inverse is wasted work.  Orders 1-3 use the
    cofactor/determinant closed form as elementwise array math; larger
    orders take the diagonal of ``np.linalg.inv``.  Entries whose
    closed form comes out non-finite (singular Gram) are repaired with
    ``np.linalg.pinv``.
    """
    matrices = np.asarray(matrices)
    if matrices.ndim < 2 or matrices.shape[-1] != matrices.shape[-2]:
        raise ShapeError(
            f"expected square matrices (..., n, n), got {matrices.shape}"
        )
    n = matrices.shape[-1]
    a = matrices
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if n == 1:
            diagonal = (1.0 / a[..., 0, 0]).real[..., None]
        elif n == 2:
            det = (
                a[..., 0, 0] * a[..., 1, 1] - a[..., 0, 1] * a[..., 1, 0]
            ).real
            diagonal = (
                np.stack([a[..., 1, 1].real, a[..., 0, 0].real], axis=-1)
                / det[..., None]
            )
        elif n == 3:
            m01 = (a[..., 0, 1] * a[..., 1, 0]).real
            m02 = (a[..., 0, 2] * a[..., 2, 0]).real
            m12 = (a[..., 1, 2] * a[..., 2, 1]).real
            d0 = a[..., 0, 0].real
            d1 = a[..., 1, 1].real
            d2 = a[..., 2, 2].real
            c00 = d1 * d2 - m12
            c11 = d0 * d2 - m02
            c22 = d0 * d1 - m01
            det = (
                a[..., 0, 0] * (a[..., 1, 1] * a[..., 2, 2] - a[..., 1, 2] * a[..., 2, 1])
                - a[..., 0, 1] * (a[..., 1, 0] * a[..., 2, 2] - a[..., 1, 2] * a[..., 2, 0])
                + a[..., 0, 2] * (a[..., 1, 0] * a[..., 2, 1] - a[..., 1, 1] * a[..., 2, 0])
            ).real
            diagonal = np.stack([c00, c11, c22], axis=-1) / det[..., None]
        else:
            try:
                return np.diagonal(
                    np.linalg.inv(a), axis1=-2, axis2=-1
                ).real.copy()
            except np.linalg.LinAlgError:
                return np.diagonal(
                    np.linalg.pinv(a), axis1=-2, axis2=-1
                ).real.copy()
    bad = ~np.isfinite(diagonal).all(axis=-1)
    if np.any(bad):
        diagonal[bad] = np.diagonal(
            np.linalg.pinv(a[bad]), axis1=-2, axis2=-1
        ).real
    return diagonal


def column_correlation(lhs: np.ndarray, rhs: np.ndarray) -> float:
    """Mean absolute normalized inner product between matching columns.

    A phase-invariant similarity in [0, 1]: 1.0 means each column pair is
    identical up to a complex phase, 0.0 means orthogonal.  Used to score
    reconstructed beamforming matrices against ground truth.
    """
    lhs = np.asarray(lhs, dtype=np.complex128)
    rhs = np.asarray(rhs, dtype=np.complex128)
    if lhs.shape != rhs.shape:
        raise ShapeError(f"column shape mismatch: {lhs.shape} vs {rhs.shape}")
    if lhs.ndim == 1:
        lhs = lhs[:, None]
        rhs = rhs[:, None]
    num = np.abs(np.sum(lhs.conj() * rhs, axis=-2))
    den = np.linalg.norm(lhs, axis=-2) * np.linalg.norm(rhs, axis=-2)
    den = np.maximum(den, 1e-30)
    return float(np.mean(num / den))
