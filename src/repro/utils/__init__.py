"""Shared utilities: complex/real packing, RNG, validation, tables, artifacts."""

from repro.utils.artifacts import write_json_artifact
from repro.utils.complexmat import (
    complex_to_real,
    real_to_complex,
    fix_phase_gauge,
    is_unitary_columns,
    column_correlation,
)
from repro.utils.bits import BitReader, BitWriter, bits_to_bytes, bytes_to_bits
from repro.utils.rng import RngMixin, as_generator, spawn
from repro.utils.tables import render_table
from repro.utils.validation import (
    check_positive,
    check_in_range,
    check_shape,
    check_member,
)

__all__ = [
    "complex_to_real",
    "real_to_complex",
    "fix_phase_gauge",
    "is_unitary_columns",
    "column_correlation",
    "BitReader",
    "BitWriter",
    "bits_to_bytes",
    "bytes_to_bits",
    "RngMixin",
    "as_generator",
    "spawn",
    "render_table",
    "check_positive",
    "check_in_range",
    "check_shape",
    "check_member",
    "write_json_artifact",
]
