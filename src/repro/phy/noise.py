"""AWGN utilities and SNR conversions."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator

__all__ = ["snr_db_to_linear", "snr_linear_to_db", "noise_power", "awgn"]


def snr_db_to_linear(snr_db: float) -> float:
    """Convert an SNR in dB to a linear power ratio."""
    return float(10.0 ** (snr_db / 10.0))


def snr_linear_to_db(snr_linear: float) -> float:
    """Convert a linear power-ratio SNR to dB."""
    if snr_linear <= 0:
        raise ConfigurationError(f"linear SNR must be positive, got {snr_linear}")
    return float(10.0 * np.log10(snr_linear))


def noise_power(signal_power: float, snr_db: float) -> float:
    """Noise power that realizes ``snr_db`` for a given signal power."""
    if signal_power < 0:
        raise ConfigurationError("signal power must be non-negative")
    return signal_power / snr_db_to_linear(snr_db)


def awgn(
    shape: tuple[int, ...],
    power: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise with total power ``power``.

    Each element is CN(0, power): real and imaginary parts are i.i.d.
    N(0, power/2).
    """
    if power < 0:
        raise ConfigurationError("noise power must be non-negative")
    rng = as_generator(rng)
    scale = np.sqrt(power / 2.0)
    return scale * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))
