"""IEEE 802.11 frame scrambler (Clause 17.3.5.5).

A 7-bit linear-feedback shift register with polynomial ``x^7 + x^4 + 1``
whitens the payload so long runs of identical bits do not bias the
modulator.  Scrambling is an involution: applying the same seed twice
restores the original bits, which is how the receiver descrambles.

The BER link simulator composes scrambler -> BCC encoder -> interleaver
-> QAM, mirroring the real 802.11 transmit chain.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError

__all__ = ["Scrambler", "scramble", "descramble"]


class Scrambler:
    """The 802.11 length-127 scrambling sequence generator."""

    def __init__(self, seed: int = 0b1011101) -> None:
        if not 1 <= seed <= 127:
            raise ConfigurationError(
                f"scrambler seed must be a non-zero 7-bit value, got {seed}"
            )
        self.seed = int(seed)
        self._sequence = self._generate_sequence(self.seed)

    @staticmethod
    def _generate_sequence(seed: int) -> np.ndarray:
        """One full 127-bit period of the LFSR output."""
        state = seed
        out = np.empty(127, dtype=np.int64)
        for i in range(127):
            # Feedback = x7 xor x4 (bits 6 and 3 of the state register).
            feedback = ((state >> 6) ^ (state >> 3)) & 1
            out[i] = feedback
            state = ((state << 1) | feedback) & 0x7F
        return out

    @property
    def sequence(self) -> np.ndarray:
        """The 127-bit scrambling sequence for this seed."""
        return self._sequence.copy()

    def scramble(self, bits: np.ndarray) -> np.ndarray:
        """XOR ``bits`` with the (repeated) scrambling sequence."""
        bits = np.asarray(bits).astype(np.int64).reshape(-1)
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ShapeError("bits must be 0/1")
        if bits.size == 0:
            return bits.copy()
        reps = -(-bits.size // 127)
        keystream = np.tile(self._sequence, reps)[: bits.size]
        return bits ^ keystream

    # Descrambling is the same XOR.
    descramble = scramble


def scramble(bits: np.ndarray, seed: int = 0b1011101) -> np.ndarray:
    """Functional one-shot scramble with a fresh :class:`Scrambler`."""
    return Scrambler(seed).scramble(bits)


def descramble(bits: np.ndarray, seed: int = 0b1011101) -> np.ndarray:
    """Inverse of :func:`scramble` (same operation, same seed)."""
    return Scrambler(seed).scramble(bits)
