"""Zero-forcing MU-MIMO precoding (Sec. 5.2.2 step (4)).

The AP computes ``W = H_EQ (H_EQ† H_EQ)^-1`` from the effective channel
``H_EQ = [V_1 ... V_Ns]``, which nulls inter-user interference:
``V_i† W_j = delta_ij``.  Columns are then normalized to unit power so
the transmit power budget is respected; positive per-column scaling
preserves the zero-interference property.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "zero_forcing",
    "regularized_zero_forcing",
    "normalize_columns",
    "interference_leakage",
]


def zero_forcing(effective_channel: np.ndarray, ridge: float = 0.0) -> np.ndarray:
    """Zero-forcing precoder for ``H_EQ`` of shape ``(Nt, Ns)``.

    ``ridge`` adds Tikhonov regularization (an MMSE-flavoured fallback)
    for nearly collinear user channels; 0 is the paper's pure ZF.
    """
    h_eq = np.asarray(effective_channel, dtype=np.complex128)
    if h_eq.ndim != 2:
        raise ShapeError(f"effective channel must be 2-D, got {h_eq.shape}")
    n_tx, n_users = h_eq.shape
    if n_users > n_tx:
        raise ShapeError(
            f"cannot zero-force {n_users} streams with {n_tx} antennas"
        )
    gram = h_eq.conj().T @ h_eq
    if ridge:
        gram = gram + ridge * np.eye(n_users)
    try:
        inverse = np.linalg.inv(gram)
    except np.linalg.LinAlgError:
        inverse = np.linalg.pinv(gram)
    return h_eq @ inverse


def regularized_zero_forcing(
    effective_channel: np.ndarray,
    noise_power: float,
    total_power: float = 1.0,
) -> np.ndarray:
    """MMSE-style regularized ZF: ``W = H (H† H + (Ns*N0/P) I)^-1``.

    At high SNR this converges to pure zero-forcing; at low SNR the
    regularizer stops the precoder from burning power nulling
    interference that noise would mask anyway.  The paper's procedure is
    pure ZF — this is the textbook comparator used by the precoder
    ablation bench.
    """
    h_eq = np.asarray(effective_channel, dtype=np.complex128)
    if h_eq.ndim != 2:
        raise ShapeError(f"effective channel must be 2-D, got {h_eq.shape}")
    if noise_power < 0:
        raise ShapeError("noise_power must be non-negative")
    if total_power <= 0:
        raise ShapeError("total_power must be positive")
    n_users = h_eq.shape[1]
    ridge = n_users * noise_power / total_power
    return zero_forcing(h_eq, ridge=ridge)


def normalize_columns(precoder: np.ndarray) -> np.ndarray:
    """Scale each precoder column to unit norm (per-user unit power)."""
    precoder = np.asarray(precoder, dtype=np.complex128)
    norms = np.linalg.norm(precoder, axis=0, keepdims=True)
    norms = np.maximum(norms, 1e-30)
    return precoder / norms


def interference_leakage(
    effective_channel: np.ndarray, precoder: np.ndarray
) -> float:
    """Mean squared off-diagonal response — 0 for perfect zero-forcing.

    Measures ``|[H_EQ† W]_{ij}|^2`` for ``i != j`` relative to the mean
    diagonal power, i.e. residual inter-user interference caused by an
    imperfect (e.g. DNN-reconstructed) effective channel.
    """
    h_eq = np.asarray(effective_channel, dtype=np.complex128)
    w = np.asarray(precoder, dtype=np.complex128)
    response = h_eq.conj().T @ w
    diag_power = np.mean(np.abs(np.diag(response)) ** 2)
    off = response - np.diag(np.diag(response))
    off_power = np.mean(np.abs(off) ** 2) if off.size else 0.0
    if diag_power <= 0:
        return float("inf")
    return float(off_power / diag_power)
