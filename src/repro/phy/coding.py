"""Binary convolutional coding (BCC) with Viterbi decoding.

Implements the IEEE 802.11 mother code: constraint length 7, generator
polynomials (133, 171) octal, rate 1/2, with zero-tail termination.
Decoding is hard-decision Viterbi, vectorized over trellis states with
NumPy.  Figure 10 of the paper applies this code at rate 1/2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError

__all__ = ["ConvolutionalCode", "bcc_rate_half"]


class ConvolutionalCode:
    """A rate-1/n feed-forward convolutional code with Viterbi decoding.

    Parameters
    ----------
    polynomials:
        Generator polynomials in octal notation (e.g. ``(0o133, 0o171)``).
    constraint_length:
        Number of taps including the current bit (802.11 uses 7).
    """

    def __init__(
        self,
        polynomials: tuple[int, ...] = (0o133, 0o171),
        constraint_length: int = 7,
    ) -> None:
        if constraint_length < 2:
            raise ConfigurationError("constraint_length must be >= 2")
        if len(polynomials) < 2:
            raise ConfigurationError("need at least two generator polynomials")
        limit = 1 << constraint_length
        for poly in polynomials:
            if not 0 < poly < limit:
                raise ConfigurationError(
                    f"polynomial {poly:o} (octal) out of range for "
                    f"constraint length {constraint_length}"
                )
        self.polynomials = tuple(int(p) for p in polynomials)
        self.constraint_length = int(constraint_length)
        self.n_outputs = len(self.polynomials)
        self.n_states = 1 << (constraint_length - 1)
        self._build_trellis()

    # -- public API -----------------------------------------------------------

    @property
    def rate(self) -> float:
        """Code rate (information bits per coded bit), ignoring the tail."""
        return 1.0 / self.n_outputs

    def encoded_length(self, n_info_bits: int) -> int:
        """Coded bits produced for ``n_info_bits`` including the zero tail."""
        return (n_info_bits + self.constraint_length - 1) * self.n_outputs

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode a flat 0/1 array, appending a zero tail to flush state."""
        bits = np.asarray(bits).astype(np.int64).reshape(-1)
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ShapeError("bits must be 0/1")
        tail = np.zeros(self.constraint_length - 1, dtype=np.int64)
        stream = np.concatenate([bits, tail])
        out = np.empty(stream.size * self.n_outputs, dtype=np.int64)
        state = 0
        for i, bit in enumerate(stream):
            out[i * self.n_outputs : (i + 1) * self.n_outputs] = self._output_table[
                state, bit
            ]
            state = self._next_state[state, bit]
        return out

    def decode(self, coded: np.ndarray) -> np.ndarray:
        """Hard-decision Viterbi decode of a zero-terminated codeword.

        Assumes the encoder started and ended in the all-zero state, as
        :meth:`encode` guarantees.  Add-compare-select is vectorized over
        all trellis states per time step.
        """
        coded = np.asarray(coded).astype(np.int64).reshape(-1)
        if coded.size % self.n_outputs:
            raise ShapeError(
                f"coded length {coded.size} not divisible by {self.n_outputs}"
            )
        n_steps = coded.size // self.n_outputs
        if n_steps < self.constraint_length - 1:
            raise ShapeError("codeword shorter than the termination tail")
        received = coded.reshape(n_steps, self.n_outputs)

        prev_state, prev_input = self._prev_state, self._prev_input
        metric = np.full(self.n_states, 1e18)
        metric[0] = 0.0
        decisions_input = np.empty((n_steps, self.n_states), dtype=np.int8)
        decisions_prev = np.empty((n_steps, self.n_states), dtype=np.int64)
        rows = np.arange(self.n_states)

        for step in range(n_steps):
            symbol = received[step]
            dist = np.sum(
                self._output_table != symbol[None, None, :], axis=2
            ).astype(np.float64)
            # Metric arriving at each target state via its two predecessors.
            cand = metric[prev_state] + dist[prev_state, prev_input]
            choice = np.argmin(cand, axis=1)
            metric = cand[rows, choice]
            decisions_input[step] = prev_input[rows, choice]
            decisions_prev[step] = prev_state[rows, choice]

        state = 0  # zero-tail termination
        bits = np.empty(n_steps, dtype=np.int64)
        for step in range(n_steps - 1, -1, -1):
            bits[step] = decisions_input[step, state]
            state = decisions_prev[step, state]
        return bits[: n_steps - (self.constraint_length - 1)]

    def decode_soft(self, llrs: np.ndarray) -> np.ndarray:
        """Soft-decision Viterbi decode from per-bit LLRs.

        ``llrs`` follow the convention of :meth:`QamModem.llr`: positive
        values favour bit 0.  The branch metric rewards agreement between
        the hypothesized coded bit and the LLR sign/magnitude, which buys
        the usual ~2 dB over hard decisions on an AWGN channel.
        """
        llrs = np.asarray(llrs, dtype=np.float64).reshape(-1)
        if llrs.size % self.n_outputs:
            raise ShapeError(
                f"LLR count {llrs.size} not divisible by {self.n_outputs}"
            )
        n_steps = llrs.size // self.n_outputs
        if n_steps < self.constraint_length - 1:
            raise ShapeError("codeword shorter than the termination tail")
        received = llrs.reshape(n_steps, self.n_outputs)

        prev_state, prev_input = self._prev_state, self._prev_input
        metric = np.full(self.n_states, 1e18)
        metric[0] = 0.0
        decisions_input = np.empty((n_steps, self.n_states), dtype=np.int8)
        decisions_prev = np.empty((n_steps, self.n_states), dtype=np.int64)
        rows = np.arange(self.n_states)
        # Hypothesizing coded bit c against LLR L (positive = bit 0
        # likely) costs max((2c-1) * L, 0): zero when the hypothesis
        # agrees with the sign, |L| when it contradicts it.
        signs = 2.0 * self._output_table - 1.0  # (states, 2, n_outputs)
        for step in range(n_steps):
            llr = received[step]  # (n_outputs,)
            dist = np.maximum(signs * llr[None, None, :], 0.0).sum(axis=2)
            cand = metric[prev_state] + dist[prev_state, prev_input]
            choice = np.argmin(cand, axis=1)
            metric = cand[rows, choice]
            decisions_input[step] = prev_input[rows, choice]
            decisions_prev[step] = prev_state[rows, choice]

        state = 0
        bits = np.empty(n_steps, dtype=np.int64)
        for step in range(n_steps - 1, -1, -1):
            bits[step] = decisions_input[step, state]
            state = decisions_prev[step, state]
        return bits[: n_steps - (self.constraint_length - 1)]

    def decode_batch(self, coded: np.ndarray, n_info_bits: int) -> np.ndarray:
        """Decode a 2-D batch of equal-length codewords row by row."""
        coded = np.asarray(coded)
        if coded.ndim != 2:
            raise ShapeError("decode_batch expects a 2-D array")
        out = np.empty((coded.shape[0], n_info_bits), dtype=np.int64)
        for row in range(coded.shape[0]):
            decoded = self.decode(coded[row])
            if decoded.size != n_info_bits:
                raise ShapeError(
                    f"decoded {decoded.size} bits, expected {n_info_bits}"
                )
            out[row] = decoded
        return out

    # -- internals --------------------------------------------------------------

    def _build_trellis(self) -> None:
        states = np.arange(self.n_states)
        self._next_state = np.empty((self.n_states, 2), dtype=np.int64)
        self._output_table = np.empty((self.n_states, 2, self.n_outputs), np.int64)
        for bit in (0, 1):
            # Shift register: newest bit enters at the MSB position.
            register = (bit << (self.constraint_length - 1)) | states
            self._next_state[:, bit] = register >> 1
            for k, poly in enumerate(self.polynomials):
                self._output_table[:, bit, k] = _parity(register & poly)
        # Reverse maps: for each target state its two (predecessor, input).
        prev_state = np.empty((self.n_states, 2), dtype=np.int64)
        prev_input = np.empty((self.n_states, 2), dtype=np.int64)
        slot = np.zeros(self.n_states, dtype=np.int64)
        for state in range(self.n_states):
            for bit in (0, 1):
                target = self._next_state[state, bit]
                prev_state[target, slot[target]] = state
                prev_input[target, slot[target]] = bit
                slot[target] += 1
        if not np.all(slot == 2):
            raise ConfigurationError("malformed trellis: uneven in-degree")
        self._prev_state = prev_state
        self._prev_input = prev_input


def _parity(values: np.ndarray) -> np.ndarray:
    """Bitwise parity (popcount mod 2) of each integer."""
    values = values.copy()
    parity = np.zeros_like(values)
    while np.any(values):
        parity ^= values & 1
        values >>= 1
    return parity


def bcc_rate_half() -> ConvolutionalCode:
    """The 802.11 rate-1/2 BCC: K=7, polynomials (133, 171) octal."""
    return ConvolutionalCode(polynomials=(0o133, 0o171), constraint_length=7)
