"""IEEE 802.11ac modulation-and-coding-scheme (MCS) table.

Single-user data rates for MCS 0-9 across the paper's channel widths,
computed from the band plans in ``repro.phy.ofdm`` (which carry the
paper's *total* tone counts — see that module's docstring).  The
campaign/goodput models use these rates to translate the airtime a
feedback scheme frees up into application throughput, and
:func:`select_mcs` maps a post-beamforming SINR to the highest MCS whose
operating threshold it clears — connecting the paper's BER axis to a
rate axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.phy.ofdm import band_plan

__all__ = ["McsEntry", "MCS_TABLE", "mcs_entry", "data_rate_bps", "select_mcs"]


@dataclass(frozen=True)
class McsEntry:
    """One row of the VHT MCS table."""

    index: int
    modulation: str
    qam_order: int
    code_rate: float
    #: Approximate minimum post-processing SNR (dB) for a ~10% PER
    #: operating point on an AWGN-like channel (rule-of-thumb values).
    min_snr_db: float

    @property
    def bits_per_symbol(self) -> int:
        return self.qam_order.bit_length() - 1


MCS_TABLE: tuple[McsEntry, ...] = (
    McsEntry(0, "BPSK", 2, 1 / 2, 2.0),
    McsEntry(1, "QPSK", 4, 1 / 2, 5.0),
    McsEntry(2, "QPSK", 4, 3 / 4, 9.0),
    McsEntry(3, "16-QAM", 16, 1 / 2, 11.0),
    McsEntry(4, "16-QAM", 16, 3 / 4, 15.0),
    McsEntry(5, "64-QAM", 64, 2 / 3, 18.0),
    McsEntry(6, "64-QAM", 64, 3 / 4, 20.0),
    McsEntry(7, "64-QAM", 64, 5 / 6, 25.0),
    McsEntry(8, "256-QAM", 256, 3 / 4, 29.0),
    McsEntry(9, "256-QAM", 256, 5 / 6, 31.0),
)


def mcs_entry(index: int) -> McsEntry:
    """Look up one MCS row (0-9)."""
    if not 0 <= index < len(MCS_TABLE):
        raise ConfigurationError(
            f"MCS index must be in [0, {len(MCS_TABLE) - 1}], got {index}"
        )
    return MCS_TABLE[index]


def data_rate_bps(
    index: int,
    bandwidth_mhz: int,
    n_streams: int = 1,
    short_gi: bool = False,
) -> float:
    """PHY data rate of one MCS at a bandwidth and stream count.

    ``rate = tones * bits/symbol * code rate * streams / T_symbol`` with
    the 0.8 us (long) or 0.4 us (short) guard interval.
    """
    if n_streams < 1:
        raise ConfigurationError("n_streams must be >= 1")
    entry = mcs_entry(index)
    plan = band_plan(bandwidth_mhz)
    symbol_s = 3.2e-6 + (0.4e-6 if short_gi else 0.8e-6)
    bits_per_ofdm_symbol = (
        plan.n_subcarriers * entry.bits_per_symbol * entry.code_rate * n_streams
    )
    return bits_per_ofdm_symbol / symbol_s


def select_mcs(sinr_db: float, backoff_db: float = 0.0) -> McsEntry:
    """Highest MCS whose SNR threshold the (backed-off) SINR clears.

    Returns MCS 0 even below its threshold — the link always has a
    lowest rate to fall back to.  ``backoff_db`` adds a link-adaptation
    safety margin.
    """
    if backoff_db < 0:
        raise ConfigurationError("backoff_db must be non-negative")
    effective = sinr_db - backoff_db
    chosen = MCS_TABLE[0]
    for entry in MCS_TABLE:
        if effective >= entry.min_snr_db:
            chosen = entry
    return chosen
