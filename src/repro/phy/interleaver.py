"""IEEE 802.11 BCC block interleaver (Clause 17.3.5.7 / 21.3.10.8).

The convolutional decoder copes with *scattered* bit errors far better
than with bursts, but a frequency-selective channel wipes out whole
groups of adjacent subcarriers at once.  The standard therefore permutes
each OFDM symbol's coded bits in two steps before mapping them onto
tones:

1. ``i = (N_cbps/16) * (k mod 16) + floor(k/16)`` — spreads adjacent
   coded bits across 16 widely separated tone groups;
2. ``j = s*floor(i/s) + (i + N_cbps - floor(16*i/N_cbps)) mod s`` with
   ``s = max(N_bpsc/2, 1)`` — rotates bits within each symbol's
   constellation axes so consecutive bits alternate between high- and
   low-reliability positions.

Both permutations and their exact inverses are precomputed as index
arrays, so (de)interleaving a frame is one fancy-indexing operation.

The standard fixes the column count at 16 because its data-tone counts
(48/52/108/234...) are multiples of 16 after coding.  The paper's CSI
extraction reports *total* tones (56/114/242), which are not, so
:meth:`BlockInterleaver.for_symbol` picks the largest column count
<= 16 dividing the symbol size — same structure, adapted geometry
(documented substitution; 20 MHz matches the standard exactly).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError

__all__ = ["BlockInterleaver"]

#: Column count used by the standard (when divisibility allows).
STANDARD_COLUMNS = 16


class BlockInterleaver:
    """Per-OFDM-symbol two-permutation interleaver.

    Parameters
    ----------
    n_cbps:
        Coded bits per OFDM symbol (``n_subcarriers * bits_per_symbol``
        for one spatial stream).  Must be a multiple of ``n_columns``.
    n_bpsc:
        Coded bits per subcarrier (1 for BPSK ... 8 for 256-QAM).
    n_columns:
        Interleaver width; the standard uses 16.
    """

    def __init__(self, n_cbps: int, n_bpsc: int = 4, n_columns: int = STANDARD_COLUMNS) -> None:
        if n_columns < 2:
            raise ConfigurationError(f"n_columns must be >= 2, got {n_columns}")
        if n_cbps < n_columns or n_cbps % n_columns:
            raise ConfigurationError(
                f"n_cbps must be a positive multiple of {n_columns}, "
                f"got {n_cbps}"
            )
        if n_bpsc < 1 or n_bpsc > 8:
            raise ConfigurationError(f"n_bpsc must be in [1, 8], got {n_bpsc}")
        self.n_cbps = int(n_cbps)
        self.n_bpsc = int(n_bpsc)
        self.n_columns = int(n_columns)
        self._permutation = self._build_permutation()
        self._inverse = np.argsort(self._permutation)

    @classmethod
    def for_symbol(cls, n_subcarriers: int, n_bpsc: int) -> "BlockInterleaver":
        """Interleaver for one OFDM symbol of ``n_subcarriers`` tones.

        Picks the largest column count <= 16 that divides the symbol's
        coded-bit count (16 for the 20 MHz plan, 8 for 40/80 MHz).
        """
        n_cbps = n_subcarriers * n_bpsc
        for n_columns in range(min(STANDARD_COLUMNS, n_cbps), 1, -1):
            if n_cbps % n_columns == 0:
                return cls(n_cbps, n_bpsc, n_columns=n_columns)
        raise ConfigurationError(
            f"no usable interleaver geometry for n_cbps={n_cbps}"
        )

    def _build_permutation(self) -> np.ndarray:
        """``perm[k]`` = output position of input bit ``k``."""
        n = self.n_cbps
        cols = self.n_columns
        s = max(self.n_bpsc // 2, 1)
        k = np.arange(n)
        i = (n // cols) * (k % cols) + k // cols
        j = s * (i // s) + (i + n - (cols * i) // n) % s
        if np.unique(j).size != n:
            raise ConfigurationError(
                "interleaver permutation is not a bijection "
                f"(n_cbps={n}, n_bpsc={self.n_bpsc}, n_columns={cols})"
            )
        return j

    @property
    def permutation(self) -> np.ndarray:
        """Output position of each input bit (one symbol block)."""
        return self._permutation.copy()

    def interleave(self, bits: np.ndarray) -> np.ndarray:
        """Permute a flat array whose length is a multiple of ``n_cbps``."""
        bits = np.asarray(bits).reshape(-1)
        if bits.size % self.n_cbps:
            raise ShapeError(
                f"bit count {bits.size} not a multiple of the "
                f"{self.n_cbps}-bit symbol block"
            )
        blocks = bits.reshape(-1, self.n_cbps)
        out = np.empty_like(blocks)
        out[:, self._permutation] = blocks
        return out.reshape(-1)

    def deinterleave(self, bits: np.ndarray) -> np.ndarray:
        """Exact inverse of :meth:`interleave`."""
        bits = np.asarray(bits).reshape(-1)
        if bits.size % self.n_cbps:
            raise ShapeError(
                f"bit count {bits.size} not a multiple of the "
                f"{self.n_cbps}-bit symbol block"
            )
        blocks = bits.reshape(-1, self.n_cbps)
        out = np.empty_like(blocks)
        out[:, self._inverse] = blocks
        return out.reshape(-1)

    def burst_spread(self, burst_length: int) -> int:
        """Minimum output distance between any two bits of an input burst.

        A quality measure for the permutation: after interleaving, a
        ``burst_length``-bit channel burst corrupts coded bits that are
        at least this far apart at the decoder input.
        """
        if burst_length < 2:
            raise ConfigurationError("burst_length must be >= 2")
        spread = self.n_cbps
        positions = self._inverse  # decoder position of each channel bit
        for start in range(self.n_cbps - burst_length + 1):
            window = np.sort(positions[start : start + burst_length])
            spread = min(spread, int(np.min(np.diff(window))))
        return spread
