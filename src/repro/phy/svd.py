"""SVD beamforming: extracting the beamforming matrix V from CSI.

Implements step (2) of the 802.11 sounding procedure (Sec. III-A2):
``H = U S Z†`` with the beamforming matrix ``V`` given by the first
``Nss`` columns of ``Z``.  Also provides the effective-channel assembly
``H_EQ = [V_1 ... V_Ns]`` used by the BER procedure (Sec. 5.2.2) and a
batched variant used when building training targets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.complexmat import fix_phase_gauge

__all__ = [
    "beamforming_matrix",
    "beamforming_matrices",
    "effective_channel",
    "dominant_left_singular_vectors",
    "dominant_right_singular_pair",
    "dominant_singular_pair",
    "jacobi_hermitian_eig",
]


def beamforming_matrix(
    channel: np.ndarray, n_streams: int = 1, gauge_fix: bool = True
) -> np.ndarray:
    """Beamforming matrix for one channel matrix ``(Nr, Nt)``.

    Returns ``V`` of shape ``(Nt, n_streams)`` — the right singular
    vectors of the ``n_streams`` largest singular values.  With
    ``gauge_fix`` (default) each column is rotated so its last entry is
    real non-negative, the standard's representative (see
    ``repro.utils.complexmat.fix_phase_gauge``).
    """
    channel = np.asarray(channel, dtype=np.complex128)
    if channel.ndim != 2:
        raise ShapeError(f"channel must be (Nr, Nt), got shape {channel.shape}")
    n_rx, n_tx = channel.shape
    if not 1 <= n_streams <= min(n_rx, n_tx):
        raise ShapeError(
            f"n_streams={n_streams} invalid for a {n_rx}x{n_tx} channel"
        )
    _, _, vh = np.linalg.svd(channel, full_matrices=True)
    bf = vh.conj().T[:, :n_streams]
    if gauge_fix:
        bf = fix_phase_gauge(bf)
    return bf


def beamforming_matrices(
    channels: np.ndarray, n_streams: int = 1, gauge_fix: bool = True
) -> np.ndarray:
    """Batched :func:`beamforming_matrix` over shape ``(..., Nr, Nt)``.

    Returns shape ``(..., Nt, n_streams)``.  NumPy's batched SVD handles
    the leading axes (samples, subcarriers) in one call.
    """
    channels = np.asarray(channels, dtype=np.complex128)
    if channels.ndim < 2:
        raise ShapeError("channels must have at least 2 dims (..., Nr, Nt)")
    n_rx, n_tx = channels.shape[-2:]
    if not 1 <= n_streams <= min(n_rx, n_tx):
        raise ShapeError(
            f"n_streams={n_streams} invalid for a {n_rx}x{n_tx} channel"
        )
    _, _, vh = np.linalg.svd(channels, full_matrices=True)
    bf = np.swapaxes(vh, -1, -2).conj()[..., :n_streams]
    if gauge_fix:
        bf = fix_phase_gauge(bf)
    return bf


def dominant_left_singular_vectors(channels: np.ndarray) -> np.ndarray:
    """Dominant left singular vector ``u1`` for each ``(..., Nr, Nt)``.

    The STA combines its ``Nr`` received samples with ``u1†`` so the
    effective per-user channel becomes ``sigma_1 v1†`` (Sec. 5.2.2
    receive processing).  Returns shape ``(..., Nr)``.

    The phase gauge is pinned to the standard's beamforming gauge:
    ``u1 = H v1 / sigma_1`` with ``v1`` phase-fixed so its last entry is
    real non-negative.  A singular pair is only defined up to a joint
    phase, and leaving it at LAPACK's arbitrary convention would make
    combiners depend on the SVD implementation; the canonical gauge
    keeps every solver (LAPACK or the closed-form kernels in
    :func:`dominant_singular_pair`) interchangeable to machine
    precision.
    """
    channels = np.asarray(channels, dtype=np.complex128)
    u, _, vh = np.linalg.svd(channels, full_matrices=False)
    v1 = fix_phase_gauge(np.swapaxes(vh, -1, -2).conj()[..., :, :1])[..., 0]
    combined = np.einsum("...rt,...t->...r", channels, v1)
    norms = np.linalg.norm(combined, axis=-1, keepdims=True)
    # Degenerate (zero) channels keep LAPACK's unit vector.
    return np.where(
        norms > 1e-300, combined / np.maximum(norms, 1e-300), u[..., :, 0]
    )


def jacobi_hermitian_eig(
    gram: np.ndarray, max_sweeps: int = 16, tol: float = 1e-14
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Batched cyclic Jacobi diagonalization of Hermitian matrices.

    LAPACK's ``eigh``/``svd`` pay one Fortran dispatch per matrix, which
    dominates when the batch is tens of thousands of 2x2-4x4 Gram
    matrices (the link simulator's case).  Cyclic Jacobi vectorizes over
    the whole batch: each (p, q) rotation is a handful of elementwise
    array operations, and convergence is quadratic.

    Returns ``(eigenvalues, eigenvectors, converged)`` with eigenvalues
    ``(..., n)`` (unordered), eigenvectors in the matching columns of
    ``(..., n, n)``, and ``converged`` False if some matrix still had an
    off-diagonal above ``tol`` times its diagonal scale after
    ``max_sweeps`` sweeps (callers should fall back to LAPACK then).
    """
    gram = np.asarray(gram, dtype=np.complex128)
    if gram.ndim < 2 or gram.shape[-1] != gram.shape[-2]:
        raise ShapeError(f"expected Hermitian (..., n, n), got {gram.shape}")
    batch_shape = gram.shape[:-2]
    n = gram.shape[-1]
    a = gram.reshape((-1,) + gram.shape[-2:]).copy()
    v = np.zeros_like(a)
    v[...] = np.eye(n, dtype=np.complex128)
    if n == 1:
        return (
            a[..., 0, 0].real.reshape(batch_shape + (1,)),
            v.reshape(batch_shape + (n, n)),
            True,
        )
    pairs = [(p, q) for p in range(n - 1) for q in range(p + 1, n)]
    scale = np.maximum(
        np.abs(np.diagonal(a, axis1=-2, axis2=-1)).max(axis=-1), 1e-300
    )
    def _off_diagonal() -> np.ndarray:
        return np.max(
            np.stack([np.abs(a[:, p, q]) for p, q in pairs]), axis=0
        )

    converged = False
    for _ in range(max_sweeps):
        if np.all(_off_diagonal() <= tol * scale):
            converged = True
            break
        for p, q in pairs:
            apq = a[:, p, q]
            abs_apq = np.abs(apq)
            safe_abs = np.where(abs_apq > 0, abs_apq, 1.0)
            phase = np.where(abs_apq > 0, apq / safe_abs, 1.0 + 0.0j)
            tau = (a[:, q, q].real - a[:, p, p].real) / (2.0 * safe_abs)
            sign = np.where(tau >= 0, 1.0, -1.0)
            t = sign / (np.abs(tau) + np.sqrt(1.0 + tau * tau))
            t = np.where(abs_apq > 0, t, 0.0)
            c = 1.0 / np.sqrt(1.0 + t * t)
            s = t * c
            w = s * np.conj(phase)
            # Column update: A <- A Q.
            col_p = a[:, :, p].copy()
            col_q = a[:, :, q]
            a[:, :, p] = c[:, None] * col_p - w[:, None] * col_q
            a[:, :, q] = s[:, None] * col_p + (c * np.conj(phase))[
                :, None
            ] * col_q
            # Row update: A <- Q† A.
            row_p = a[:, p, :].copy()
            row_q = a[:, q, :]
            a[:, p, :] = c[:, None] * row_p - np.conj(w)[:, None] * row_q
            a[:, q, :] = s[:, None] * row_p + (c * phase)[:, None] * row_q
            # Eigenvector accumulation: V <- V Q.
            vcol_p = v[:, :, p].copy()
            vcol_q = v[:, :, q]
            v[:, :, p] = c[:, None] * vcol_p - w[:, None] * vcol_q
            v[:, :, q] = s[:, None] * vcol_p + (c * np.conj(phase))[
                :, None
            ] * vcol_q
    if not converged:
        # The loop checks only at sweep start; convergence during the
        # final sweep still counts.
        converged = bool(np.all(_off_diagonal() <= tol * scale))
    eigenvalues = np.diagonal(a, axis1=-2, axis2=-1).real
    return (
        eigenvalues.reshape(batch_shape + (n,)),
        v.reshape(batch_shape + (n, n)),
        converged,
    )


def _top_eigenvector_2x2(
    gram: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form dominant eigenpair of Hermitian 2x2 batches.

    Returns ``(vectors, eigenvalues, ok)`` with unit vectors ``(..., 2)``
    and a mask of samples where the closed form is well conditioned
    (``~ok`` means the matrix is a near-multiple of the identity — any
    unit vector is dominant, and the caller falls back to LAPACK).
    """
    a = gram[..., 0, 0].real
    c = gram[..., 1, 1].real
    b = gram[..., 0, 1]
    half_gap = 0.5 * (a - c)
    radius = np.sqrt(half_gap**2 + np.abs(b) ** 2)
    lam1 = 0.5 * (a + c) + radius
    # Two algebraically equivalent eigenvector forms; pick per sample
    # whichever avoids catastrophic cancellation.
    cand_a = np.stack([b, lam1 - a], axis=-1)
    cand_b = np.stack([lam1 - c, np.conj(b)], axis=-1)
    norm_a = np.linalg.norm(cand_a, axis=-1)
    norm_b = np.linalg.norm(cand_b, axis=-1)
    vectors = np.where((norm_a >= norm_b)[..., None], cand_a, cand_b)
    norms = np.maximum(norm_a, norm_b)
    scale = np.maximum(np.abs(a) + np.abs(c), 1e-300)
    ok = norms > 1e-7 * scale
    vectors = vectors / np.maximum(norms, 1e-300)[..., None]
    return vectors, lam1, ok


def _top_eigenvector_3x3(
    gram: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form dominant eigenpair of Hermitian 3x3 batches.

    Eigenvalues come from the trigonometric (Cardano) solution of the
    characteristic cubic; the dominant eigenvector is read off the
    adjugate of ``A - lam1 I`` (one row-pair cross product).  ``ok`` is
    False where the adjugate norm shows the result is ill-conditioned
    (near-degenerate top eigenvalue, or a dominant eigenvector nearly
    orthogonal to the third axis) — callers fall back to LAPACK there.
    """
    a00 = gram[..., 0, 0].real
    a11 = gram[..., 1, 1].real
    a22 = gram[..., 2, 2].real
    a01 = gram[..., 0, 1]
    a02 = gram[..., 0, 2]
    a12 = gram[..., 1, 2]
    q = (a00 + a11 + a22) / 3.0
    m01 = np.abs(a01) ** 2
    m02 = np.abs(a02) ** 2
    m12 = np.abs(a12) ** 2
    p1 = m01 + m02 + m12
    d00 = a00 - q
    d11 = a11 - q
    d22 = a22 - q
    p2 = d00**2 + d11**2 + d22**2 + 2.0 * p1
    p = np.sqrt(np.maximum(p2, 0.0) / 6.0)
    safe_p = np.maximum(p, 1e-300)
    # det((A - qI)/p), expanded for Hermitian entries.
    det_b = (
        d00 * (d11 * d22 - m12)
        - (a01 * (np.conj(a01) * d22 - a12 * np.conj(a02))).real
        + (a02 * (np.conj(a01) * np.conj(a12) - d11 * np.conj(a02))).real
    ) / safe_p**3
    angle = np.arccos(np.clip(det_b / 2.0, -1.0, 1.0)) / 3.0
    lam1 = q + 2.0 * p * np.cos(angle)
    lam3 = q + 2.0 * p * np.cos(angle + 2.0 * np.pi / 3.0)
    # Eigenvector from the adjugate of M = A - lam1 I: the cross product
    # of M's first two rows solves r0·x = r1·x = 0, i.e. it is the third
    # adjugate column (lam2 - lam1)(lam3 - lam1) v1 conj(v1[2]) — one
    # row pair suffices.  The scale vanishes when lam1 is
    # (near-)degenerate or v1's last component is tiny; both land in
    # ``~ok`` and take the caller's LAPACK fallback (a measure-zero set
    # for generic channels).
    m00 = a00 - lam1
    m11 = a11 - lam1
    c0 = a01 * a12 - a02 * m11
    c1 = a02 * np.conj(a01) - m00 * a12
    c2 = m00 * m11 - m01
    vectors = np.stack([c0, c1, c2 + 0j], axis=-1)
    norm_sq = np.abs(c0) ** 2 + np.abs(c1) ** 2 + c2 * c2
    norm = np.sqrt(norm_sq)
    scale = np.maximum(np.abs(lam1), np.abs(lam3))
    ok = norm > 1e-5 * np.maximum(scale, 1e-300) ** 2
    vectors = vectors / np.maximum(norm, 1e-300)[..., None]
    return vectors, lam1, ok


def _dominant_eigenvector(
    gram: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dominant unit eigenpair per Hermitian matrix ``(..., n, n)``.

    Dispatches to the closed forms for n <= 3 and batched Jacobi above;
    returns ``(vectors, eigenvalues, ok)`` where ``~ok`` marks samples
    needing the LAPACK fallback.
    """
    n = gram.shape[-1]
    if n == 1:
        vectors = np.ones(gram.shape[:-2] + (1,), dtype=np.complex128)
        lam = gram[..., 0, 0].real
        return vectors, lam, np.ones(gram.shape[:-2], dtype=bool)
    if n == 2:
        return _top_eigenvector_2x2(gram)
    if n == 3:
        return _top_eigenvector_3x3(gram)
    eigenvalues, eigenvectors, converged = jacobi_hermitian_eig(gram)
    top = np.argmax(eigenvalues, axis=-1)
    vectors = np.take_along_axis(
        eigenvectors, top[..., None, None], axis=-1
    )[..., 0]
    lam = np.take_along_axis(eigenvalues, top[..., None], axis=-1)[..., 0]
    ok = np.full(gram.shape[:-2], converged)
    return vectors, lam, ok


def dominant_right_singular_pair(
    channels: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Dominant right singular vector and value per ``(..., Nr, Nt)``.

    Returns ``(v1, sigma1)`` with ``v1`` in the canonical gauge (last
    entry real non-negative, matching :func:`beamforming_matrices`) and
    ``sigma1 >= 0``.  One batched closed-form eigensolve of the
    smaller-side Gram matrix replaces a LAPACK SVD pass; callers that
    also need the combiner can form ``u1 = H v1 / sigma1`` themselves
    (or note that ``u1† H = sigma1 v1†`` makes ``u1`` unnecessary, as in
    the link simulator).

    Samples the closed form flags as ill-conditioned (near-degenerate
    top eigenvalue) are recomputed with ``np.linalg.svd``; for generic
    channels that subset is empty.
    """
    channels = np.asarray(channels, dtype=np.complex128)
    if channels.ndim < 2:
        raise ShapeError("channels must have at least 2 dims (..., Nr, Nt)")
    n_rx, n_tx = channels.shape[-2:]
    if n_rx == 1:
        # Rank-one channel: the singular pair is the row itself.
        # v1 = conj(row)/sigma gauged by exp(-i angle(v1[-1])) folds into
        # one complex scale: conj(row) * row[-1] / (|row[-1]| sigma).
        # A zero last entry means the gauge phase is 1 (angle(0) = 0),
        # not a zero scale.
        row = channels[..., 0, :]
        sigma = np.linalg.norm(row, axis=-1)
        last = row[..., -1:]
        last_abs = np.abs(last)
        phase = np.where(last_abs > 0, last / np.maximum(last_abs, 1e-300), 1.0)
        scale = phase / np.maximum(sigma[..., None], 1e-300)
        return np.conj(row) * scale, sigma
    small_side_rx = n_rx < n_tx
    if small_side_rx:
        gram = np.einsum("...rt,...st->...rs", channels, channels.conj())
    else:
        gram = np.einsum("...rt,...rs->...ts", channels.conj(), channels)
    lead, lam, ok = _dominant_eigenvector(gram)
    sigma = np.sqrt(np.maximum(lam, 0.0))
    if small_side_rx:
        v1 = np.einsum("...rt,...r->...t", channels.conj(), lead)
        norms = np.linalg.norm(v1, axis=-1, keepdims=True)
        v1 = v1 / np.maximum(norms, 1e-300)
    else:
        v1 = lead
    if not np.all(ok):
        bad = ~ok
        _, s, vh = np.linalg.svd(channels[bad], full_matrices=False)
        v1 = v1.copy()
        sigma = sigma.copy()
        v1[bad] = np.swapaxes(vh, -1, -2).conj()[..., :, 0]
        sigma[bad] = s[..., 0]
    v1 = v1 * np.exp(-1j * np.angle(v1[..., -1:]))
    return v1, sigma


def dominant_singular_pair(
    channels: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Dominant singular pair ``(u1, v1)`` per channel ``(..., Nr, Nt)``.

    Built on :func:`dominant_right_singular_pair`; both vectors use the
    canonical gauge (``v1`` last entry real non-negative and
    ``u1 = H v1 / sigma_1``), so results agree with
    :func:`dominant_left_singular_vectors` /
    :func:`beamforming_matrices` to machine precision rather than up to
    an SVD-implementation-specific phase.
    """
    channels = np.asarray(channels, dtype=np.complex128)
    v1, _ = dominant_right_singular_pair(channels)
    u1 = np.einsum("...rt,...t->...r", channels, v1)
    norms = np.linalg.norm(u1, axis=-1, keepdims=True)
    degenerate = norms <= 1e-300
    u1 = u1 / np.maximum(norms, 1e-300)
    if np.any(degenerate):
        # Zero channels: any unit combiner works; pick the first basis
        # vector.
        filler = np.zeros_like(u1)
        filler[..., 0] = 1.0
        u1 = np.where(degenerate, filler, u1)
    return u1, v1


def effective_channel(bf_list: "list[np.ndarray] | np.ndarray") -> np.ndarray:
    """Stack per-user beamforming vectors into ``H_EQ = [V_1 ... V_Ns]``.

    Accepts a list of ``(Nt, Nss_i)`` matrices (or 1-D ``(Nt,)`` vectors)
    and returns the ``(Nt, sum Nss_i)`` effective channel used for
    zero-forcing (Sec. 5.2.2 step (3)).
    """
    columns = []
    for bf in bf_list:
        bf = np.asarray(bf, dtype=np.complex128)
        if bf.ndim == 1:
            bf = bf[:, None]
        if bf.ndim != 2:
            raise ShapeError(f"beamforming matrix must be 2-D, got {bf.shape}")
        columns.append(bf)
    n_tx = columns[0].shape[0]
    for bf in columns:
        if bf.shape[0] != n_tx:
            raise ShapeError("beamforming matrices disagree on Nt")
    return np.concatenate(columns, axis=1)
