"""SVD beamforming: extracting the beamforming matrix V from CSI.

Implements step (2) of the 802.11 sounding procedure (Sec. III-A2):
``H = U S Z†`` with the beamforming matrix ``V`` given by the first
``Nss`` columns of ``Z``.  Also provides the effective-channel assembly
``H_EQ = [V_1 ... V_Ns]`` used by the BER procedure (Sec. 5.2.2) and a
batched variant used when building training targets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.complexmat import fix_phase_gauge

__all__ = [
    "beamforming_matrix",
    "beamforming_matrices",
    "effective_channel",
    "dominant_left_singular_vectors",
]


def beamforming_matrix(
    channel: np.ndarray, n_streams: int = 1, gauge_fix: bool = True
) -> np.ndarray:
    """Beamforming matrix for one channel matrix ``(Nr, Nt)``.

    Returns ``V`` of shape ``(Nt, n_streams)`` — the right singular
    vectors of the ``n_streams`` largest singular values.  With
    ``gauge_fix`` (default) each column is rotated so its last entry is
    real non-negative, the standard's representative (see
    ``repro.utils.complexmat.fix_phase_gauge``).
    """
    channel = np.asarray(channel, dtype=np.complex128)
    if channel.ndim != 2:
        raise ShapeError(f"channel must be (Nr, Nt), got shape {channel.shape}")
    n_rx, n_tx = channel.shape
    if not 1 <= n_streams <= min(n_rx, n_tx):
        raise ShapeError(
            f"n_streams={n_streams} invalid for a {n_rx}x{n_tx} channel"
        )
    _, _, vh = np.linalg.svd(channel, full_matrices=True)
    bf = vh.conj().T[:, :n_streams]
    if gauge_fix:
        bf = fix_phase_gauge(bf)
    return bf


def beamforming_matrices(
    channels: np.ndarray, n_streams: int = 1, gauge_fix: bool = True
) -> np.ndarray:
    """Batched :func:`beamforming_matrix` over shape ``(..., Nr, Nt)``.

    Returns shape ``(..., Nt, n_streams)``.  NumPy's batched SVD handles
    the leading axes (samples, subcarriers) in one call.
    """
    channels = np.asarray(channels, dtype=np.complex128)
    if channels.ndim < 2:
        raise ShapeError("channels must have at least 2 dims (..., Nr, Nt)")
    n_rx, n_tx = channels.shape[-2:]
    if not 1 <= n_streams <= min(n_rx, n_tx):
        raise ShapeError(
            f"n_streams={n_streams} invalid for a {n_rx}x{n_tx} channel"
        )
    _, _, vh = np.linalg.svd(channels, full_matrices=True)
    bf = np.swapaxes(vh, -1, -2).conj()[..., :n_streams]
    if gauge_fix:
        bf = fix_phase_gauge(bf)
    return bf


def dominant_left_singular_vectors(channels: np.ndarray) -> np.ndarray:
    """Dominant left singular vector ``u1`` for each ``(..., Nr, Nt)``.

    The STA combines its ``Nr`` received samples with ``u1†`` so the
    effective per-user channel becomes ``sigma_1 v1†`` (Sec. 5.2.2
    receive processing).  Returns shape ``(..., Nr)``.
    """
    channels = np.asarray(channels, dtype=np.complex128)
    u, _, _ = np.linalg.svd(channels, full_matrices=False)
    return u[..., :, 0]


def effective_channel(bf_list: "list[np.ndarray] | np.ndarray") -> np.ndarray:
    """Stack per-user beamforming vectors into ``H_EQ = [V_1 ... V_Ns]``.

    Accepts a list of ``(Nt, Nss_i)`` matrices (or 1-D ``(Nt,)`` vectors)
    and returns the ``(Nt, sum Nss_i)`` effective channel used for
    zero-forcing (Sec. 5.2.2 step (3)).
    """
    columns = []
    for bf in bf_list:
        bf = np.asarray(bf, dtype=np.complex128)
        if bf.ndim == 1:
            bf = bf[:, None]
        if bf.ndim != 2:
            raise ShapeError(f"beamforming matrix must be 2-D, got {bf.shape}")
        columns.append(bf)
    n_tx = columns[0].shape[0]
    for bf in columns:
        if bf.shape[0] != n_tx:
            raise ShapeError("beamforming matrices disagree on Nt")
    return np.concatenate(columns, axis=1)
