"""OFDM band plans for IEEE 802.11ac/ax channels.

The paper works with the 802.11ac VHT subcarrier counts its Nexmon
captures expose: 56 (20 MHz), 114 (40 MHz), 242 (80 MHz), and the
synthetic 484 (160 MHz); it also cites 996 usable tones for 320 MHz
(802.11be).  A :class:`BandPlan` carries the counts plus the physical
tone spacing used by the channel generator's frequency grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BandPlan", "band_plan", "SUBCARRIERS", "BANDWIDTHS_MHZ"]

#: Data+pilot tones reported per bandwidth (MHz) in the paper (Table I
#: and Sec. I/III); 320 MHz added for Wi-Fi 7 projections.
SUBCARRIERS: dict[int, int] = {20: 56, 40: 114, 80: 242, 160: 484, 320: 996}

#: Bandwidths with a defined plan, ascending.
BANDWIDTHS_MHZ: tuple[int, ...] = tuple(sorted(SUBCARRIERS))

#: OFDM subcarrier spacing for 802.11ac VHT (Hz).
SUBCARRIER_SPACING_HZ: float = 312.5e3


@dataclass(frozen=True)
class BandPlan:
    """Static description of one OFDM channelization."""

    bandwidth_mhz: int
    n_subcarriers: int
    subcarrier_spacing_hz: float = SUBCARRIER_SPACING_HZ

    @property
    def occupied_bandwidth_hz(self) -> float:
        """Bandwidth actually spanned by the used tones."""
        return self.n_subcarriers * self.subcarrier_spacing_hz

    @property
    def symbol_duration_s(self) -> float:
        """OFDM symbol duration incl. 0.8 us guard interval (802.11ac)."""
        return 1.0 / self.subcarrier_spacing_hz + 0.8e-6

    def tone_frequencies_hz(self) -> np.ndarray:
        """Baseband center frequency of each used tone, DC-symmetric.

        The exact 802.11 tone indices skip DC and guard bands; for
        channel-response synthesis only the spacing and span matter, so
        we use a symmetric grid of ``n_subcarriers`` tones.
        """
        n = self.n_subcarriers
        indices = np.arange(n) - (n - 1) / 2.0
        return indices * self.subcarrier_spacing_hz

    def __str__(self) -> str:
        return f"{self.bandwidth_mhz} MHz ({self.n_subcarriers} tones)"


@lru_cache(maxsize=None)
def _band_plan_cached(bandwidth_mhz: int) -> BandPlan:
    return BandPlan(
        bandwidth_mhz=bandwidth_mhz, n_subcarriers=SUBCARRIERS[bandwidth_mhz]
    )


def band_plan(bandwidth_mhz: int) -> BandPlan:
    """Return the :class:`BandPlan` for a supported bandwidth in MHz.

    Plans are immutable, so lookups are cached — callers on hot paths
    (the CBF codec resolves the plan for every report) share one
    instance per bandwidth.
    """
    try:
        return _band_plan_cached(int(bandwidth_mhz))
    except (KeyError, ValueError, TypeError):
        raise ConfigurationError(
            f"unsupported bandwidth {bandwidth_mhz!r} MHz; "
            f"supported: {BANDWIDTHS_MHZ}"
        ) from None
