"""MIMO-OFDM physical-layer substrate.

Implements everything the paper's BER-measurement procedure (Sec. 5.2.2)
needs: OFDM band plans, Gray-mapped QAM, the 802.11 rate-1/2 binary
convolutional code with Viterbi decoding, AWGN, SVD beamforming,
zero-forcing MU-MIMO precoding, and an end-to-end link simulator.
"""

from repro.phy.ofdm import BandPlan, band_plan, SUBCARRIERS, BANDWIDTHS_MHZ
from repro.phy.modulation import QamModem
from repro.phy.coding import ConvolutionalCode, bcc_rate_half
from repro.phy.noise import awgn, snr_db_to_linear, snr_linear_to_db, noise_power
from repro.phy.precoding import (
    zero_forcing,
    regularized_zero_forcing,
    normalize_columns,
    interference_leakage,
)
from repro.phy.svd import beamforming_matrix, beamforming_matrices, effective_channel
from repro.phy.link import LinkConfig, LinkSimulator, BerResult
from repro.phy.rates import phy_rate_bps, frame_airtime_s, SIFS_S
from repro.phy.metrics import (
    LinkMetrics,
    sinr_per_user,
    leakage_ratio,
    sum_rate_bps_per_hz,
    evm_rms,
    compute_link_metrics,
)
from repro.phy.scrambler import Scrambler, scramble, descramble
from repro.phy.interleaver import BlockInterleaver
from repro.phy.mcs import McsEntry, MCS_TABLE, mcs_entry, data_rate_bps, select_mcs
from repro.phy.estimation import (
    p_matrix,
    ltf_sequence,
    NdpObservation,
    transmit_ndp,
    estimate_channel,
    estimation_nmse,
)

__all__ = [
    "BandPlan",
    "band_plan",
    "SUBCARRIERS",
    "BANDWIDTHS_MHZ",
    "QamModem",
    "ConvolutionalCode",
    "bcc_rate_half",
    "awgn",
    "snr_db_to_linear",
    "snr_linear_to_db",
    "noise_power",
    "zero_forcing",
    "normalize_columns",
    "interference_leakage",
    "beamforming_matrix",
    "beamforming_matrices",
    "effective_channel",
    "LinkConfig",
    "LinkSimulator",
    "BerResult",
    "phy_rate_bps",
    "frame_airtime_s",
    "SIFS_S",
    "regularized_zero_forcing",
    "LinkMetrics",
    "sinr_per_user",
    "leakage_ratio",
    "sum_rate_bps_per_hz",
    "evm_rms",
    "compute_link_metrics",
    "Scrambler",
    "scramble",
    "descramble",
    "BlockInterleaver",
    "McsEntry",
    "MCS_TABLE",
    "mcs_entry",
    "data_rate_bps",
    "select_mcs",
    "p_matrix",
    "ltf_sequence",
    "NdpObservation",
    "transmit_ndp",
    "estimate_channel",
    "estimation_nmse",
]
