"""Gray-mapped square-QAM modulation and demodulation.

Supports BPSK (2), QPSK (4), 16-QAM, 64-QAM, and 256-QAM with the
per-axis Gray mapping used by IEEE 802.11.  Constellations are
normalized to unit average symbol energy so SNR definitions stay
consistent across orders.  The paper's BER procedure uses 16-QAM.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError

__all__ = ["QamModem"]

_SUPPORTED_ORDERS = (2, 4, 16, 64, 256)


def _gray_code(n_bits: int) -> np.ndarray:
    """Integers 0..2^n-1 in Gray-code order of their binary index."""
    values = np.arange(2**n_bits)
    return values ^ (values >> 1)


def _pam_levels(n_levels: int) -> np.ndarray:
    """Gray-ordered PAM amplitudes: position k holds the amplitude whose
    Gray label is k."""
    amplitudes = 2.0 * np.arange(n_levels) - (n_levels - 1)
    gray = _gray_code(int(np.log2(n_levels)))
    levels = np.empty(n_levels)
    levels[gray] = amplitudes
    return levels


class QamModem:
    """Modulate bit arrays to complex symbols and back.

    Parameters
    ----------
    order:
        Constellation size, one of 2/4/16/64/256.
    """

    def __init__(self, order: int = 16) -> None:
        if order not in _SUPPORTED_ORDERS:
            raise ConfigurationError(
                f"unsupported QAM order {order}; supported: {_SUPPORTED_ORDERS}"
            )
        self.order = int(order)
        self.bits_per_symbol = int(np.log2(order))
        if order == 2:
            # BPSK on the real axis.
            self._i_levels = np.array([-1.0, 1.0])[::-1] * -1.0  # label0->-1
            self._i_levels = np.array([-1.0, 1.0])
            self._q_levels = None
            self._scale = 1.0
        else:
            bits_i = self.bits_per_symbol // 2 + self.bits_per_symbol % 2
            bits_q = self.bits_per_symbol // 2
            self._i_levels = _pam_levels(2**bits_i)
            self._q_levels = _pam_levels(2**bits_q)
            mean_energy = np.mean(self._i_levels**2) + np.mean(self._q_levels**2)
            self._scale = 1.0 / np.sqrt(mean_energy)
        self._bits_i = (
            self.bits_per_symbol
            if self._q_levels is None
            else self.bits_per_symbol // 2 + self.bits_per_symbol % 2
        )
        self._bits_q = 0 if self._q_levels is None else self.bits_per_symbol // 2
        self._constellation = self._build_constellation()

    # -- public API -----------------------------------------------------------

    @property
    def constellation(self) -> np.ndarray:
        """All symbols indexed by their integer bit label."""
        return self._constellation.copy()

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a flat 0/1 array (length divisible by bits/symbol) to
        unit-average-energy complex symbols."""
        bits = np.asarray(bits).astype(np.int64).reshape(-1)
        if bits.size % self.bits_per_symbol:
            raise ShapeError(
                f"bit count {bits.size} not divisible by "
                f"{self.bits_per_symbol} bits/symbol"
            )
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ShapeError("bits must be 0/1")
        labels = self._pack_labels(bits)
        return self._constellation[labels]

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision demodulation back to a flat bit array."""
        symbols = np.asarray(symbols, dtype=np.complex128).reshape(-1)
        if self.order == 2:
            labels = (symbols.real > 0).astype(np.int64)
        else:
            i_labels = self._nearest_label(symbols.real / self._scale, self._i_levels)
            q_labels = self._nearest_label(symbols.imag / self._scale, self._q_levels)
            labels = (i_labels << self._bits_q) | q_labels
        return self._unpack_labels(labels)

    def pack_bit_labels(self, bits: np.ndarray) -> np.ndarray:
        """Flat 0/1 bits -> integer constellation labels (no validation).

        ``constellation[pack_bit_labels(bits)]`` equals
        :meth:`modulate`; exposing the label layer lets hot paths count
        bit errors by label XOR + popcount instead of re-expanding bits.
        """
        bits = np.asarray(bits).astype(np.int64).reshape(-1)
        if bits.size % self.bits_per_symbol:
            raise ShapeError(
                f"bit count {bits.size} not divisible by "
                f"{self.bits_per_symbol} bits/symbol"
            )
        return self._pack_labels(bits)

    def hard_labels(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision integer labels of the nearest constellation points.

        Same decisions as :meth:`demodulate` (the per-axis grid is
        uniform, so rounding to the nearest amplitude index equals the
        nearest-neighbour search) but O(1) per symbol instead of
        O(levels); decision-boundary midpoints — a measure-zero set
        under any noise distribution — may tie-break differently.
        """
        symbols = np.asarray(symbols, dtype=np.complex128).reshape(-1)
        if self.order == 2:
            return (symbols.real > 0).astype(np.int64)
        i_labels = self._grid_label(
            symbols.real / self._scale, self._i_levels.size, self._bits_i
        )
        q_labels = self._grid_label(
            symbols.imag / self._scale, self._q_levels.size, self._bits_q
        )
        return (i_labels << self._bits_q) | q_labels

    @property
    def popcount(self) -> np.ndarray:
        """Bit-count lookup for label XOR values (0..order-1)."""
        if not hasattr(self, "_popcount"):
            values = np.arange(self.order)
            counts = np.zeros(self.order, dtype=np.int64)
            while values.any():
                counts += values & 1
                values >>= 1
            self._popcount = counts
        return self._popcount

    def bit_errors_from_labels(
        self, tx_labels: np.ndarray, rx_labels: np.ndarray
    ) -> np.ndarray:
        """Per-symbol bit-error counts between two label arrays."""
        return self.popcount[np.bitwise_xor(tx_labels, rx_labels)]

    def llr(
        self, symbols: np.ndarray, noise_power: "float | np.ndarray"
    ) -> np.ndarray:
        """Max-log per-bit log-likelihood ratios (positive favours bit 0).

        For each received symbol and bit position ``b``:
        ``LLR_b = (min_{c in C1(b)} |y - c|^2 - min_{c in C0(b)} |y - c|^2)
        / N0`` where ``C0/C1`` are the constellation subsets whose label
        has bit ``b`` equal to 0/1.  ``noise_power`` may be a scalar or a
        per-symbol array (post-equalization noise varies per subcarrier).
        Used by the soft-decision Viterbi decoder
        (``ConvolutionalCode.decode_soft``).
        """
        symbols = np.asarray(symbols, dtype=np.complex128).reshape(-1)
        noise = np.broadcast_to(
            np.asarray(noise_power, dtype=np.float64).reshape(-1)
            if np.ndim(noise_power)
            else np.full(symbols.size, float(noise_power)),
            (symbols.size,),
        )
        if np.any(noise <= 0):
            raise ShapeError("noise_power must be positive")
        # Distances to every constellation point: (n_symbols, order).
        dist = np.abs(symbols[:, None] - self._constellation[None, :]) ** 2
        labels = np.arange(self.order)
        llrs = np.empty((symbols.size, self.bits_per_symbol))
        for b in range(self.bits_per_symbol):
            bit = (labels >> (self.bits_per_symbol - 1 - b)) & 1
            d0 = dist[:, bit == 0].min(axis=1)
            d1 = dist[:, bit == 1].min(axis=1)
            llrs[:, b] = (d1 - d0) / noise
        return llrs.reshape(-1)

    def symbol_count(self, n_bits: int) -> int:
        """Symbols needed to carry ``n_bits`` (must divide evenly)."""
        if n_bits % self.bits_per_symbol:
            raise ShapeError(
                f"{n_bits} bits do not fill whole {self.order}-QAM symbols"
            )
        return n_bits // self.bits_per_symbol

    # -- internals --------------------------------------------------------------

    def _build_constellation(self) -> np.ndarray:
        labels = np.arange(self.order)
        if self.order == 2:
            return np.where(labels == 1, 1.0 + 0j, -1.0 + 0j)
        i_part = self._i_levels[labels >> self._bits_q]
        q_part = self._q_levels[labels & ((1 << self._bits_q) - 1)]
        return self._scale * (i_part + 1j * q_part)

    def _pack_labels(self, bits: np.ndarray) -> np.ndarray:
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 1 << np.arange(self.bits_per_symbol - 1, -1, -1)
        return groups @ weights

    def _unpack_labels(self, labels: np.ndarray) -> np.ndarray:
        shifts = np.arange(self.bits_per_symbol - 1, -1, -1)
        return ((labels[:, None] >> shifts) & 1).reshape(-1)

    @staticmethod
    def _nearest_label(values: np.ndarray, levels: np.ndarray) -> np.ndarray:
        distance = np.abs(values[:, None] - levels[None, :])
        return np.argmin(distance, axis=1)

    def _grid_label(
        self, values: np.ndarray, n_levels: int, n_bits: int
    ) -> np.ndarray:
        """Nearest Gray label on the uniform PAM grid, by rounding.

        Amplitude index ``i`` holds amplitude ``2 i - (n - 1)``; its
        Gray label is ``gray(i)``.
        """
        index = np.rint((values + (n_levels - 1)) * 0.5).astype(np.int64)
        np.clip(index, 0, n_levels - 1, out=index)
        return index ^ (index >> 1)
