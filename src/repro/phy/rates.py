"""PHY data rates and frame airtimes.

Used by the sounding-protocol simulator and the BOP's airtime cost
``T^A``.  Rates follow the 802.11ac OFDM relation
``rate = n_sc * bits_per_symbol * code_rate / symbol_duration`` for one
spatial stream; control responses (the compressed beamforming report)
are conventionally sent at a robust low MCS.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.phy.ofdm import band_plan

__all__ = ["phy_rate_bps", "frame_airtime_s", "SIFS_S", "PHY_PREAMBLE_S"]

#: Short interframe space at 5 GHz (802.11ac), seconds.
SIFS_S: float = 16e-6

#: VHT PHY preamble duration (legacy + VHT training fields), seconds.
#: 36 us covers L-STF/L-LTF/L-SIG + VHT-SIG/STF and one LTF.
PHY_PREAMBLE_S: float = 36e-6

#: Extra VHT-LTF duration per additional spatial stream, seconds.
VHT_LTF_S: float = 4e-6


def phy_rate_bps(
    bandwidth_mhz: int,
    bits_per_symbol: int = 2,
    code_rate: float = 0.5,
    n_streams: int = 1,
) -> float:
    """Data rate in bits/second for the given MCS-like parameters.

    The default (QPSK rate-1/2, one stream) is the robust rate typically
    used for management/feedback frames.
    """
    if bits_per_symbol <= 0:
        raise ConfigurationError("bits_per_symbol must be positive")
    if not 0 < code_rate <= 1:
        raise ConfigurationError("code_rate must be in (0, 1]")
    if n_streams <= 0:
        raise ConfigurationError("n_streams must be positive")
    plan = band_plan(bandwidth_mhz)
    per_symbol_bits = plan.n_subcarriers * bits_per_symbol * code_rate * n_streams
    return per_symbol_bits / plan.symbol_duration_s


def frame_airtime_s(
    payload_bits: int,
    bandwidth_mhz: int,
    bits_per_symbol: int = 2,
    code_rate: float = 0.5,
    n_streams: int = 1,
    preamble_s: float = PHY_PREAMBLE_S,
) -> float:
    """Airtime of one frame: preamble plus whole OFDM symbols of payload."""
    if payload_bits < 0:
        raise ConfigurationError("payload_bits must be non-negative")
    plan = band_plan(bandwidth_mhz)
    bits_per_ofdm_symbol = (
        plan.n_subcarriers * bits_per_symbol * code_rate * n_streams
    )
    import math

    n_symbols = math.ceil(payload_bits / bits_per_ofdm_symbol) if payload_bits else 0
    return preamble_s + n_symbols * plan.symbol_duration_s
