"""End-to-end MU-MIMO downlink BER simulation (paper Sec. 5.2.2).

For each CSI sample the simulator follows the paper's six steps:

1. generate random payload bits per user (optionally BCC rate-1/2
   encoded), modulated with 16-QAM by default;
2. take each user's beamforming vector ``V_i`` (from any feedback
   scheme under test);
3. assemble the effective channel ``H_EQ = [V_1 ... V_Ns]``;
4. compute the zero-forcing precoder ``W = H_EQ (H_EQ† H_EQ)^-1`` and
   normalize its columns;
5. propagate through the *true* channel and add AWGN;
6. receive-combine with the dominant left singular vector, equalize,
   demodulate (and Viterbi-decode), and count bit errors.

Noise is calibrated once per sample against the *ideal SVD* beamformer's
post-combining gain, so every feedback scheme is compared at the same
operating SNR and BER differences isolate beamforming error — the
paper's stated goal ("isolate the BER caused by the DNN compression").

Array conventions: channels ``(n_users, S, Nr, Nt)`` and beamforming
vectors ``(n_users, S, Nt)`` per sample (complex128).

:meth:`LinkSimulator.measure_ber` runs the whole batch of samples
through single batched SVD/einsum passes.  Random payloads and noise are
drawn in the same generator order as the original per-sample loop, so
the batched path is bit-identical to :meth:`measure_ber_reference` (the
frozen per-sample implementation kept for equivalence tests and
speedup tracking in ``benchmarks/bench_perf_hotpaths.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.perf.profile import profiled
from repro.phy.coding import bcc_rate_half
from repro.phy.interleaver import BlockInterleaver
from repro.phy.metrics import LinkMetrics, compute_link_metrics
from repro.phy.modulation import QamModem
from repro.phy.noise import snr_db_to_linear
from repro.phy.precoding import zero_forcing
from repro.phy.scrambler import Scrambler
from repro.phy.svd import (
    beamforming_matrices,
    dominant_left_singular_vectors,
    dominant_right_singular_pair,
)
from repro.utils.complexmat import batched_small_inverse, hermitian_inverse_diagonal
from repro.utils.rng import as_generator

__all__ = ["LinkConfig", "BerResult", "LinkSimulator"]

_PRECODERS = ("zf", "rzf")


@dataclass
class LinkConfig:
    """Link-simulation parameters.

    The paper uses 16-QAM, zero-forcing, and no channel coding unless
    otherwise specified (BCC rate 1/2 for the 160 MHz results); it does
    not state the operating SNR — 20 dB is our documented default, and
    benches expose a sweep.
    """

    snr_db: float = 20.0
    qam_order: int = 16
    use_coding: bool = False
    n_ofdm_symbols: int = 1
    seed: int = 0
    precoder: str = "zf"  # "zf" (paper) or "rzf" (MMSE-regularized)
    use_scrambler: bool = False
    use_interleaver: bool = False
    soft_decoding: bool = False

    def __post_init__(self) -> None:
        if self.n_ofdm_symbols <= 0:
            raise ConfigurationError("n_ofdm_symbols must be positive")
        if self.precoder not in _PRECODERS:
            raise ConfigurationError(
                f"unknown precoder {self.precoder!r}; options: {_PRECODERS}"
            )
        if self.soft_decoding and not self.use_coding:
            raise ConfigurationError(
                "soft_decoding requires use_coding=True"
            )
        if self.use_interleaver and not self.use_coding:
            raise ConfigurationError(
                "the interleaver protects coded bits; enable use_coding"
            )


@dataclass
class BerResult:
    """Aggregated BER measurement."""

    bit_errors: int
    total_bits: int
    per_user_ber: np.ndarray

    @property
    def ber(self) -> float:
        if self.total_bits == 0:
            return 0.0
        return self.bit_errors / self.total_bits

    def __str__(self) -> str:
        return f"BER {self.ber:.5f} ({self.bit_errors}/{self.total_bits} bits)"


class LinkSimulator:
    """Runs the Sec. 5.2.2 BER procedure over batches of CSI samples."""

    def __init__(self, config: LinkConfig | None = None) -> None:
        self.config = config or LinkConfig()
        self.modem = QamModem(self.config.qam_order)
        self.code = bcc_rate_half() if self.config.use_coding else None
        self.scrambler = Scrambler() if self.config.use_scrambler else None
        self._interleavers: dict[int, BlockInterleaver] = {}

    def _interleaver(self, n_subcarriers: int) -> BlockInterleaver:
        """Per-band interleaver, cached by subcarrier count."""
        if n_subcarriers not in self._interleavers:
            self._interleavers[n_subcarriers] = BlockInterleaver.for_symbol(
                n_subcarriers, self.modem.bits_per_symbol
            )
        return self._interleavers[n_subcarriers]

    # -- public API -----------------------------------------------------------

    @profiled("link.measure_ber")
    def measure_ber(
        self,
        channels: np.ndarray,
        bf_estimates: np.ndarray,
        rng: "int | np.random.Generator | None" = None,
    ) -> BerResult:
        """Measure BER for DNN/codebook-estimated beamforming vectors.

        Parameters
        ----------
        channels:
            True channels, shape ``(n_samples, n_users, S, Nr, Nt)``.
        bf_estimates:
            Estimated beamforming vectors as reconstructed at the AP,
            shape ``(n_samples, n_users, S, Nt)``.
        rng:
            Seed/Generator; defaults to ``LinkConfig.seed``.
        """
        channels = np.asarray(channels, dtype=np.complex128)
        bf_estimates = np.asarray(bf_estimates, dtype=np.complex128)
        self._check_shapes(channels, bf_estimates)
        rng = as_generator(self.config.seed if rng is None else rng)

        n_samples, n_users = channels.shape[:2]
        if n_samples == 0:
            return BerResult(0, 0, np.zeros(n_users))
        gains, noise_power = self._batched_sample_gains(channels, bf_estimates)
        errors, totals = self._transmit_and_count(gains, noise_power, rng)
        return self._aggregate(errors, totals)

    def measure_ber_reference(
        self,
        channels: np.ndarray,
        bf_estimates: np.ndarray,
        rng: "int | np.random.Generator | None" = None,
    ) -> BerResult:
        """The original per-sample BER loop, kept as a frozen baseline.

        Bit-identical to :meth:`measure_ber` given the same seed; used by
        the equivalence tests and as the "before" timing in the perf
        benchmarks.  Prefer :meth:`measure_ber` everywhere else.

        One deliberate deviation from the pre-vectorization release:
        combiners now carry the canonical phase gauge (see
        :func:`repro.phy.svd.dominant_left_singular_vectors`), so
        seed-pinned absolute BER values shift by a noise-phase
        relabeling relative to older checkouts — a gauge change, not an
        algorithm change; the BER statistics are identical.
        """
        channels = np.asarray(channels, dtype=np.complex128)
        bf_estimates = np.asarray(bf_estimates, dtype=np.complex128)
        self._check_shapes(channels, bf_estimates)
        rng = as_generator(self.config.seed if rng is None else rng)

        n_users = channels.shape[1]
        errors = np.zeros((channels.shape[0], n_users), dtype=np.int64)
        totals = np.zeros((channels.shape[0], n_users), dtype=np.int64)
        for j in range(channels.shape[0]):
            errors[j], totals[j] = self._one_sample(
                channels[j], bf_estimates[j], rng
            )
        return self._aggregate(errors, totals)

    @staticmethod
    def _aggregate(errors: np.ndarray, totals: np.ndarray) -> BerResult:
        """Fold per-(sample, user) counts into a :class:`BerResult`."""
        user_errors = errors.sum(axis=0)
        user_bits = totals.sum(axis=0)
        per_user = np.where(user_bits > 0, user_errors / np.maximum(user_bits, 1), 0.0)
        return BerResult(
            bit_errors=int(user_errors.sum()),
            total_bits=int(user_bits.sum()),
            per_user_ber=per_user,
        )

    def measure_ber_ideal(
        self,
        channels: np.ndarray,
        rng: "int | np.random.Generator | None" = None,
    ) -> BerResult:
        """BER with perfect (unquantized SVD) beamforming feedback."""
        channels = np.asarray(channels, dtype=np.complex128)
        bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        return self.measure_ber(channels, bf, rng=rng)

    # -- internals --------------------------------------------------------------

    def _check_shapes(self, channels: np.ndarray, bfs: np.ndarray) -> None:
        if channels.ndim != 5:
            raise ShapeError(
                f"channels must be (n_samples, n_users, S, Nr, Nt), "
                f"got {channels.shape}"
            )
        if bfs.ndim != 4:
            raise ShapeError(
                f"bf_estimates must be (n_samples, n_users, S, Nt), "
                f"got {bfs.shape}"
            )
        n_samples, n_users, n_sc, _, n_tx = channels.shape
        if bfs.shape != (n_samples, n_users, n_sc, n_tx):
            raise ShapeError(
                f"bf_estimates shape {bfs.shape} inconsistent with channels "
                f"{channels.shape}"
            )
        if n_users > n_tx:
            raise ShapeError(f"{n_users} users exceed {n_tx} transmit antennas")

    def _one_sample(
        self,
        channels: np.ndarray,
        bf_estimates: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """BER for one CSI sample. Returns (errors, bits) per user."""
        n_users, n_sc, _, n_tx = channels.shape
        n_symbols = self.config.n_ofdm_symbols

        # Receive combining from the true channel (the STA knows its own
        # channel from the NDP training fields).
        combiners = dominant_left_singular_vectors(channels)  # (users, S, Nr)
        rows = np.einsum("isr,isrt->ist", combiners.conj(), channels)

        # Noise calibration against the ideal SVD beamformer (same for
        # every scheme under comparison at this sample).  Pure ZF here so
        # the reference SNR is precoder-independent.
        ideal_bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        ideal_eq = np.transpose(ideal_bf, (1, 2, 0))
        ideal_w = self._reference_zero_forcing(ideal_eq)
        ideal_gains = np.einsum("ist,stj->sij", rows, ideal_w)
        diag = np.abs(np.diagonal(ideal_gains, axis1=1, axis2=2)) ** 2
        signal_power = float(np.mean(diag))
        if signal_power <= 0:
            raise ShapeError("degenerate channel: zero beamforming gain")
        noise_power = signal_power / snr_db_to_linear(self.config.snr_db)

        # Precoder from the estimated beamforming vectors, per subcarrier.
        h_eq = np.transpose(bf_estimates, (1, 2, 0))  # (S, Nt, n_users)
        if self.config.precoder == "rzf":
            ridge = h_eq.shape[2] / snr_db_to_linear(self.config.snr_db)
            precoder = self._reference_zero_forcing(h_eq, ridge=ridge)
        else:
            precoder = self._reference_zero_forcing(h_eq)

        # Effective gain matrix G[s, i, j] = u_i(s)† H_i(s) w_j(s).
        gains = np.einsum("ist,stj->sij", rows, precoder)  # (S, users, users)

        # Per-user payloads.
        bits_tx, symbols = self._generate_payloads(n_users, n_sc, n_symbols, rng)
        # symbols: (users, S, T) -> transmit through gains.
        received = np.einsum("sij,jst->ist", gains, symbols)
        noise = np.sqrt(noise_power / 2.0) * (
            rng.standard_normal(received.shape)
            + 1j * rng.standard_normal(received.shape)
        )
        received = received + noise

        # Equalize by the direct effective gain.
        direct = np.diagonal(gains, axis1=1, axis2=2)  # (S, users)
        direct = np.transpose(direct)[:, :, None]  # (users, S, 1)
        safe = np.where(np.abs(direct) < 1e-12, 1e-12, direct)
        equalized = received / safe
        # Post-equalization noise variance per (user, subcarrier, symbol).
        noise_var = noise_power / np.maximum(np.abs(safe) ** 2, 1e-30)
        noise_var = np.broadcast_to(noise_var, equalized.shape)

        errors = np.zeros(n_users, dtype=np.int64)
        totals = np.zeros(n_users, dtype=np.int64)
        for i in range(n_users):
            rx_bits = self._recover_bits(
                equalized[i].reshape(-1), noise_var[i].reshape(-1), n_sc
            )
            errors[i] = int(np.sum(rx_bits != bits_tx[i]))
            totals[i] = bits_tx[i].size
        return errors, totals

    def _batched_sample_gains(
        self, channels: np.ndarray, bf_estimates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Effective gains for a whole batch in one pass.

        ``channels`` is ``(n, users, S, Nr, Nt)`` and ``bf_estimates``
        ``(n, users, S, Nt)``; returns ``gains`` of shape ``(n, S,
        users, users)`` and the per-sample calibrated noise power
        ``(n,)``.  Two identities make this cheap relative to the
        reference path's two LAPACK SVD passes and two ZF solves:

        - the combined row is ``u1† H = sigma_1 v1†`` exactly, so one
          closed-form right-singular-pair solve replaces the combiner
          SVD, the ideal-beamformer SVD, and the combining einsum;
        - the ideal ZF diagonal gain is ``sigma_i / sqrt([(V†V)^-1]_ii)``
          (``V† W = (V†V)(V†V)^-1 D = D``), so noise calibration needs
          only the Gram's inverse diagonal, not a ZF solve.

        BER and calibration are invariant to the singular vectors'
        phase gauge, so the two paths agree to machine precision.
        """
        ideal_bf, sigma = dominant_right_singular_pair(channels)
        rows = sigma[..., None] * np.conj(ideal_bf)  # (n, u, S, Nt)
        gram = np.moveaxis(ideal_bf, 1, 3)  # (n, S, Nt, u)
        gram = np.einsum("...tu,...tv->...uv", gram.conj(), gram)
        inv_diag = hermitian_inverse_diagonal(gram)  # (n, S, u)
        diag = np.moveaxis(sigma, 1, 2) ** 2 / np.maximum(inv_diag, 1e-300)
        signal_power = diag.mean(axis=(1, 2))  # (n,)
        if np.any(signal_power <= 0):
            raise ShapeError("degenerate channel: zero beamforming gain")
        noise_power = signal_power / snr_db_to_linear(self.config.snr_db)
        h_est = np.moveaxis(bf_estimates, 1, 3)  # (n, S, Nt, u)
        if self.config.precoder == "zf":
            # Fused ZF: gains = (rows Hest) G^-1 D with G = Hest† Hest
            # and D = diag(1/sqrt([G^-1]_jj)) — the precoder column
            # norms are ||Hest G^-1 e_j|| = sqrt([G^-1]_jj), so W never
            # needs to be materialized.
            gram_est = np.einsum("...tu,...tv->...uv", h_est.conj(), h_est)
            inverse = batched_small_inverse(gram_est)
            projected = np.einsum("nist,nstj->nsij", rows, h_est)
            raw_gains = np.einsum("...ij,...jk->...ik", projected, inverse)
            col_norms = np.sqrt(
                np.maximum(
                    np.diagonal(inverse, axis1=-2, axis2=-1).real, 1e-60
                )
            )
            gains = raw_gains / col_norms[..., None, :]
        else:
            precoder = self._batched_precoder(h_est, noise_power)
            gains = np.einsum("nist,nstj->nsij", rows, precoder)
        return gains, noise_power

    def _transmit_and_count(
        self,
        gains: np.ndarray,
        noise_power: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run payloads through the gains; count errors per (sample, user).

        Randomness is drawn per sample in the reference implementation's
        order (per-user payload bits, then the noise grid), so results
        are bit-identical to the per-sample loop.
        """
        n_samples, n_sc, n_users = gains.shape[0], gains.shape[1], gains.shape[2]
        n_symbols = self.config.n_ofdm_symbols
        coded_bits = n_sc * n_symbols * self.modem.bits_per_symbol
        info_bits = self._info_bits(coded_bits)

        payloads = np.empty((n_samples, n_users, info_bits), dtype=np.int64)
        noise = np.empty(
            (n_samples, n_users, n_sc, n_symbols), dtype=np.complex128
        )
        grid_shape = (n_users, n_sc, n_symbols)
        for j in range(n_samples):
            # Batched draws consume the generator element-by-element
            # exactly like the reference's sequential calls (per-user
            # payloads, then the real and imaginary noise grids), so the
            # streams stay bit-identical.
            payloads[j] = rng.integers(0, 2, size=(n_users, info_bits))
            scale = np.sqrt(noise_power[j] / 2.0)
            gaussians = rng.standard_normal((2,) + grid_shape)
            noise[j] = scale * (gaussians[0] + 1j * gaussians[1])

        plain = (
            self.code is None
            and self.scrambler is None
            and not self.config.use_interleaver
        )
        tx_labels: np.ndarray | None = None
        if plain:
            tx_labels = self.modem.pack_bit_labels(payloads.reshape(-1))
            symbols = self.modem.constellation[tx_labels].reshape(
                n_samples, n_users, n_sc, n_symbols
            )
        else:
            symbols = self._modulate_payloads(
                payloads, n_sc, n_symbols, coded_bits
            )
        if n_symbols == 1:
            received = np.einsum("nsij,njs->nis", gains, symbols[..., 0])
            received = received[..., None]
        else:
            received = np.einsum("nsij,njst->nist", gains, symbols)
        received += noise

        direct = np.diagonal(gains, axis1=-2, axis2=-1)  # (n, S, users)
        direct = np.moveaxis(direct, -1, 1)[..., None]  # (n, users, S, 1)
        safe = np.where(np.abs(direct) < 1e-12, 1e-12, direct)
        equalized = received / safe
        if not plain:
            # Post-equalization noise variance feeds the soft demapper;
            # the hard-decision hot path never reads it.
            noise_var = noise_power[:, None, None, None] / np.maximum(
                np.abs(safe) ** 2, 1e-30
            )
            noise_var = np.broadcast_to(noise_var, equalized.shape)

        if plain:
            # Hot path: label-domain hard decisions over every stream at
            # once; bit errors via XOR + popcount.
            rx_labels = self.modem.hard_labels(equalized.reshape(-1))
            per_symbol = self.modem.bit_errors_from_labels(
                tx_labels, rx_labels
            )
            errors = per_symbol.reshape(n_samples, n_users, -1).sum(
                axis=-1, dtype=np.int64
            )
        else:
            errors = np.empty((n_samples, n_users), dtype=np.int64)
            for j in range(n_samples):
                for i in range(n_users):
                    rx_bits = self._recover_bits(
                        equalized[j, i].reshape(-1),
                        noise_var[j, i].reshape(-1),
                        n_sc,
                    )
                    errors[j, i] = int(np.sum(rx_bits != payloads[j, i]))
        totals = np.full((n_samples, n_users), info_bits, dtype=np.int64)
        return errors, totals

    def _info_bits(self, coded_bits: int) -> int:
        """Information bits carried by one ``coded_bits`` OFDM grid."""
        if self.code is None:
            return coded_bits
        info_bits = coded_bits // self.code.n_outputs - (
            self.code.constraint_length - 1
        )
        if info_bits <= 0:
            raise ConfigurationError(
                "OFDM grid too small to carry one coded block; "
                "increase n_ofdm_symbols"
            )
        return info_bits

    def _modulate_payloads(
        self,
        payloads: np.ndarray,
        n_sc: int,
        n_symbols: int,
        coded_bits: int,
    ) -> np.ndarray:
        """Map ``(n, users, info_bits)`` payloads to ``(n, users, S, T)``.

        Coded/scrambled path only (the plain path modulates labels
        directly in :meth:`_transmit_and_count`): the Viterbi/LFSR
        helpers are stream-oriented, so encoding runs per stream before
        a single batched modulation.
        """
        n_samples, n_users, _ = payloads.shape
        streams = np.zeros((n_samples, n_users, coded_bits), dtype=np.int64)
        for j in range(n_samples):
            for i in range(n_users):
                stream = payloads[j, i]
                if self.scrambler is not None:
                    stream = self.scrambler.scramble(stream)
                if self.code is not None:
                    stream = self.code.encode(stream)
                if self.config.use_interleaver:
                    padded = np.zeros(coded_bits, dtype=np.int64)
                    padded[: stream.size] = stream
                    streams[j, i] = self._interleaver(n_sc).interleave(padded)
                else:
                    streams[j, i, : stream.size] = stream
        symbols = self.modem.modulate(streams.reshape(-1))
        return symbols.reshape(n_samples, n_users, n_sc, n_symbols)

    def compute_gains(
        self, channels: np.ndarray, bf_estimates: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Effective gain tensor and calibrated noise power for one sample.

        Returns ``(gains, noise_power)`` with ``gains`` of shape
        ``(S, n_users, n_users)`` — the inputs to the SINR/sum-rate
        metrics in ``repro.phy.metrics``.
        """
        channels = np.asarray(channels, dtype=np.complex128)
        bf_estimates = np.asarray(bf_estimates, dtype=np.complex128)
        if channels.ndim != 4 or bf_estimates.ndim != 3:
            raise ShapeError(
                "compute_gains expects one sample: channels (users, S, Nr, "
                f"Nt) and bf (users, S, Nt); got {channels.shape} / "
                f"{bf_estimates.shape}"
            )
        combiners = dominant_left_singular_vectors(channels)
        rows = np.einsum("isr,isrt->ist", combiners.conj(), channels)
        ideal_bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        ideal_w = self._batched_zero_forcing(np.transpose(ideal_bf, (1, 2, 0)))
        ideal_gains = np.einsum("ist,stj->sij", rows, ideal_w)
        diag = np.abs(np.diagonal(ideal_gains, axis1=1, axis2=2)) ** 2
        signal_power = float(np.mean(diag))
        if signal_power <= 0:
            raise ShapeError("degenerate channel: zero beamforming gain")
        noise_power = signal_power / snr_db_to_linear(self.config.snr_db)
        precoder = self._batched_precoder(
            np.transpose(bf_estimates, (1, 2, 0)), noise_power
        )
        gains = np.einsum("ist,stj->sij", rows, precoder)
        return gains, noise_power

    def measure_metrics(
        self, channels: np.ndarray, bf_estimates: np.ndarray
    ) -> LinkMetrics:
        """SINR/leakage/sum-rate metrics averaged over a batch of samples.

        Same array conventions as :meth:`measure_ber`; metrics are
        computed per sample and averaged (leakage and sum rate are means
        of per-sample values, min-SINR is the batch minimum).
        """
        channels = np.asarray(channels, dtype=np.complex128)
        bf_estimates = np.asarray(bf_estimates, dtype=np.complex128)
        self._check_shapes(channels, bf_estimates)
        gains, noise_power = self._batched_sample_gains(channels, bf_estimates)
        per_sample = [
            compute_link_metrics(gains[j], float(noise_power[j]))
            for j in range(channels.shape[0])
        ]
        return LinkMetrics(
            mean_sinr_db=float(np.mean([m.mean_sinr_db for m in per_sample])),
            min_sinr_db=float(np.min([m.min_sinr_db for m in per_sample])),
            leakage=float(np.mean([m.leakage for m in per_sample])),
            sum_rate_bps_per_hz=float(
                np.mean([m.sum_rate_bps_per_hz for m in per_sample])
            ),
        )

    def _batched_precoder(
        self, h_eq: np.ndarray, noise_power: "float | np.ndarray"
    ) -> np.ndarray:
        """ZF or RZF precoders per the configuration.

        The effective channel's columns are unit-norm beamforming
        vectors (the physical channel gain sits outside, in the
        combining step), so the correctly scaled MMSE regularizer is
        ``n_users / SNR`` — independent of the absolute noise power.
        """
        del noise_power
        if self.config.precoder == "rzf":
            n_users = h_eq.shape[-1]
            ridge = n_users / snr_db_to_linear(self.config.snr_db)
            return self._batched_zero_forcing(h_eq, ridge=ridge)
        return self._batched_zero_forcing(h_eq)

    @staticmethod
    def _reference_zero_forcing(h_eq: np.ndarray, ridge: float = 0.0) -> np.ndarray:
        """The seed ZF kernel (LAPACK inverse), frozen for the reference path.

        :meth:`measure_ber_reference` must keep the original per-sample
        arithmetic so equivalence tests and before/after benchmarks
        compare against an unchanging baseline.
        """
        gram = np.einsum("stu,stv->suv", h_eq.conj(), h_eq)
        if ridge:
            gram = gram + ridge * np.eye(gram.shape[-1])[None, :, :]
        try:
            inverse = np.linalg.inv(gram)
        except np.linalg.LinAlgError:
            inverse = np.linalg.pinv(gram)
        raw = np.einsum("stu,suv->stv", h_eq, inverse)
        norms = np.linalg.norm(raw, axis=1, keepdims=True)
        return raw / np.maximum(norms, 1e-30)

    def _batched_zero_forcing(
        self, h_eq: np.ndarray, ridge: float = 0.0
    ) -> np.ndarray:
        """Column-normalized ZF precoders for a batch ``(..., Nt, users)``.

        Leading axes (subcarriers, or samples x subcarriers) are all
        batched through one gram/inverse/apply pass.
        """
        gram = np.einsum("...tu,...tv->...uv", h_eq.conj(), h_eq)
        if ridge:
            gram = gram + ridge * np.eye(gram.shape[-1])
        raw = np.einsum("...tu,...uv->...tv", h_eq, batched_small_inverse(gram))
        norms = np.linalg.norm(raw, axis=-2, keepdims=True)
        return raw / np.maximum(norms, 1e-30)

    def _generate_payloads(
        self,
        n_users: int,
        n_sc: int,
        n_symbols: int,
        rng: np.random.Generator,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Random (optionally coded) payloads mapped onto the OFDM grid.

        Returns the list of transmitted *information* bits per user and a
        ``(users, S, T)`` complex symbol grid.
        """
        bps = self.modem.bits_per_symbol
        coded_bits = n_sc * n_symbols * bps
        info_bits = self._info_bits(coded_bits)

        tx_bits: list[np.ndarray] = []
        grids = np.empty((n_users, n_sc, n_symbols), dtype=np.complex128)
        for i in range(n_users):
            payload = rng.integers(0, 2, size=info_bits)
            stream = payload
            if self.scrambler is not None:
                stream = self.scrambler.scramble(stream)
            if self.code is not None:
                stream = self.code.encode(stream)
            if stream.size != coded_bits:
                # Zero-pad any residue (whole-symbol granularity).
                padded = np.zeros(coded_bits, dtype=np.int64)
                padded[: stream.size] = stream
                stream = padded
            if self.config.use_interleaver:
                stream = self._interleaver(n_sc).interleave(stream)
            symbols = self.modem.modulate(stream)
            grids[i] = symbols.reshape(n_sc, n_symbols)
            tx_bits.append(payload)
        return tx_bits, grids

    def _recover_bits(
        self,
        symbols: np.ndarray,
        noise_var: np.ndarray,
        n_subcarriers: int,
    ) -> np.ndarray:
        """Demodulate (and decode) a user's flattened symbol stream.

        ``noise_var`` carries the per-symbol post-equalization noise
        variance used by the soft demapper.
        """
        if self.config.soft_decoding and self.code is not None:
            llrs = self.modem.llr(symbols, noise_var)
            if self.config.use_interleaver:
                llrs = self._interleaver(n_subcarriers).deinterleave(llrs)
            bits = self.code.decode_soft(llrs)
        else:
            hard = self.modem.demodulate(symbols)
            if self.config.use_interleaver:
                hard = self._interleaver(n_subcarriers).deinterleave(hard)
            bits = hard if self.code is None else self.code.decode(hard)
        if self.scrambler is not None:
            bits = self.scrambler.descramble(bits)
        return bits
