"""End-to-end MU-MIMO downlink BER simulation (paper Sec. 5.2.2).

For each CSI sample the simulator follows the paper's six steps:

1. generate random payload bits per user (optionally BCC rate-1/2
   encoded), modulated with 16-QAM by default;
2. take each user's beamforming vector ``V_i`` (from any feedback
   scheme under test);
3. assemble the effective channel ``H_EQ = [V_1 ... V_Ns]``;
4. compute the zero-forcing precoder ``W = H_EQ (H_EQ† H_EQ)^-1`` and
   normalize its columns;
5. propagate through the *true* channel and add AWGN;
6. receive-combine with the dominant left singular vector, equalize,
   demodulate (and Viterbi-decode), and count bit errors.

Noise is calibrated once per sample against the *ideal SVD* beamformer's
post-combining gain, so every feedback scheme is compared at the same
operating SNR and BER differences isolate beamforming error — the
paper's stated goal ("isolate the BER caused by the DNN compression").

Array conventions: channels ``(n_users, S, Nr, Nt)`` and beamforming
vectors ``(n_users, S, Nt)`` per sample (complex128).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.phy.coding import bcc_rate_half
from repro.phy.interleaver import BlockInterleaver
from repro.phy.metrics import LinkMetrics, compute_link_metrics
from repro.phy.modulation import QamModem
from repro.phy.noise import snr_db_to_linear
from repro.phy.precoding import normalize_columns, zero_forcing
from repro.phy.scrambler import Scrambler
from repro.phy.svd import beamforming_matrices, dominant_left_singular_vectors
from repro.utils.rng import as_generator

__all__ = ["LinkConfig", "BerResult", "LinkSimulator"]

_PRECODERS = ("zf", "rzf")


@dataclass
class LinkConfig:
    """Link-simulation parameters.

    The paper uses 16-QAM, zero-forcing, and no channel coding unless
    otherwise specified (BCC rate 1/2 for the 160 MHz results); it does
    not state the operating SNR — 20 dB is our documented default, and
    benches expose a sweep.
    """

    snr_db: float = 20.0
    qam_order: int = 16
    use_coding: bool = False
    n_ofdm_symbols: int = 1
    seed: int = 0
    precoder: str = "zf"  # "zf" (paper) or "rzf" (MMSE-regularized)
    use_scrambler: bool = False
    use_interleaver: bool = False
    soft_decoding: bool = False

    def __post_init__(self) -> None:
        if self.n_ofdm_symbols <= 0:
            raise ConfigurationError("n_ofdm_symbols must be positive")
        if self.precoder not in _PRECODERS:
            raise ConfigurationError(
                f"unknown precoder {self.precoder!r}; options: {_PRECODERS}"
            )
        if self.soft_decoding and not self.use_coding:
            raise ConfigurationError(
                "soft_decoding requires use_coding=True"
            )
        if self.use_interleaver and not self.use_coding:
            raise ConfigurationError(
                "the interleaver protects coded bits; enable use_coding"
            )


@dataclass
class BerResult:
    """Aggregated BER measurement."""

    bit_errors: int
    total_bits: int
    per_user_ber: np.ndarray

    @property
    def ber(self) -> float:
        if self.total_bits == 0:
            return 0.0
        return self.bit_errors / self.total_bits

    def __str__(self) -> str:
        return f"BER {self.ber:.5f} ({self.bit_errors}/{self.total_bits} bits)"


class LinkSimulator:
    """Runs the Sec. 5.2.2 BER procedure over batches of CSI samples."""

    def __init__(self, config: LinkConfig | None = None) -> None:
        self.config = config or LinkConfig()
        self.modem = QamModem(self.config.qam_order)
        self.code = bcc_rate_half() if self.config.use_coding else None
        self.scrambler = Scrambler() if self.config.use_scrambler else None
        self._interleavers: dict[int, BlockInterleaver] = {}

    def _interleaver(self, n_subcarriers: int) -> BlockInterleaver:
        """Per-band interleaver, cached by subcarrier count."""
        if n_subcarriers not in self._interleavers:
            self._interleavers[n_subcarriers] = BlockInterleaver.for_symbol(
                n_subcarriers, self.modem.bits_per_symbol
            )
        return self._interleavers[n_subcarriers]

    # -- public API -----------------------------------------------------------

    def measure_ber(
        self,
        channels: np.ndarray,
        bf_estimates: np.ndarray,
        rng: "int | np.random.Generator | None" = None,
    ) -> BerResult:
        """Measure BER for DNN/codebook-estimated beamforming vectors.

        Parameters
        ----------
        channels:
            True channels, shape ``(n_samples, n_users, S, Nr, Nt)``.
        bf_estimates:
            Estimated beamforming vectors as reconstructed at the AP,
            shape ``(n_samples, n_users, S, Nt)``.
        rng:
            Seed/Generator; defaults to ``LinkConfig.seed``.
        """
        channels = np.asarray(channels, dtype=np.complex128)
        bf_estimates = np.asarray(bf_estimates, dtype=np.complex128)
        self._check_shapes(channels, bf_estimates)
        rng = as_generator(self.config.seed if rng is None else rng)

        errors = 0
        total = 0
        n_users = channels.shape[1]
        user_errors = np.zeros(n_users, dtype=np.int64)
        user_bits = np.zeros(n_users, dtype=np.int64)
        for j in range(channels.shape[0]):
            sample_err, sample_bits = self._one_sample(
                channels[j], bf_estimates[j], rng
            )
            errors += int(sample_err.sum())
            total += int(sample_bits.sum())
            user_errors += sample_err
            user_bits += sample_bits
        per_user = np.where(user_bits > 0, user_errors / np.maximum(user_bits, 1), 0.0)
        return BerResult(bit_errors=errors, total_bits=total, per_user_ber=per_user)

    def measure_ber_ideal(
        self,
        channels: np.ndarray,
        rng: "int | np.random.Generator | None" = None,
    ) -> BerResult:
        """BER with perfect (unquantized SVD) beamforming feedback."""
        channels = np.asarray(channels, dtype=np.complex128)
        bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        return self.measure_ber(channels, bf, rng=rng)

    # -- internals --------------------------------------------------------------

    def _check_shapes(self, channels: np.ndarray, bfs: np.ndarray) -> None:
        if channels.ndim != 5:
            raise ShapeError(
                f"channels must be (n_samples, n_users, S, Nr, Nt), "
                f"got {channels.shape}"
            )
        if bfs.ndim != 4:
            raise ShapeError(
                f"bf_estimates must be (n_samples, n_users, S, Nt), "
                f"got {bfs.shape}"
            )
        n_samples, n_users, n_sc, _, n_tx = channels.shape
        if bfs.shape != (n_samples, n_users, n_sc, n_tx):
            raise ShapeError(
                f"bf_estimates shape {bfs.shape} inconsistent with channels "
                f"{channels.shape}"
            )
        if n_users > n_tx:
            raise ShapeError(f"{n_users} users exceed {n_tx} transmit antennas")

    def _one_sample(
        self,
        channels: np.ndarray,
        bf_estimates: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """BER for one CSI sample. Returns (errors, bits) per user."""
        n_users, n_sc, _, n_tx = channels.shape
        n_symbols = self.config.n_ofdm_symbols

        # Receive combining from the true channel (the STA knows its own
        # channel from the NDP training fields).
        combiners = dominant_left_singular_vectors(channels)  # (users, S, Nr)
        rows = np.einsum("isr,isrt->ist", combiners.conj(), channels)

        # Noise calibration against the ideal SVD beamformer (same for
        # every scheme under comparison at this sample).  Pure ZF here so
        # the reference SNR is precoder-independent.
        ideal_bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        ideal_eq = np.transpose(ideal_bf, (1, 2, 0))
        ideal_w = self._batched_zero_forcing(ideal_eq)
        ideal_gains = np.einsum("ist,stj->sij", rows, ideal_w)
        diag = np.abs(np.diagonal(ideal_gains, axis1=1, axis2=2)) ** 2
        signal_power = float(np.mean(diag))
        if signal_power <= 0:
            raise ShapeError("degenerate channel: zero beamforming gain")
        noise_power = signal_power / snr_db_to_linear(self.config.snr_db)

        # Precoder from the estimated beamforming vectors, per subcarrier.
        h_eq = np.transpose(bf_estimates, (1, 2, 0))  # (S, Nt, n_users)
        precoder = self._batched_precoder(h_eq, noise_power)  # (S, Nt, users)

        # Effective gain matrix G[s, i, j] = u_i(s)† H_i(s) w_j(s).
        gains = np.einsum("ist,stj->sij", rows, precoder)  # (S, users, users)

        # Per-user payloads.
        bits_tx, symbols = self._generate_payloads(n_users, n_sc, n_symbols, rng)
        # symbols: (users, S, T) -> transmit through gains.
        received = np.einsum("sij,jst->ist", gains, symbols)
        noise = np.sqrt(noise_power / 2.0) * (
            rng.standard_normal(received.shape)
            + 1j * rng.standard_normal(received.shape)
        )
        received = received + noise

        # Equalize by the direct effective gain.
        direct = np.diagonal(gains, axis1=1, axis2=2)  # (S, users)
        direct = np.transpose(direct)[:, :, None]  # (users, S, 1)
        safe = np.where(np.abs(direct) < 1e-12, 1e-12, direct)
        equalized = received / safe
        # Post-equalization noise variance per (user, subcarrier, symbol).
        noise_var = noise_power / np.maximum(np.abs(safe) ** 2, 1e-30)
        noise_var = np.broadcast_to(noise_var, equalized.shape)

        errors = np.zeros(n_users, dtype=np.int64)
        totals = np.zeros(n_users, dtype=np.int64)
        for i in range(n_users):
            rx_bits = self._recover_bits(
                equalized[i].reshape(-1), noise_var[i].reshape(-1), n_sc
            )
            errors[i] = int(np.sum(rx_bits != bits_tx[i]))
            totals[i] = bits_tx[i].size
        return errors, totals

    def compute_gains(
        self, channels: np.ndarray, bf_estimates: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Effective gain tensor and calibrated noise power for one sample.

        Returns ``(gains, noise_power)`` with ``gains`` of shape
        ``(S, n_users, n_users)`` — the inputs to the SINR/sum-rate
        metrics in ``repro.phy.metrics``.
        """
        channels = np.asarray(channels, dtype=np.complex128)
        bf_estimates = np.asarray(bf_estimates, dtype=np.complex128)
        if channels.ndim != 4 or bf_estimates.ndim != 3:
            raise ShapeError(
                "compute_gains expects one sample: channels (users, S, Nr, "
                f"Nt) and bf (users, S, Nt); got {channels.shape} / "
                f"{bf_estimates.shape}"
            )
        combiners = dominant_left_singular_vectors(channels)
        rows = np.einsum("isr,isrt->ist", combiners.conj(), channels)
        ideal_bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        ideal_w = self._batched_zero_forcing(np.transpose(ideal_bf, (1, 2, 0)))
        ideal_gains = np.einsum("ist,stj->sij", rows, ideal_w)
        diag = np.abs(np.diagonal(ideal_gains, axis1=1, axis2=2)) ** 2
        signal_power = float(np.mean(diag))
        if signal_power <= 0:
            raise ShapeError("degenerate channel: zero beamforming gain")
        noise_power = signal_power / snr_db_to_linear(self.config.snr_db)
        precoder = self._batched_precoder(
            np.transpose(bf_estimates, (1, 2, 0)), noise_power
        )
        gains = np.einsum("ist,stj->sij", rows, precoder)
        return gains, noise_power

    def measure_metrics(
        self, channels: np.ndarray, bf_estimates: np.ndarray
    ) -> LinkMetrics:
        """SINR/leakage/sum-rate metrics averaged over a batch of samples.

        Same array conventions as :meth:`measure_ber`; metrics are
        computed per sample and averaged (leakage and sum rate are means
        of per-sample values, min-SINR is the batch minimum).
        """
        channels = np.asarray(channels, dtype=np.complex128)
        bf_estimates = np.asarray(bf_estimates, dtype=np.complex128)
        self._check_shapes(channels, bf_estimates)
        per_sample: list[LinkMetrics] = []
        for j in range(channels.shape[0]):
            gains, noise_power = self.compute_gains(
                channels[j], bf_estimates[j]
            )
            per_sample.append(compute_link_metrics(gains, noise_power))
        return LinkMetrics(
            mean_sinr_db=float(np.mean([m.mean_sinr_db for m in per_sample])),
            min_sinr_db=float(np.min([m.min_sinr_db for m in per_sample])),
            leakage=float(np.mean([m.leakage for m in per_sample])),
            sum_rate_bps_per_hz=float(
                np.mean([m.sum_rate_bps_per_hz for m in per_sample])
            ),
        )

    def _batched_precoder(
        self, h_eq: np.ndarray, noise_power: float
    ) -> np.ndarray:
        """ZF or RZF precoders per the configuration.

        The effective channel's columns are unit-norm beamforming
        vectors (the physical channel gain sits outside, in the
        combining step), so the correctly scaled MMSE regularizer is
        ``n_users / SNR`` — independent of the absolute noise power.
        """
        del noise_power
        if self.config.precoder == "rzf":
            n_users = h_eq.shape[2]
            ridge = n_users / snr_db_to_linear(self.config.snr_db)
            return self._batched_zero_forcing(h_eq, ridge=ridge)
        return self._batched_zero_forcing(h_eq)

    def _batched_zero_forcing(
        self, h_eq: np.ndarray, ridge: float = 0.0
    ) -> np.ndarray:
        """Column-normalized ZF precoders for a batch ``(S, Nt, users)``."""
        gram = np.einsum("stu,stv->suv", h_eq.conj(), h_eq)
        if ridge:
            gram = gram + ridge * np.eye(gram.shape[-1])[None, :, :]
        try:
            inverse = np.linalg.inv(gram)
        except np.linalg.LinAlgError:
            inverse = np.linalg.pinv(gram)
        raw = np.einsum("stu,suv->stv", h_eq, inverse)
        norms = np.linalg.norm(raw, axis=1, keepdims=True)
        return raw / np.maximum(norms, 1e-30)

    def _generate_payloads(
        self,
        n_users: int,
        n_sc: int,
        n_symbols: int,
        rng: np.random.Generator,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Random (optionally coded) payloads mapped onto the OFDM grid.

        Returns the list of transmitted *information* bits per user and a
        ``(users, S, T)`` complex symbol grid.
        """
        bps = self.modem.bits_per_symbol
        coded_bits = n_sc * n_symbols * bps
        info_bits: int
        if self.code is not None:
            info_bits = coded_bits // self.code.n_outputs - (
                self.code.constraint_length - 1
            )
            if info_bits <= 0:
                raise ConfigurationError(
                    "OFDM grid too small to carry one coded block; "
                    "increase n_ofdm_symbols"
                )
        else:
            info_bits = coded_bits

        tx_bits: list[np.ndarray] = []
        grids = np.empty((n_users, n_sc, n_symbols), dtype=np.complex128)
        for i in range(n_users):
            payload = rng.integers(0, 2, size=info_bits)
            stream = payload
            if self.scrambler is not None:
                stream = self.scrambler.scramble(stream)
            if self.code is not None:
                stream = self.code.encode(stream)
            if stream.size != coded_bits:
                # Zero-pad any residue (whole-symbol granularity).
                padded = np.zeros(coded_bits, dtype=np.int64)
                padded[: stream.size] = stream
                stream = padded
            if self.config.use_interleaver:
                stream = self._interleaver(n_sc).interleave(stream)
            symbols = self.modem.modulate(stream)
            grids[i] = symbols.reshape(n_sc, n_symbols)
            tx_bits.append(payload)
        return tx_bits, grids

    def _recover_bits(
        self,
        symbols: np.ndarray,
        noise_var: np.ndarray,
        n_subcarriers: int,
    ) -> np.ndarray:
        """Demodulate (and decode) a user's flattened symbol stream.

        ``noise_var`` carries the per-symbol post-equalization noise
        variance used by the soft demapper.
        """
        if self.config.soft_decoding and self.code is not None:
            llrs = self.modem.llr(symbols, noise_var)
            if self.config.use_interleaver:
                llrs = self._interleaver(n_subcarriers).deinterleave(llrs)
            bits = self.code.decode_soft(llrs)
        else:
            hard = self.modem.demodulate(symbols)
            if self.config.use_interleaver:
                hard = self._interleaver(n_subcarriers).deinterleave(hard)
            bits = hard if self.code is None else self.code.decode(hard)
        if self.scrambler is not None:
            bits = self.scrambler.descramble(bits)
        return bits
