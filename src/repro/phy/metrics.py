"""Link-quality metrics beyond raw BER.

The paper motivates SplitBeam with inter-user interference (IUI): "an
inaccuracy in the beamforming will lead to inter-user interference in
MU-MIMO, which reduces the SINR significantly" (Sec. II).  These metrics
quantify exactly that chain — per-user SINR, the IUI leakage ratio, the
Shannon sum rate, and symbol-level EVM — from the same effective-gain
tensor the BER simulator computes, so benches can report *why* a feedback
scheme's BER moved, not just that it did.

Conventions: the gain tensor ``G`` has shape ``(S, n_users, n_users)``
with ``G[s, i, j] = u_i(s)† H_i(s) w_j(s)`` (receive-combined response of
user ``i`` to the stream intended for user ``j``), matching
``repro.phy.link``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "LinkMetrics",
    "sinr_per_user",
    "leakage_ratio",
    "sum_rate_bps_per_hz",
    "evm_rms",
    "compute_link_metrics",
]


def _check_gains(gains: np.ndarray) -> np.ndarray:
    gains = np.asarray(gains, dtype=np.complex128)
    if gains.ndim != 3 or gains.shape[1] != gains.shape[2]:
        raise ShapeError(
            f"gains must be (S, n_users, n_users), got {gains.shape}"
        )
    return gains


def sinr_per_user(gains: np.ndarray, noise_power: float) -> np.ndarray:
    """Linear post-combining SINR per (subcarrier, user).

    ``SINR[s, i] = |G[s,i,i]|^2 / (sum_{j != i} |G[s,i,j]|^2 + N0)``.
    """
    gains = _check_gains(gains)
    if noise_power < 0:
        raise ShapeError("noise_power must be non-negative")
    power = np.abs(gains) ** 2  # (S, i, j)
    signal = np.diagonal(power, axis1=1, axis2=2)  # (S, users)
    interference = power.sum(axis=2) - signal
    return signal / np.maximum(interference + noise_power, 1e-30)


def leakage_ratio(gains: np.ndarray) -> float:
    """Total IUI power over total desired-signal power (0 = perfect ZF).

    The noise-free analogue of SINR degradation: how much transmit energy
    aimed at other users lands in each receiver because the AP's
    beamforming matrix was reconstructed imperfectly.
    """
    gains = _check_gains(gains)
    power = np.abs(gains) ** 2
    signal = np.diagonal(power, axis1=1, axis2=2).sum()
    interference = power.sum() - signal
    if signal <= 0:
        return float("inf")
    return float(interference / signal)


def sum_rate_bps_per_hz(gains: np.ndarray, noise_power: float) -> float:
    """Shannon sum rate ``mean_s sum_i log2(1 + SINR[s, i])``.

    Averaged over subcarriers, summed over users — the spectral
    efficiency the MU-MIMO transmission achieves with this beamforming
    feedback at this noise level.
    """
    sinr = sinr_per_user(gains, noise_power)
    return float(np.mean(np.sum(np.log2(1.0 + sinr), axis=1)))


def evm_rms(tx_symbols: np.ndarray, rx_symbols: np.ndarray) -> float:
    """Root-mean-square error vector magnitude (as a fraction, not %).

    ``sqrt(mean |rx - tx|^2 / mean |tx|^2)`` over all symbols — the
    constellation-level distortion left after equalization.
    """
    tx = np.asarray(tx_symbols, dtype=np.complex128)
    rx = np.asarray(rx_symbols, dtype=np.complex128)
    if tx.shape != rx.shape:
        raise ShapeError(f"symbol shape mismatch: {tx.shape} vs {rx.shape}")
    reference = np.mean(np.abs(tx) ** 2)
    if reference <= 0:
        return float("inf")
    return float(np.sqrt(np.mean(np.abs(rx - tx) ** 2) / reference))


@dataclass(frozen=True)
class LinkMetrics:
    """Aggregated link-quality summary for one (channels, BF) evaluation."""

    mean_sinr_db: float
    min_sinr_db: float
    leakage: float
    sum_rate_bps_per_hz: float

    def as_row(self) -> list[float]:
        return [
            self.mean_sinr_db,
            self.min_sinr_db,
            self.leakage,
            self.sum_rate_bps_per_hz,
        ]


def compute_link_metrics(gains: np.ndarray, noise_power: float) -> LinkMetrics:
    """Bundle the SINR/leakage/sum-rate metrics for one gain tensor."""
    sinr = sinr_per_user(gains, noise_power)
    sinr_db = 10.0 * np.log10(np.maximum(sinr, 1e-30))
    return LinkMetrics(
        mean_sinr_db=float(np.mean(sinr_db)),
        min_sinr_db=float(np.min(sinr_db)),
        leakage=leakage_ratio(gains),
        sum_rate_bps_per_hz=sum_rate_bps_per_hz(gains, noise_power),
    )
