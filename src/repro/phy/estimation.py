"""NDP channel estimation from VHT-LTF training fields.

Step (2) of the sounding procedure (Sec. III-A2): "upon reception of the
NDP, each STA analyzes the NDP training fields — for example, VHT-LTF —
and estimates the channel matrix H(s) for all subcarriers".  This module
implements that estimator:

- the AP sends ``N_ltf >= N_sts`` long training symbols, mapping its
  space-time streams through the standard's orthogonal ``P`` matrix so
  the receiver can separate per-antenna responses;
- the STA least-squares-estimates ``H`` by correlating against the
  known LTF sequence and ``P`` rows.

The estimation error is white with variance ``N0 / N_ltf`` per channel
entry — averaging over LTF symbols buys SNR exactly as the standard
intends — which the tests verify.  The dataset builder's
``csi_noise_snr_db`` impairment is the statistical shortcut for this
physical process; this module grounds that shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.phy.noise import snr_db_to_linear
from repro.utils.rng import as_generator

__all__ = [
    "p_matrix",
    "ltf_sequence",
    "NdpObservation",
    "transmit_ndp",
    "estimate_channel",
    "estimation_nmse",
]

#: The standard's P_{4x4} orthogonal stream-mapping matrix.
_P4 = np.array(
    [
        [1, -1, 1, 1],
        [1, 1, -1, 1],
        [1, 1, 1, -1],
        [-1, 1, 1, 1],
    ],
    dtype=np.float64,
)


def p_matrix(n_streams: int) -> np.ndarray:
    """Orthogonal LTF mapping for up to 4 space-time streams.

    Row ``i`` holds the per-LTF-symbol signs applied to stream ``i``;
    rows are mutually orthogonal with ``P P^T = N_ltf I``, which is what
    lets the receiver separate the transmit antennas.
    """
    if not 1 <= n_streams <= 4:
        raise ConfigurationError(
            f"P matrix defined for 1..4 streams, got {n_streams}"
        )
    if n_streams == 1:
        return np.ones((1, 1))
    if n_streams == 2:
        return np.array([[1.0, -1.0], [1.0, 1.0]])
    if n_streams == 3:
        # First three rows/columns of P4 are mutually orthogonal over
        # 4 LTF symbols (3-stream NDPs still send 4 VHT-LTFs).
        return _P4[:3, :]
    return _P4.copy()


def ltf_sequence(n_subcarriers: int, seed: int = 0x4C54) -> np.ndarray:
    """Deterministic BPSK training sequence, one +/-1 per subcarrier.

    The real VHT-LTF sequence is a fixed standard table; any known BPSK
    sequence has identical estimation statistics, so we derive one
    reproducibly from the subcarrier count.
    """
    if n_subcarriers < 1:
        raise ConfigurationError("n_subcarriers must be >= 1")
    rng = np.random.default_rng(seed + n_subcarriers)
    return rng.choice([-1.0, 1.0], size=n_subcarriers)


@dataclass
class NdpObservation:
    """What the STA receives during one NDP."""

    received: np.ndarray  # (n_ltf, S, Nr) complex
    n_streams: int
    noise_power: float


def transmit_ndp(
    channel: np.ndarray,
    snr_db: float = 30.0,
    rng: "int | np.random.Generator | None" = 0,
) -> NdpObservation:
    """Send an NDP through ``channel`` of shape ``(S, Nr, Nt)``.

    Each transmit antenna carries the LTF sequence with its ``P``-row
    sign per LTF symbol; unit average symbol energy per antenna, AWGN at
    the given SNR relative to the per-antenna received energy.
    """
    channel = np.asarray(channel, dtype=np.complex128)
    if channel.ndim != 3:
        raise ShapeError(f"channel must be (S, Nr, Nt), got {channel.shape}")
    n_sc, n_rx, n_tx = channel.shape
    mapping = p_matrix(n_tx)  # (Nt, n_ltf)
    sequence = ltf_sequence(n_sc)  # (S,)
    rng = as_generator(rng)

    # x[t, s, a] = P[a, t] * ltf[s]; y = H x + n.
    excitation = mapping.T[:, None, :] * sequence[None, :, None]  # (n_ltf, S, Nt)
    received = np.einsum("srt,lst->lsr", channel, excitation)

    signal_power = float(np.mean(np.abs(received) ** 2))
    noise_power = signal_power / snr_db_to_linear(snr_db)
    noise = np.sqrt(noise_power / 2.0) * (
        rng.standard_normal(received.shape)
        + 1j * rng.standard_normal(received.shape)
    )
    return NdpObservation(
        received=received + noise, n_streams=n_tx, noise_power=noise_power
    )


def estimate_channel(observation: NdpObservation) -> np.ndarray:
    """LS channel estimate ``(S, Nr, Nt)`` from an NDP observation.

    Correlates the received LTF symbols against the known sequence and
    the ``P`` rows: ``H_hat[., ., a] = sum_t P[a, t] y_t / (ltf * n_ltf)``.
    """
    received = np.asarray(observation.received, dtype=np.complex128)
    if received.ndim != 3:
        raise ShapeError("observation.received must be (n_ltf, S, Nr)")
    n_ltf, n_sc, _ = received.shape
    mapping = p_matrix(observation.n_streams)
    if mapping.shape[1] != n_ltf:
        raise ShapeError(
            f"{n_ltf} LTF symbols inconsistent with "
            f"{observation.n_streams} streams"
        )
    sequence = ltf_sequence(n_sc)
    # Undo the training sequence, then project onto the P rows.
    de_sequenced = received / sequence[None, :, None]
    estimate = np.einsum("at,tsr->sra", mapping, de_sequenced)
    return estimate / n_ltf


def estimation_nmse(channel: np.ndarray, estimate: np.ndarray) -> float:
    """Normalized MSE ``E|H - H_hat|^2 / E|H|^2``."""
    channel = np.asarray(channel, dtype=np.complex128)
    estimate = np.asarray(estimate, dtype=np.complex128)
    if channel.shape != estimate.shape:
        raise ShapeError(
            f"shape mismatch: {channel.shape} vs {estimate.shape}"
        )
    power = float(np.mean(np.abs(channel) ** 2))
    if power <= 0:
        return float("inf")
    return float(np.mean(np.abs(channel - estimate) ** 2) / power)
