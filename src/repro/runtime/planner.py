"""Scenario -> task-DAG expansion with content-addressed keys.

Scenario points are independent measurements, so the plan is a flat DAG
(no edges) of :class:`~repro.runtime.executor.Task` entries; dependency
edges are the executor's job for sequential workloads such as session
campaigns.  The planner's value is the bookkeeping: every point gets a
stable cache key, and a shard label chosen so workers that memoize
datasets/models per process see related tasks back to back.

Cache keys hash only the fields that determine the measurement — the
display ``label`` and the fidelity's cosmetic ``name`` are excluded —
so the same physical point reached from two scenarios (or after a
relabel) shares one cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.executor import Task
from repro.runtime.hashing import task_key
from repro.runtime.spec import Scenario

__all__ = ["PlannedTask", "plan_scenario", "measurement_spec", "shard_labels"]

#: The engine's point-task entry point (importable in worker processes).
POINT_FN = "repro.runtime.tasks:run_point"


def measurement_spec(spec: dict) -> dict:
    """The cache-relevant subset of a task spec.

    Drops the display ``label`` and the fidelity preset's ``name`` —
    neither influences any computed number — so equal measurements are
    content-equal regardless of which scenario (or label wording)
    requested them.
    """
    trimmed = {key: value for key, value in spec.items() if key != "label"}
    trimmed["fidelity"] = {
        key: value
        for key, value in spec["fidelity"].items()
        if key != "name"
    }
    return trimmed


@dataclass(frozen=True)
class PlannedTask:
    """One scenario point, expanded and addressed."""

    index: int
    label: str
    spec: dict
    key: str
    task: Task


def shard_labels(specs, n_workers: int) -> "list[str | None]":
    """Shard by dataset when that still saturates the pool.

    Tasks sharing a dataset profit from landing on one worker (its
    per-process memo builds the dataset once), but pinning them together
    is only worth it when there are clearly more dataset groups than
    workers — otherwise sharding would serialize the scenario.  Any spec
    carrying a ``{"dataset": {"id", "seed"}}`` mapping works — scenario
    points and zoo-training entries alike.
    """
    datasets = [
        (spec["dataset"]["id"], spec["dataset"]["seed"]) for spec in specs
    ]
    if len(set(datasets)) >= 2 * max(n_workers, 1):
        return [f"{ds}:{seed}" for ds, seed in datasets]
    return [None] * len(specs)


def plan_scenario(
    scenario: Scenario,
    version: "str | None" = None,
    n_workers: int = 1,
) -> "list[PlannedTask]":
    """Expand a scenario into keyed, shard-labelled executor tasks."""
    specs = scenario.task_specs()
    shards = shard_labels(specs, n_workers)
    planned = []
    for index, (spec, shard) in enumerate(zip(specs, shards)):
        key = task_key(measurement_spec(spec), version)
        planned.append(
            PlannedTask(
                index=index,
                label=spec["label"],
                spec=spec,
                key=key,
                task=Task(
                    task_id=f"{index:04d}:{spec['label']}",
                    fn=POINT_FN,
                    params=spec,
                    shard=shard,
                ),
            )
        )
    return planned
