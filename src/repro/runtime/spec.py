"""Declarative scenario specs: JSON-able experiment-grid descriptions.

A :class:`Scenario` is a named, ordered tuple of *points*.  Each point
is a plain mapping — dataset, scheme, link parameters, BER sample
budget — that fully determines one measurement; nothing about it is
code, so points hash stably (for the result cache) and pickle cheaply
(for the worker pool).  The helpers below build well-formed points so
scenario authors never hand-write the nesting.

Point shape (see ``docs/runtime.md``)::

    {
      "label":        "2x2 E1 20 MHz SB 1/8",      # unique display name
      "dataset":      {"id": "D1", "seed": 7, "reset_interval": None},
      "eval_dataset": None | {...},                 # cross-env testing
      "scheme":       {"kind": "splitbeam", "compression": 0.125, "seed": 0},
      "link":         {"snr_db": 20.0, ...},        # LinkConfig overrides
      "ber_samples":  50 | None,                    # test[:n] (None = all)
    }
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import asdict, dataclass

from repro.config import Fidelity
from repro.errors import ConfigurationError

__all__ = [
    "Scenario",
    "point",
    "grid",
    "dot11",
    "ideal",
    "splitbeam",
    "lbscifi",
    "fidelity_to_dict",
    "fidelity_from_dict",
    "TrainingGrid",
    "zoo_entry",
    "NetworkCampaignSpec",
    "sta_profile",
    "mobility_episode",
]

#: Scheme kinds `repro.runtime.tasks.run_point` knows how to build.
SCHEME_KINDS = ("dot11", "ideal", "splitbeam", "lbscifi")


def fidelity_to_dict(fidelity: Fidelity) -> dict:
    """A :class:`Fidelity` as a plain JSON-able mapping."""
    return asdict(fidelity)


def fidelity_from_dict(payload: Mapping) -> Fidelity:
    """Rebuild a :class:`Fidelity` from :func:`fidelity_to_dict` output."""
    return Fidelity(**dict(payload))


def dot11() -> dict:
    """The IEEE 802.11 compressed-feedback baseline."""
    return {"kind": "dot11"}


def ideal() -> dict:
    """Unquantized SVD feedback (the BER floor)."""
    return {"kind": "ideal"}


def splitbeam(compression: float = 1 / 8, seed: int = 0) -> dict:
    """A SplitBeam model trained at ``compression`` with ``seed``."""
    return {"kind": "splitbeam", "compression": float(compression), "seed": int(seed)}


def lbscifi(compression: float = 1 / 8, seed: int = 0) -> dict:
    """An LB-SciFi autoencoder trained at ``compression``."""
    return {"kind": "lbscifi", "compression": float(compression), "seed": int(seed)}


def point(
    label: str,
    dataset_id: str,
    scheme: Mapping,
    *,
    dataset_seed: int = 7,
    reset_interval: "int | None" = None,
    eval_dataset_id: "str | None" = None,
    eval_dataset_seed: int = 7,
    eval_reset_interval: "int | None" = None,
    link: "Mapping | None" = None,
    ber_samples: "int | None" = None,
) -> dict:
    """One well-formed scenario point (see the module docstring)."""
    scheme = dict(scheme)
    if scheme.get("kind") not in SCHEME_KINDS:
        raise ConfigurationError(
            f"unknown scheme kind {scheme.get('kind')!r}; options: {SCHEME_KINDS}"
        )
    eval_dataset = None
    if eval_dataset_id is not None:
        eval_dataset = {
            "id": str(eval_dataset_id),
            "seed": int(eval_dataset_seed),
            "reset_interval": eval_reset_interval,
        }
    return {
        "label": str(label),
        "dataset": {
            "id": str(dataset_id),
            "seed": int(dataset_seed),
            "reset_interval": reset_interval,
        },
        "eval_dataset": eval_dataset,
        "scheme": scheme,
        "link": dict(link or {}),
        "ber_samples": None if ber_samples is None else int(ber_samples),
    }


def grid(**axes: Sequence) -> "list[dict]":
    """Cross product of named axes, in the given axis order.

    >>> grid(env=("E1", "E2"), k=(1, 2))[0]
    {'env': 'E1', 'k': 1}
    """
    names = list(axes)
    return [
        dict(zip(names, values))
        for values in itertools.product(*(axes[name] for name in names))
    ]


@dataclass(frozen=True)
class Scenario:
    """A named, ordered experiment grid at one fidelity."""

    name: str
    title: str
    fidelity: Mapping
    points: tuple
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if not self.points:
            raise ConfigurationError(f"scenario {self.name!r} has no points")
        fidelity_from_dict(self.fidelity)  # validates field names/values
        labels = set()
        for entry in self.points:
            for field_name in ("label", "dataset", "scheme"):
                if field_name not in entry:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: point missing {field_name!r}"
                    )
            if entry["label"] in labels:
                raise ConfigurationError(
                    f"scenario {self.name!r}: duplicate label {entry['label']!r}"
                )
            labels.add(entry["label"])

    @property
    def n_points(self) -> int:
        return len(self.points)

    def task_specs(self) -> "list[dict]":
        """Points merged with the scenario fidelity — the hashable specs."""
        fidelity = dict(self.fidelity)
        return [{**entry, "fidelity": fidelity} for entry in self.points]


# -- zoo-training grids ----------------------------------------------------------


def zoo_entry(
    label: str,
    dataset_id: str,
    *,
    dataset_seed: int = 7,
    reset_interval: "int | None" = None,
    compression: float = 1 / 8,
    widths: "Sequence[int] | None" = None,
    activation: str = "leaky_relu",
    qat_bits: "int | None" = None,
    quantizer_bits: "int | None" = 16,
    train_seed: int = 0,
    checkpoint_on: str = "loss",
    link: "Mapping | None" = None,
    ber_samples: "int | None" = None,
    notes: str = "",
) -> dict:
    """One well-formed training-grid entry (a JSON-able mapping).

    ``widths`` pins a full Table II architecture; when ``None`` the
    builder derives the 3-layer widths from ``compression`` and the
    dataset's input dimension.  ``link`` overrides the
    :class:`~repro.phy.link.LinkConfig` of the test-split BER
    measurement recorded on the zoo entry; ``ber_samples`` caps its
    sample count (``None`` = the grid fidelity's ``ber_samples``).
    """
    return {
        "label": str(label),
        "dataset": {
            "id": str(dataset_id),
            "seed": int(dataset_seed),
            "reset_interval": reset_interval,
        },
        "model": {
            "compression": None if widths is not None else float(compression),
            "widths": None if widths is None else [int(w) for w in widths],
            "activation": str(activation),
            "qat_bits": None if qat_bits is None else int(qat_bits),
        },
        "train": {
            "seed": int(train_seed),
            "checkpoint_on": str(checkpoint_on),
        },
        "quantizer_bits": None if quantizer_bits is None else int(quantizer_bits),
        "link": dict(link or {}),
        "ber_samples": None if ber_samples is None else int(ber_samples),
        "notes": str(notes),
    }


@dataclass(frozen=True)
class TrainingGrid:
    """A named, ordered grid of zoo-training entries at one fidelity.

    The training analogue of :class:`Scenario`: each entry is a plain
    mapping built by :func:`zoo_entry` — dataset, architecture, training
    seed — that fully determines one ``train_splitbeam`` run, so entries
    hash stably (for the checkpoint store) and pickle cheaply (for the
    worker pool).
    """

    name: str
    title: str
    fidelity: Mapping
    entries: tuple
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("training grid name must be non-empty")
        if not self.entries:
            raise ConfigurationError(f"training grid {self.name!r} has no entries")
        fidelity_from_dict(self.fidelity)  # validates field names/values
        labels = set()
        for entry in self.entries:
            for field_name in ("label", "dataset", "model", "train"):
                if field_name not in entry:
                    raise ConfigurationError(
                        f"training grid {self.name!r}: entry missing "
                        f"{field_name!r}"
                    )
            model = entry["model"]
            if model.get("widths") is None and model.get("compression") is None:
                raise ConfigurationError(
                    f"training grid {self.name!r}: entry "
                    f"{entry['label']!r} needs widths or compression"
                )
            if entry["label"] in labels:
                raise ConfigurationError(
                    f"training grid {self.name!r}: duplicate label "
                    f"{entry['label']!r}"
                )
            labels.add(entry["label"])

    @property
    def n_entries(self) -> int:
        return len(self.entries)

    def task_specs(self) -> "list[dict]":
        """Entries merged with the grid fidelity — the hashable specs."""
        fidelity = dict(self.fidelity)
        return [{**entry, "fidelity": fidelity} for entry in self.entries]


# -- network campaigns -----------------------------------------------------------

#: Per-STA feedback modes ``repro.core.network`` knows how to deploy.
STA_SCHEME_KINDS = ("splitbeam", "dot11")


def sta_profile(
    name: str,
    dataset_id: str,
    *,
    dataset_seed: int = 7,
    reset_interval: "int | None" = None,
    scheme: str = "splitbeam",
    compressions: Sequence[float] = (1 / 8, 1 / 4),
    quantizer_bits: "int | None" = 16,
    train_seed: int = 0,
    max_ber: float = 0.05,
    max_delay_s: float = 10e-3,
    mu: float = 0.5,
    cost: "Mapping | None" = None,
    doppler_hz: float = 3.0,
    samples_per_round: int = 4,
    seed: int = 0,
) -> dict:
    """One well-formed heterogeneous-STA profile (a JSON-able mapping).

    The device side of the paper's "heterogeneous devices and a wide
    range of performance requirements" scenario: each STA carries its
    own dataset (antenna configuration + bandwidth + environment), QoS
    profile (the Eq. (7) γ/τ/µ knobs), device cost model (``cost``
    overrides :class:`~repro.core.costs.StaCostModel` fields), feedback
    scheme (a SplitBeam compression ladder, or the 802.11 baseline),
    and mobility (``doppler_hz`` drives the round-to-round CSI aging
    that makes measured BER drift).
    """
    if scheme not in STA_SCHEME_KINDS:
        raise ConfigurationError(
            f"unknown STA scheme {scheme!r}; options: {STA_SCHEME_KINDS}"
        )
    compressions = tuple(float(k) for k in compressions)
    if scheme == "splitbeam" and not compressions:
        raise ConfigurationError(
            f"STA {name!r}: a splitbeam profile needs at least one "
            "compression level"
        )
    if doppler_hz < 0:
        raise ConfigurationError("doppler_hz must be non-negative")
    if samples_per_round < 1:
        raise ConfigurationError("samples_per_round must be >= 1")
    return {
        "name": str(name),
        "dataset": {
            "id": str(dataset_id),
            "seed": int(dataset_seed),
            "reset_interval": reset_interval,
        },
        "scheme": {
            "kind": str(scheme),
            "compressions": sorted(compressions),
            "quantizer_bits": (
                None if quantizer_bits is None else int(quantizer_bits)
            ),
            "train_seed": int(train_seed),
        },
        "qos": {
            "max_ber": float(max_ber),
            "max_delay_s": float(max_delay_s),
            "mu": float(mu),
        },
        "cost": dict(cost or {}),
        "doppler_hz": float(doppler_hz),
        "samples_per_round": int(samples_per_round),
        "seed": int(seed),
    }


def mobility_episode(
    start_round: int,
    *,
    doppler_scale: float = 1.0,
    snr_offset_db: float = 0.0,
) -> dict:
    """One mid-campaign environment shift, effective from ``start_round``.

    ``doppler_scale`` multiplies every STA's own Doppler spread (a
    mobility burst: people start moving); ``snr_offset_db`` shifts the
    operating SNR (a blockage / interference episode).  An episode
    stays in force until the next one's ``start_round``.
    """
    if start_round < 0:
        raise ConfigurationError("start_round must be non-negative")
    if doppler_scale < 0:
        raise ConfigurationError("doppler_scale must be non-negative")
    return {
        "start_round": int(start_round),
        "doppler_scale": float(doppler_scale),
        "snr_offset_db": float(snr_offset_db),
    }


@dataclass(frozen=True)
class NetworkCampaignSpec:
    """A named multi-STA network campaign at one fidelity.

    The network analogue of :class:`Scenario`: an AP sounding ``stas``
    (each a :func:`sta_profile` mapping) every ``interval_s`` for
    ``n_rounds`` rounds, under a shared base link (``link`` overrides
    :class:`~repro.phy.link.LinkConfig`) and an ordered tuple of
    :func:`mobility_episode` environment shifts.  Everything is plain
    JSON-able data, so per-round measurements hash stably for the
    result cache and the spec pickles cheaply.
    """

    name: str
    title: str
    fidelity: Mapping
    stas: tuple
    n_rounds: int
    interval_s: float = 10e-3
    link: Mapping = ()
    episodes: tuple = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign name must be non-empty")
        if not self.stas:
            raise ConfigurationError(f"campaign {self.name!r} has no STAs")
        if self.n_rounds < 1:
            raise ConfigurationError("n_rounds must be >= 1")
        if self.interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        fidelity_from_dict(self.fidelity)  # validates field names/values
        object.__setattr__(self, "link", dict(self.link or {}))
        names = set()
        for sta in self.stas:
            for field_name in ("name", "dataset", "scheme", "qos"):
                if field_name not in sta:
                    raise ConfigurationError(
                        f"campaign {self.name!r}: STA missing {field_name!r}"
                    )
            if sta["name"] in names:
                raise ConfigurationError(
                    f"campaign {self.name!r}: duplicate STA name "
                    f"{sta['name']!r}"
                )
            names.add(sta["name"])
        starts = [episode["start_round"] for episode in self.episodes]
        if starts != sorted(starts):
            raise ConfigurationError(
                f"campaign {self.name!r}: episodes must be ordered by "
                "start_round"
            )

    @property
    def n_stas(self) -> int:
        return len(self.stas)
