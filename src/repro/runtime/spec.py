"""Declarative scenario specs: JSON-able experiment-grid descriptions.

A :class:`Scenario` is a named, ordered tuple of *points*.  Each point
is a plain mapping — dataset, scheme, link parameters, BER sample
budget — that fully determines one measurement; nothing about it is
code, so points hash stably (for the result cache) and pickle cheaply
(for the worker pool).  The helpers below build well-formed points so
scenario authors never hand-write the nesting.

Point shape (see ``docs/runtime.md``)::

    {
      "label":        "2x2 E1 20 MHz SB 1/8",      # unique display name
      "dataset":      {"id": "D1", "seed": 7, "reset_interval": None},
      "eval_dataset": None | {...},                 # cross-env testing
      "scheme":       {"kind": "splitbeam", "compression": 0.125, "seed": 0},
      "link":         {"snr_db": 20.0, ...},        # LinkConfig overrides
      "ber_samples":  50 | None,                    # test[:n] (None = all)
    }
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import asdict, dataclass

from repro.config import Fidelity
from repro.errors import ConfigurationError

__all__ = [
    "Scenario",
    "point",
    "grid",
    "dot11",
    "ideal",
    "splitbeam",
    "lbscifi",
    "fidelity_to_dict",
    "fidelity_from_dict",
]

#: Scheme kinds `repro.runtime.tasks.run_point` knows how to build.
SCHEME_KINDS = ("dot11", "ideal", "splitbeam", "lbscifi")


def fidelity_to_dict(fidelity: Fidelity) -> dict:
    """A :class:`Fidelity` as a plain JSON-able mapping."""
    return asdict(fidelity)


def fidelity_from_dict(payload: Mapping) -> Fidelity:
    """Rebuild a :class:`Fidelity` from :func:`fidelity_to_dict` output."""
    return Fidelity(**dict(payload))


def dot11() -> dict:
    """The IEEE 802.11 compressed-feedback baseline."""
    return {"kind": "dot11"}


def ideal() -> dict:
    """Unquantized SVD feedback (the BER floor)."""
    return {"kind": "ideal"}


def splitbeam(compression: float = 1 / 8, seed: int = 0) -> dict:
    """A SplitBeam model trained at ``compression`` with ``seed``."""
    return {"kind": "splitbeam", "compression": float(compression), "seed": int(seed)}


def lbscifi(compression: float = 1 / 8, seed: int = 0) -> dict:
    """An LB-SciFi autoencoder trained at ``compression``."""
    return {"kind": "lbscifi", "compression": float(compression), "seed": int(seed)}


def point(
    label: str,
    dataset_id: str,
    scheme: Mapping,
    *,
    dataset_seed: int = 7,
    reset_interval: "int | None" = None,
    eval_dataset_id: "str | None" = None,
    eval_dataset_seed: int = 7,
    eval_reset_interval: "int | None" = None,
    link: "Mapping | None" = None,
    ber_samples: "int | None" = None,
) -> dict:
    """One well-formed scenario point (see the module docstring)."""
    scheme = dict(scheme)
    if scheme.get("kind") not in SCHEME_KINDS:
        raise ConfigurationError(
            f"unknown scheme kind {scheme.get('kind')!r}; options: {SCHEME_KINDS}"
        )
    eval_dataset = None
    if eval_dataset_id is not None:
        eval_dataset = {
            "id": str(eval_dataset_id),
            "seed": int(eval_dataset_seed),
            "reset_interval": eval_reset_interval,
        }
    return {
        "label": str(label),
        "dataset": {
            "id": str(dataset_id),
            "seed": int(dataset_seed),
            "reset_interval": reset_interval,
        },
        "eval_dataset": eval_dataset,
        "scheme": scheme,
        "link": dict(link or {}),
        "ber_samples": None if ber_samples is None else int(ber_samples),
    }


def grid(**axes: Sequence) -> "list[dict]":
    """Cross product of named axes, in the given axis order.

    >>> grid(env=("E1", "E2"), k=(1, 2))[0]
    {'env': 'E1', 'k': 1}
    """
    names = list(axes)
    return [
        dict(zip(names, values))
        for values in itertools.product(*(axes[name] for name in names))
    ]


@dataclass(frozen=True)
class Scenario:
    """A named, ordered experiment grid at one fidelity."""

    name: str
    title: str
    fidelity: Mapping
    points: tuple
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if not self.points:
            raise ConfigurationError(f"scenario {self.name!r} has no points")
        fidelity_from_dict(self.fidelity)  # validates field names/values
        labels = set()
        for entry in self.points:
            for field_name in ("label", "dataset", "scheme"):
                if field_name not in entry:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: point missing {field_name!r}"
                    )
            if entry["label"] in labels:
                raise ConfigurationError(
                    f"scenario {self.name!r}: duplicate label {entry['label']!r}"
                )
            labels.add(entry["label"])

    @property
    def n_points(self) -> int:
        return len(self.points)

    def task_specs(self) -> "list[dict]":
        """Points merged with the scenario fidelity — the hashable specs."""
        fidelity = dict(self.fidelity)
        return [{**entry, "fidelity": fidelity} for entry in self.points]
