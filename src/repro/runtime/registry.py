"""Named scenario and training-grid presets: the paper's figures and
new workloads.

Adding an experiment grid to the reproduction no longer means writing a
driver script with hand-rolled loops — register a builder here and every
consumer (benchmarks, examples, ad-hoc runs) gets planning, worker-pool
execution, and result caching from :class:`~repro.runtime.engine.
ExperimentEngine` for free.

Scenario presets
----------------
``fig09``             BER vs compression grid (12 datasets x 4 K + 802.11)
``fig12-ber``         SplitBeam vs LB-SciFi, single/cross environment
``fig13``             cross-environment BER matrix for 2x2 and 3x3
``synthetic-160mhz``  the 160 MHz coded-BER grid (D13-D15)
``multiuser-scaling`` STA count 2 -> 4 at 160 MHz (D13-D15)
``mobility-sweep``    channel re-randomization cadence as a mobility proxy
``cross-env-matrix``  full train x test environment matrix at one config
``snr-sweep``         BER vs operating SNR for the three core schemes

Training-grid presets (``repro.core.zoo_builder.train_zoo``)
------------------------------------------------------------
``compression-ladder``   one dataset, a ladder of compression levels
``table2-architectures`` the Table II architecture families on D1
``cross-env``            2x2/3x3 models per environment (the Fig. 13 zoo)

Network-campaign presets (``repro.core.network.run_campaign``)
--------------------------------------------------------------
``network-scale``      N heterogeneous STAs (datasets x QoS x devices x
                       Doppler x schemes) under the 10 ms deadline
``heterogeneous-qos``  one configuration, γ/τ/µ + device-tier spread
``mobility-episodes``  calm -> mobility/blockage burst -> recovery
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.config import FAST, Fidelity
from repro.errors import ConfigurationError
from repro.runtime.spec import (
    NetworkCampaignSpec,
    Scenario,
    TrainingGrid,
    dot11,
    fidelity_to_dict,
    ideal,
    lbscifi,
    mobility_episode,
    point,
    splitbeam,
    sta_profile,
    zoo_entry,
)

__all__ = [
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "register_training_grid",
    "get_training_grid",
    "training_grid_names",
    "register_campaign",
    "get_campaign",
    "campaign_names",
    "FIG12_FIDELITY",
    "FIG13_FIDELITY",
    "FIG10_FIDELITY",
]

#: Table I ids by (config, env, bandwidth) for the experimental datasets.
DATASET_GRID = {
    ("2x2", "E1", 20): "D1", ("3x3", "E1", 20): "D2",
    ("2x2", "E2", 20): "D3", ("3x3", "E2", 20): "D4",
    ("2x2", "E1", 40): "D5", ("3x3", "E1", 40): "D6",
    ("2x2", "E2", 40): "D7", ("3x3", "E2", 40): "D8",
    ("2x2", "E1", 80): "D9", ("3x3", "E1", 80): "D10",
    ("2x2", "E2", 80): "D11", ("3x3", "E2", 80): "D12",
}

#: Dataset-build seeds used throughout the figure benches.
ENV_SEEDS = {"E1": 7, "E2": 8}

LINK_20DB = {"snr_db": 20.0}

#: TRANSFER-like budget, trimmed for the wide 80 MHz inputs (Fig. 12).
FIG12_FIDELITY = Fidelity(
    name="fig12",
    n_samples=2000,
    n_sessions=8,
    epochs=50,
    ber_samples=50,
    ofdm_symbols=1,
    reset_interval=8,
)

#: Cross-environment budget for the Fig. 13 matrix.
FIG13_FIDELITY = Fidelity(
    name="fig13",
    n_samples=2000,
    n_sessions=8,
    epochs=50,
    ber_samples=50,
    ofdm_symbols=1,
    reset_interval=8,
)

#: Reduced budget for the widest-band (160 MHz) models.
FIG10_FIDELITY = Fidelity(
    name="fig10",
    n_samples=320,
    n_sessions=4,
    epochs=14,
    ber_samples=24,
    ofdm_symbols=1,
    reset_interval=40,
)

_SCENARIOS: "dict[str, Callable[..., Scenario]]" = {}


def register_scenario(name: str):
    """Decorator registering ``fn(fidelity, **kwargs) -> Scenario``."""

    def decorate(fn):
        if name in _SCENARIOS:
            raise ConfigurationError(f"scenario {name!r} already registered")
        _SCENARIOS[name] = fn
        return fn

    return decorate


def get_scenario(
    name: str, fidelity: "Fidelity | None" = None, **kwargs
) -> Scenario:
    """Build a registered scenario (``fidelity=None`` = preset default)."""
    try:
        builder = _SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; options: {scenario_names()}"
        ) from None
    return builder(fidelity=fidelity, **kwargs)


def scenario_names() -> "list[str]":
    return sorted(_SCENARIOS)


_TRAINING_GRIDS: "dict[str, Callable[..., TrainingGrid]]" = {}


def register_training_grid(name: str):
    """Decorator registering ``fn(fidelity, **kwargs) -> TrainingGrid``."""

    def decorate(fn):
        if name in _TRAINING_GRIDS:
            raise ConfigurationError(
                f"training grid {name!r} already registered"
            )
        _TRAINING_GRIDS[name] = fn
        return fn

    return decorate


def get_training_grid(
    name: str, fidelity: "Fidelity | None" = None, **kwargs
) -> TrainingGrid:
    """Build a registered training grid (``fidelity=None`` = preset default)."""
    try:
        builder = _TRAINING_GRIDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown training grid {name!r}; options: {training_grid_names()}"
        ) from None
    return builder(fidelity=fidelity, **kwargs)


def training_grid_names() -> "list[str]":
    return sorted(_TRAINING_GRIDS)


_CAMPAIGNS: "dict[str, Callable[..., NetworkCampaignSpec]]" = {}


def register_campaign(name: str):
    """Decorator registering ``fn(fidelity, **kwargs) -> NetworkCampaignSpec``."""

    def decorate(fn):
        if name in _CAMPAIGNS:
            raise ConfigurationError(f"campaign {name!r} already registered")
        _CAMPAIGNS[name] = fn
        return fn

    return decorate


def get_campaign(
    name: str, fidelity: "Fidelity | None" = None, **kwargs
) -> NetworkCampaignSpec:
    """Build a registered campaign (``fidelity=None`` = preset default)."""
    try:
        builder = _CAMPAIGNS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown campaign {name!r}; options: {campaign_names()}"
        ) from None
    return builder(fidelity=fidelity, **kwargs)


def campaign_names() -> "list[str]":
    return sorted(_CAMPAIGNS)


def _fid(fidelity: "Fidelity | None", default: Fidelity) -> Fidelity:
    return default if fidelity is None else fidelity


@register_scenario("fig09")
def _fig09(fidelity: "Fidelity | None" = None) -> Scenario:
    """Fig. 9: BER vs compression, SplitBeam vs 802.11, full Table I grid."""
    fidelity = _fid(fidelity, FAST)
    compressions = (1 / 32, 1 / 16, 1 / 8, 1 / 4)
    points = []
    for (config, env, bandwidth), dataset_id in DATASET_GRID.items():
        prefix = f"{config} {env} {bandwidth} MHz"
        for compression in compressions:
            points.append(
                point(
                    f"{prefix} SB 1/{round(1 / compression)}",
                    dataset_id,
                    splitbeam(compression),
                    dataset_seed=7,
                    link=LINK_20DB,
                    ber_samples=fidelity.ber_samples,
                )
            )
        points.append(
            point(
                f"{prefix} 802.11",
                dataset_id,
                dot11(),
                dataset_seed=7,
                link=LINK_20DB,
                ber_samples=fidelity.ber_samples,
            )
        )
    return Scenario(
        name="fig09",
        title="Fig. 9: BER vs compression rate (SplitBeam vs 802.11), "
        "16-QAM @ 20 dB",
        fidelity=fidelity_to_dict(fidelity),
        points=tuple(points),
    )


@register_scenario("fig12-ber")
def _fig12_ber(
    fidelity: "Fidelity | None" = None, bandwidth: int = 80
) -> Scenario:
    """Fig. 12 BER panel: SplitBeam vs LB-SciFi, single and cross env."""
    fidelity = _fid(fidelity, FIG12_FIDELITY)
    dataset_ids = {
        env: DATASET_GRID[("3x3", env, bandwidth)] for env in ("E1", "E2")
    }
    protocols = [
        ("E1", "E1", "E1"), ("E2", "E2", "E2"),
        ("E1/E2", "E1", "E2"), ("E2/E1", "E2", "E1"),
    ]
    schemes = {"SplitBeam": splitbeam(1 / 8), "LB-SciFi": lbscifi(1 / 8)}
    points = []
    for label, train_env, test_env in protocols:
        for scheme_name, scheme in schemes.items():
            cross = test_env != train_env
            points.append(
                point(
                    f"BER {label} {scheme_name} (K=1/8)",
                    dataset_ids[train_env],
                    scheme,
                    dataset_seed=ENV_SEEDS[train_env],
                    eval_dataset_id=dataset_ids[test_env] if cross else None,
                    eval_dataset_seed=ENV_SEEDS[test_env],
                    link=LINK_20DB,
                    ber_samples=fidelity.ber_samples,
                )
            )
    return Scenario(
        name="fig12-ber",
        title=f"Fig. 12: SplitBeam vs LB-SciFi, 3x3 @ {bandwidth} MHz",
        fidelity=fidelity_to_dict(fidelity),
        points=tuple(points),
    )


@register_scenario("fig13")
def _fig13(
    fidelity: "Fidelity | None" = None,
    bandwidths: Sequence[int] = (20, 40),
) -> Scenario:
    """Fig. 13: cross-environment BER matrix, K = 1/8."""
    fidelity = _fid(fidelity, FIG13_FIDELITY)
    points = []
    for config in ("2x2", "3x3"):
        for bandwidth in bandwidths:
            ids = {
                env: DATASET_GRID[(config, env, bandwidth)]
                for env in ("E1", "E2")
            }
            for train_env, test_env in (
                ("E1", "E1"), ("E1", "E2"), ("E2", "E2"), ("E2", "E1"),
            ):
                cross = test_env != train_env
                points.append(
                    point(
                        f"{config} {bandwidth} MHz {train_env}/{test_env}",
                        ids[train_env],
                        splitbeam(1 / 8),
                        dataset_seed=ENV_SEEDS[train_env],
                        eval_dataset_id=ids[test_env] if cross else None,
                        eval_dataset_seed=ENV_SEEDS[test_env],
                        link=LINK_20DB,
                        ber_samples=fidelity.ber_samples,
                    )
                )
            points.append(
                point(
                    f"{config} {bandwidth} MHz 802.11 (E1)",
                    ids["E1"],
                    dot11(),
                    dataset_seed=ENV_SEEDS["E1"],
                    link=LINK_20DB,
                    ber_samples=fidelity.ber_samples,
                )
            )
    return Scenario(
        name="fig13",
        title="Fig. 13: cross-environment BER, K = 1/8 "
        "(X/Y = trained in X, tested in Y)",
        fidelity=fidelity_to_dict(fidelity),
        points=tuple(points),
    )


@register_scenario("synthetic-160mhz")
def _synthetic_160mhz(fidelity: "Fidelity | None" = None) -> Scenario:
    """The paper's widest band: coded BER on D13-D15 at 160 MHz."""
    fidelity = _fid(fidelity, FIG10_FIDELITY)
    link = {"snr_db": 20.0, "use_coding": True, "n_ofdm_symbols": 1}
    points = []
    for config, dataset_id in (("2x2", "D13"), ("3x3", "D14"), ("4x4", "D15")):
        for scheme_name, scheme in (
            ("SplitBeam", splitbeam(1 / 8)),
            ("LB-SciFi", lbscifi(1 / 8)),
            ("802.11", dot11()),
        ):
            points.append(
                point(
                    f"{config} {scheme_name}",
                    dataset_id,
                    scheme,
                    dataset_seed=7,
                    link=link,
                    ber_samples=fidelity.ber_samples,
                )
            )
    return Scenario(
        name="synthetic-160mhz",
        title="160 MHz synthetic (D13-D15): coded BER, K = 1/8",
        fidelity=fidelity_to_dict(fidelity),
        points=tuple(points),
    )


@register_scenario("multiuser-scaling")
def _multiuser_scaling(fidelity: "Fidelity | None" = None) -> Scenario:
    """MU-MIMO group size scaling: 2, 3, 4 STAs at 160 MHz."""
    fidelity = _fid(fidelity, FIG10_FIDELITY)
    link = {"snr_db": 20.0, "use_coding": True, "n_ofdm_symbols": 1}
    points = []
    for n_users, dataset_id in ((2, "D13"), (3, "D14"), (4, "D15")):
        points.append(
            point(
                f"{n_users} users 802.11",
                dataset_id,
                dot11(),
                dataset_seed=7,
                link=link,
                ber_samples=fidelity.ber_samples,
            )
        )
        points.append(
            point(
                f"{n_users} users SplitBeam (K=1/8)",
                dataset_id,
                splitbeam(1 / 8),
                dataset_seed=7,
                link=link,
                ber_samples=fidelity.ber_samples,
            )
        )
    return Scenario(
        name="multiuser-scaling",
        title="Multi-user scaling: BER vs MU-MIMO group size @ 160 MHz",
        fidelity=fidelity_to_dict(fidelity),
        points=tuple(points),
    )


@register_scenario("mobility-sweep")
def _mobility_sweep(
    fidelity: "Fidelity | None" = None,
    dataset_id: str = "D5",
    reset_intervals: Sequence[int] = (4, 8, 16, 40),
) -> Scenario:
    """Channel re-randomization cadence as a station-mobility proxy.

    A smaller ``reset_interval`` means channels decorrelate faster
    within a collection session — the high-mobility regime the paper's
    sounding-interval discussion targets.
    """
    fidelity = _fid(fidelity, FAST)
    points = []
    for interval in reset_intervals:
        for scheme_name, scheme in (
            ("802.11", dot11()),
            ("SplitBeam (K=1/8)", splitbeam(1 / 8)),
        ):
            points.append(
                point(
                    f"reset={interval} {scheme_name}",
                    dataset_id,
                    scheme,
                    dataset_seed=7,
                    reset_interval=int(interval),
                    link=LINK_20DB,
                    ber_samples=fidelity.ber_samples,
                )
            )
    return Scenario(
        name="mobility-sweep",
        title=f"Mobility sweep: BER vs channel reset interval ({dataset_id})",
        fidelity=fidelity_to_dict(fidelity),
        points=tuple(points),
    )


@register_scenario("cross-env-matrix")
def _cross_env_matrix(
    fidelity: "Fidelity | None" = None,
    config: str = "3x3",
    bandwidths: Sequence[int] = (20, 40, 80),
) -> Scenario:
    """Full train x test environment matrix for one antenna config."""
    fidelity = _fid(fidelity, FIG13_FIDELITY)
    points = []
    for bandwidth in bandwidths:
        ids = {
            env: DATASET_GRID[(config, env, bandwidth)] for env in ("E1", "E2")
        }
        for train_env in ("E1", "E2"):
            for test_env in ("E1", "E2"):
                cross = test_env != train_env
                points.append(
                    point(
                        f"{bandwidth} MHz {train_env}/{test_env}",
                        ids[train_env],
                        splitbeam(1 / 8),
                        dataset_seed=ENV_SEEDS[train_env],
                        eval_dataset_id=ids[test_env] if cross else None,
                        eval_dataset_seed=ENV_SEEDS[test_env],
                        link=LINK_20DB,
                        ber_samples=fidelity.ber_samples,
                    )
                )
            points.append(
                point(
                    f"{bandwidth} MHz 802.11 ({train_env})",
                    ids[train_env],
                    dot11(),
                    dataset_seed=ENV_SEEDS[train_env],
                    link=LINK_20DB,
                    ber_samples=fidelity.ber_samples,
                )
            )
    return Scenario(
        name="cross-env-matrix",
        title=f"Cross-environment matrix: {config}, K = 1/8",
        fidelity=fidelity_to_dict(fidelity),
        points=tuple(points),
    )


#: Table II architecture families at 20 MHz (D = 224); the 3-layer row
#: is the paper's highlighted deployment model.
TABLE2_ARCHITECTURES: "dict[str, tuple[int, ...]]" = {
    "3-layer (Table II highlight)": (224, 28, 28, 224),
    "wide 5-layer": (224, 896, 1792, 896, 224),
    "tapered 6-layer": (224, 896, 896, 448, 448, 224),
}


@register_training_grid("compression-ladder")
def _compression_ladder(
    fidelity: "Fidelity | None" = None,
    dataset_id: str = "D1",
    dataset_seed: int = 7,
    compressions: Sequence[float] = (1 / 16, 1 / 8, 1 / 4),
    train_seed: int = 0,
) -> TrainingGrid:
    """A ladder of compression levels for one configuration.

    This is the zoo the adaptive controller (Sec. IV-C) walks at
    runtime: several models for one ``NetworkConfiguration``, most
    compressed first.
    """
    fidelity = _fid(fidelity, FAST)
    entries = tuple(
        zoo_entry(
            f"{dataset_id} K=1/{round(1 / k)}",
            dataset_id,
            dataset_seed=dataset_seed,
            compression=k,
            train_seed=train_seed,
            ber_samples=fidelity.ber_samples,
            notes=f"K=1/{round(1 / k)}",
        )
        for k in compressions
    )
    return TrainingGrid(
        name="compression-ladder",
        title=f"Compression ladder on {dataset_id}",
        fidelity=fidelity_to_dict(fidelity),
        entries=entries,
    )


@register_training_grid("table2-architectures")
def _table2_architectures(
    fidelity: "Fidelity | None" = None,
    dataset_id: str = "D1",
    train_seed: int = 0,
) -> TrainingGrid:
    """The Table II bottleneck-architecture families (2x2 @ 20 MHz)."""
    fidelity = _fid(fidelity, FAST)
    entries = tuple(
        zoo_entry(
            name,
            dataset_id,
            widths=widths,
            train_seed=train_seed,
            ber_samples=fidelity.ber_samples,
            notes=name,
        )
        for name, widths in TABLE2_ARCHITECTURES.items()
    )
    return TrainingGrid(
        name="table2-architectures",
        title="Table II: bottleneck structure study (2x2, 20 MHz)",
        fidelity=fidelity_to_dict(fidelity),
        entries=entries,
    )


@register_training_grid("cross-env")
def _cross_env_zoo(
    fidelity: "Fidelity | None" = None,
    configs: Sequence[str] = ("2x2", "3x3"),
    bandwidths: Sequence[int] = (20, 40),
    compressions: Sequence[float] = (1 / 8,),
    train_seed: int = 0,
) -> TrainingGrid:
    """One model per (configuration, environment, bandwidth, K).

    The offline zoo behind the Fig. 13 cross-environment story: a STA
    roaming between E1 and E2 needs a trained model for each.
    """
    fidelity = _fid(fidelity, FIG13_FIDELITY)
    entries = []
    for config in configs:
        for bandwidth in bandwidths:
            for env in ("E1", "E2"):
                dataset_id = DATASET_GRID[(config, env, bandwidth)]
                for k in compressions:
                    entries.append(
                        zoo_entry(
                            f"{config} {env} {bandwidth} MHz K=1/{round(1 / k)}",
                            dataset_id,
                            dataset_seed=ENV_SEEDS[env],
                            compression=k,
                            train_seed=train_seed,
                            ber_samples=fidelity.ber_samples,
                            notes=f"{env} K=1/{round(1 / k)}",
                        )
                    )
    return TrainingGrid(
        name="cross-env",
        title="Cross-environment model zoo (E1 + E2 per configuration)",
        fidelity=fidelity_to_dict(fidelity),
        entries=tuple(entries),
    )


#: Device tiers for heterogeneous campaigns: a watch-class wearable, the
#: default low-power STA, and a laptop-class client (Sec. IV-B's
#: "heterogeneous devices" axis).
DEVICE_TIERS: "tuple[dict, ...]" = (
    {"sta_flops_per_s": 0.5e9, "tx_energy_per_bit_j": 8e-8},
    {},
    {"sta_flops_per_s": 8e9, "tx_energy_per_bit_j": 3e-8},
)

#: QoS tiers: a latency/BER-critical flow, the default profile, and a
#: best-effort bulk flow (the "wide range of performance requirements").
QOS_TIERS: "tuple[dict, ...]" = (
    {"max_ber": 0.02, "max_delay_s": 6e-3, "mu": 0.7},
    {"max_ber": 0.05, "max_delay_s": 10e-3, "mu": 0.5},
    {"max_ber": 0.10, "max_delay_s": 10e-3, "mu": 0.3},
)


@register_campaign("network-scale")
def _network_scale(
    fidelity: "Fidelity | None" = None,
    n_stas: int = 16,
    n_rounds: int = 10,
    gamma_scale: float = 1.0,
) -> NetworkCampaignSpec:
    """The headline workload: an AP serving ``n_stas`` heterogeneous STAs.

    STAs cycle through datasets (two bandwidths x two environments),
    device tiers, QoS tiers, Doppler spreads, compression ladders, and
    feedback schemes (every fourth STA runs plain 802.11), all sounded
    under the 10 ms MU-MIMO deadline the paper's intro argues from.

    ``gamma_scale`` loosens (or tightens) every tier's BER ceiling —
    reduced-fidelity runs train rougher models, so smoke-scale demos
    pass ``gamma_scale > 1`` to keep the SplitBeam path selectable
    instead of collapsing everyone onto the 802.11 fallback.
    """
    fidelity = _fid(fidelity, FAST)
    if gamma_scale <= 0:
        raise ConfigurationError("gamma_scale must be positive")
    dataset_keys = (
        ("2x2", "E1", 20), ("2x2", "E1", 40),
        ("2x2", "E2", 20), ("2x2", "E2", 40),
    )
    ladders = ((1 / 16, 1 / 8), (1 / 8, 1 / 4))
    dopplers = (1.0, 3.0, 8.0)
    stas = []
    for i in range(n_stas):
        config, env, bandwidth = dataset_keys[i % len(dataset_keys)]
        qos = dict(QOS_TIERS[i % len(QOS_TIERS)])
        qos["max_ber"] = min(qos["max_ber"] * gamma_scale, 1.0)
        stas.append(
            sta_profile(
                f"sta{i:03d}",
                DATASET_GRID[(config, env, bandwidth)],
                dataset_seed=ENV_SEEDS[env],
                scheme="dot11" if i % 4 == 3 else "splitbeam",
                compressions=ladders[i % len(ladders)],
                cost=DEVICE_TIERS[i % len(DEVICE_TIERS)],
                doppler_hz=dopplers[i % len(dopplers)],
                seed=i,
                **qos,
            )
        )
    return NetworkCampaignSpec(
        name="network-scale",
        title=f"Network scale: {n_stas} heterogeneous STAs @ 10 ms sounding",
        fidelity=fidelity_to_dict(fidelity),
        stas=tuple(stas),
        n_rounds=int(n_rounds),
    )


@register_campaign("heterogeneous-qos")
def _heterogeneous_qos(
    fidelity: "Fidelity | None" = None,
    dataset_id: str = "D1",
    n_stas: int = 12,
    n_rounds: int = 8,
) -> NetworkCampaignSpec:
    """One configuration, a spread of QoS/device demands (Sec. IV-B).

    Every STA shares the channel and model ladder; only γ/τ/µ and the
    device cost model vary — from a BER target so strict no trained
    model satisfies it (the STA falls back to 802.11, the paper's
    explicit escape hatch) to best-effort profiles that ride the most
    compressed rung.  A static channel (zero Doppler) isolates the
    QoS axis.
    """
    fidelity = _fid(fidelity, FAST)
    stas = []
    for i in range(n_stas):
        frac = i / max(n_stas - 1, 1)
        stas.append(
            sta_profile(
                f"qos{i:03d}",
                dataset_id,
                compressions=(1 / 16, 1 / 8, 1 / 4),
                # γ sweeps 1e-4 (infeasible for any rung -> 802.11
                # fallback) up to 0.2 (anything goes); τ tightens from
                # 10 ms down to 4 ms at the latency-critical end.
                max_ber=1e-4 * (0.2 / 1e-4) ** frac,
                max_delay_s=4e-3 + 6e-3 * frac,
                mu=0.1 + 0.8 * frac,
                cost=DEVICE_TIERS[i % len(DEVICE_TIERS)],
                doppler_hz=0.0,
                seed=i,
            )
        )
    return NetworkCampaignSpec(
        name="heterogeneous-qos",
        title=f"Heterogeneous QoS: {n_stas} STAs on {dataset_id}, "
        "γ from 1e-4 to 0.2",
        fidelity=fidelity_to_dict(fidelity),
        stas=tuple(stas),
        n_rounds=int(n_rounds),
    )


@register_campaign("mobility-episodes")
def _mobility_episodes(
    fidelity: "Fidelity | None" = None,
    dataset_id: str = "D5",
    n_stas: int = 8,
    n_rounds: int = 12,
) -> NetworkCampaignSpec:
    """Mid-campaign mobility bursts driving the adaptive controllers.

    Three phases: calm (pedestrian Doppler), a mobility + blockage
    burst (everyone's CSI ages faster, the operating SNR sags, measured
    BER drifts up, controllers step down the ladder), then recovery
    (controllers ramp back up after ``patience`` clean rounds).
    """
    fidelity = _fid(fidelity, FAST)
    burst = n_rounds // 3
    recovery = 2 * n_rounds // 3
    stas = tuple(
        sta_profile(
            f"mob{i:03d}",
            dataset_id,
            compressions=(1 / 16, 1 / 8, 1 / 4),
            doppler_hz=(2.0, 4.0)[i % 2],
            cost=DEVICE_TIERS[i % len(DEVICE_TIERS)],
            seed=i,
        )
        for i in range(n_stas)
    )
    return NetworkCampaignSpec(
        name="mobility-episodes",
        title=f"Mobility episodes: {n_stas} STAs, burst rounds "
        f"[{burst}, {recovery})",
        fidelity=fidelity_to_dict(fidelity),
        stas=stas,
        n_rounds=int(n_rounds),
        episodes=(
            mobility_episode(0),
            mobility_episode(burst, doppler_scale=10.0, snr_offset_db=-3.0),
            mobility_episode(recovery, doppler_scale=1.0),
        ),
    )


@register_scenario("snr-sweep")
def _snr_sweep(
    fidelity: "Fidelity | None" = None,
    dataset_id: str = "D1",
    snrs_db: Sequence[float] = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
) -> Scenario:
    """BER vs operating SNR for ideal / 802.11 / SplitBeam feedback."""
    fidelity = _fid(fidelity, FAST)
    points = []
    for snr_db in snrs_db:
        for scheme_name, scheme in (
            ("ideal", ideal()),
            ("802.11", dot11()),
            ("SplitBeam (K=1/8)", splitbeam(1 / 8)),
        ):
            points.append(
                point(
                    f"{snr_db:g} dB {scheme_name}",
                    dataset_id,
                    scheme,
                    dataset_seed=7,
                    link={"snr_db": float(snr_db)},
                    ber_samples=fidelity.ber_samples,
                )
            )
    return Scenario(
        name="snr-sweep",
        title=f"BER vs SNR ({dataset_id})",
        fidelity=fidelity_to_dict(fidelity),
        points=tuple(points),
    )
