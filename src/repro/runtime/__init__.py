"""``repro.runtime``: parallel experiment orchestration.

The figure benchmarks, sweeps, and session campaigns all expand to grids
of *pure, seeded* measurement tasks.  This package turns those grids
into explicit plans and executes them with reuse:

- :mod:`repro.runtime.spec` — declarative :class:`Scenario` specs
  (dataset, scheme, link grids) expressed as plain JSON-able mappings;
- :mod:`repro.runtime.registry` — named scenario presets covering the
  paper's figures plus new workloads (160 MHz, mobility, multi-user
  scaling, cross-environment matrices);
- :mod:`repro.runtime.planner` — expands a scenario into a DAG of
  tasks with stable content-addressed keys;
- :mod:`repro.runtime.executor` — runs task DAGs on a worker pool
  (with a deterministic in-process fallback); results are bit-identical
  to serial execution because every task is a pure function of its
  parameters;
- :mod:`repro.runtime.payloads` — per-run content-addressed interning
  of large task payloads (models, round slices), so each worker
  deserializes a shared payload once instead of once per task;
- :mod:`repro.runtime.cache` — content-addressed result store keyed by
  (task spec, code version) so re-runs and overlapping scenarios skip
  completed points;
- :mod:`repro.runtime.store` — the crash-safe packed segment store
  underneath the result cache and checkpoint store: CRC-framed records
  in bounded append-only segments, an atomic index snapshot, recovery
  scans, compaction, and cross-process locking;
- :mod:`repro.runtime.faults` — deterministic, seeded fault injection
  (task errors, worker crashes, delays, torn store writes) for testing
  the executor's retries, pool rebuilds, and store quarantine;
- :mod:`repro.runtime.engine` — the :class:`ExperimentEngine` tying
  planner, executor, and cache together.

See ``docs/runtime.md`` for the scenario format, cache layout, worker
model, and determinism guarantees.
"""

from repro.runtime.cache import ResultCache, StoreHealth, default_cache_root
from repro.runtime.checkpoints import (
    Checkpoint,
    CheckpointStore,
    default_checkpoint_root,
)
from repro.runtime.engine import EngineRun, ExperimentEngine
from repro.runtime.executor import (
    RetryPolicy,
    RunHealth,
    Task,
    TaskExecutionError,
    resolve_worker_count,
    run_tasks,
)
from repro.runtime.faults import (
    FaultPlan,
    FaultRule,
    InjectedFaultError,
    active_plan,
    install,
    parse_plan,
)
from repro.runtime.hashing import (
    canonical_json,
    code_version,
    state_digest,
    task_key,
)
from repro.runtime.payloads import PayloadRef, PayloadStore
from repro.runtime.planner import PlannedTask, plan_scenario
from repro.runtime.store import SegmentStore, migrate
from repro.runtime.registry import (
    campaign_names,
    get_campaign,
    get_scenario,
    get_training_grid,
    register_campaign,
    register_scenario,
    register_training_grid,
    scenario_names,
    training_grid_names,
)
from repro.runtime.spec import (
    NetworkCampaignSpec,
    Scenario,
    TrainingGrid,
    dot11,
    fidelity_from_dict,
    fidelity_to_dict,
    grid,
    ideal,
    lbscifi,
    mobility_episode,
    point,
    splitbeam,
    sta_profile,
    zoo_entry,
)

__all__ = [
    "Scenario",
    "TrainingGrid",
    "NetworkCampaignSpec",
    "point",
    "zoo_entry",
    "sta_profile",
    "mobility_episode",
    "grid",
    "dot11",
    "ideal",
    "lbscifi",
    "splitbeam",
    "fidelity_to_dict",
    "fidelity_from_dict",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "register_training_grid",
    "get_training_grid",
    "training_grid_names",
    "register_campaign",
    "get_campaign",
    "campaign_names",
    "PlannedTask",
    "plan_scenario",
    "Task",
    "TaskExecutionError",
    "RetryPolicy",
    "RunHealth",
    "run_tasks",
    "resolve_worker_count",
    "FaultPlan",
    "FaultRule",
    "InjectedFaultError",
    "parse_plan",
    "install",
    "active_plan",
    "StoreHealth",
    "SegmentStore",
    "migrate",
    "PayloadRef",
    "PayloadStore",
    "ResultCache",
    "default_cache_root",
    "Checkpoint",
    "CheckpointStore",
    "default_checkpoint_root",
    "canonical_json",
    "code_version",
    "state_digest",
    "task_key",
    "EngineRun",
    "ExperimentEngine",
]
