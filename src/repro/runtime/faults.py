"""Deterministic, seeded fault injection for the runtime engine.

Every task in this reproduction is pure and seeded, which licenses an
unusually strong fault-tolerance contract: a run with injected faults
must produce **byte-identical** results to the fault-free run — chaos
only costs retries, never bytes.  This module provides the chaos half
of that contract: a :class:`FaultPlan` is a tuple of :class:`FaultRule`
entries that fire at *chosen* task-id patterns, deterministic rates,
and occurrence counts — reproducible injected failure, never random
flake.

Fault kinds
-----------

``error``
    Raise :class:`InjectedFaultError` before the task body runs.  The
    executor's bounded retries absorb it (``count`` controls how many
    attempts fail before the task succeeds).
``crash``
    Hard-kill the worker process with ``os._exit`` (no cleanup, no
    exception propagation — exactly what an OOM kill or segfault looks
    like to the coordinator).  In the in-process executor a crash is
    downgraded to an :class:`InjectedFaultError` so the coordinator
    itself survives.
``delay``
    Sleep ``delay_s`` before the task body runs (exercises per-task
    timeouts).
``torn``
    Corrupt a store write.  Four label families select what tears:

    - ``cache:<key>`` / ``checkpoint:<key>`` — the matching
      :class:`~repro.runtime.cache.ResultCache` /
      :class:`~repro.runtime.checkpoints.CheckpointStore` entry lands
      with a broken record CRC, as if the writer died mid-write after
      queueing the index publish.  The next reader quarantines it and
      recomputes.
    - ``segment:<segment-name>`` — the packed store's append to that
      segment (``seg-<gen>-<seq>.seg``) lands as a torn, unindexed
      tail, exactly what a worker killed mid-``write`` leaves behind.
      The next open's recovery scan truncates the tail and the lost
      point is recomputed.
    - ``index:<store-label>`` — the packed store's index snapshot for
      that store (``index:cache`` / ``index:checkpoint``) lands
      unparseable, forcing the next open into the full
      rebuild-from-segments scan.  Tear it during ``prune`` to
      exercise crash-mid-compaction recovery.

Rule selection is deterministic end to end: a rule applies to a target
(task id or ``store:key`` label) when the target matches ``match``
(fnmatch glob) *and* the target's hash-derived uniform draw —
``sha256(seed, match, target)`` mapped to [0, 1) — falls under
``rate``.  A selected rule then fires on the first ``count`` attempts
(or store writes) of that target.  No global counters, no wall-clock:
two processes (or two runs) always agree on exactly which attempts
fail.

Activation
----------

Pass a plan explicitly (``run_tasks(..., faults=plan)``,
``ExperimentEngine(..., faults=plan)``), install one process-wide with
:func:`install`, or set ``$REPRO_RUNTIME_FAULTS``.  The environment
grammar is semicolon-separated rules of comma-separated fields; the
first two bare fields are ``kind`` and ``match``, the rest are
``key=value``::

    REPRO_RUNTIME_FAULTS="crash,*/round-0001,count=1;torn,cache:*,rate=0.5,seed=3"

"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from functools import lru_cache

from repro.errors import ConfigurationError, ReproError
from repro.runtime import knobs

__all__ = [
    "FAULTS_ENV",
    "FaultRule",
    "FaultPlan",
    "InjectedFaultError",
    "install",
    "active_plan",
    "parse_plan",
]

#: Environment variable holding a fault-plan description (grammar above)
#: (canonical home: :mod:`repro.runtime.knobs`; re-exported here).
FAULTS_ENV = knobs.FAULTS_ENV

#: Exit status used by injected worker crashes (distinctive in logs).
CRASH_EXIT_CODE = 66

#: Fault kinds a rule may carry.
KINDS = ("error", "crash", "delay", "torn")


class InjectedFaultError(ReproError):
    """A failure injected by a :class:`FaultPlan` (never a real bug)."""


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: kind, target pattern, rate, count.

    Parameters
    ----------
    kind:
        ``"error"``, ``"crash"``, ``"delay"``, or ``"torn"``.
    match:
        fnmatch glob over the target — a task id for task faults; a
        ``"cache:<key>"`` / ``"checkpoint:<key>"`` /
        ``"segment:<name>"`` / ``"index:<store-label>"`` label for
        ``torn``.
    count:
        How many attempts (or store writes) of each selected target
        fire, counted from zero.
    rate:
        Deterministic fraction of matching targets the rule selects
        (hash of ``(seed, match, target)`` — not a random draw).
    delay_s:
        Sleep length for ``delay`` rules.
    seed:
        Varies which targets a ``rate`` < 1 selects.
    """

    kind: str
    match: str = "*"
    count: int = 1
    rate: float = 1.0
    delay_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.count < 1:
            raise ConfigurationError("fault count must be >= 1")
        if not 0.0 < self.rate <= 1.0:
            raise ConfigurationError("fault rate must be in (0, 1]")
        if self.delay_s < 0:
            raise ConfigurationError("fault delay_s must be >= 0")

    def selects(self, target: str) -> bool:
        """Whether this rule applies to ``target`` (pattern and rate)."""
        if not fnmatchcase(target, self.match):
            return False
        if self.rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}:{self.match}:{target}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < self.rate

    def fires(self, target: str, occurrence: int) -> bool:
        """Whether the rule fires on the ``occurrence``-th attempt/write."""
        return occurrence < self.count and self.selects(target)


class FaultPlan:
    """An ordered tuple of :class:`FaultRule` entries (see module doc).

    The plan itself is immutable apart from the ``torn``-write
    occurrence counters, which live in the coordinating process only
    (store writes never happen in workers).
    """

    def __init__(self, rules) -> None:
        self.rules: "tuple[FaultRule, ...]" = tuple(rules)
        self._tear_counts: "dict[tuple[int, str], int]" = {}

    def __len__(self) -> int:
        return len(self.rules)

    def __getstate__(self) -> dict:
        # Workers only consult task faults; the coordinator keeps the
        # (mutable) tear counters, so a pickled copy starts clean.
        return {"rules": self.rules}

    def __setstate__(self, state: dict) -> None:
        self.rules = state["rules"]
        self._tear_counts = {}

    # -- task faults (coordinator predicts, workers apply) ----------------------

    def task_rules(self, task_id: str, attempt: int) -> "list[FaultRule]":
        """Rules firing on this (task, attempt), in plan order."""
        return [
            rule
            for rule in self.rules
            if rule.kind in ("error", "crash", "delay")
            and rule.fires(task_id, attempt)
        ]

    def apply_task_faults(
        self, task_id: str, attempt: int, in_worker: bool
    ) -> None:
        """Inject this attempt's faults (sleep, raise, or hard-exit).

        Called by the executor immediately before the task body runs —
        in the worker process on the pool path, in the coordinator on
        the serial path (where ``crash`` downgrades to an exception so
        the run itself survives).
        """
        for rule in self.task_rules(task_id, attempt):
            if rule.kind == "delay":
                time.sleep(rule.delay_s)
            elif rule.kind == "error":
                raise InjectedFaultError(
                    f"injected task error: {task_id!r} attempt {attempt}"
                )
            elif rule.kind == "crash":
                if in_worker:
                    os._exit(CRASH_EXIT_CODE)
                raise InjectedFaultError(
                    f"injected worker crash (downgraded to an error by the "
                    f"in-process executor): {task_id!r} attempt {attempt}"
                )

    # -- store faults (coordinator only) ----------------------------------------

    def tear(self, store: str, key: str) -> bool:
        """Whether this write of ``store:key`` should land torn.

        Occurrence-counted per (rule, label): the first ``count``
        writes of a selected label are corrupted, later ones land
        clean — so a retried/recomputed write eventually commits.
        """
        label = f"{store}:{key}"
        torn = False
        for index, rule in enumerate(self.rules):
            if rule.kind != "torn" or not rule.selects(label):
                continue
            occurrence = self._tear_counts.get((index, label), 0)
            self._tear_counts[(index, label)] = occurrence + 1
            if occurrence < rule.count:
                torn = True
        return torn

    # -- description -------------------------------------------------------------

    def describe(self) -> str:
        """The plan back in environment-grammar form."""
        parts = []
        for rule in self.rules:
            fields = [rule.kind, rule.match]
            if rule.count != 1:
                fields.append(f"count={rule.count}")
            if rule.rate < 1.0:
                fields.append(f"rate={rule.rate:g}")
            if rule.delay_s:
                fields.append(f"delay_s={rule.delay_s:g}")
            if rule.seed:
                fields.append(f"seed={rule.seed}")
            parts.append(",".join(fields))
        return ";".join(parts)


def parse_plan(text: str) -> FaultPlan:
    """Parse the ``$REPRO_RUNTIME_FAULTS`` grammar into a plan.

    Rules are separated by ``;``; within a rule, comma-separated
    fields: the first two bare fields are ``kind`` and ``match``, the
    rest ``key=value`` (``count``, ``rate``, ``delay_s``, ``seed``).
    """
    rules = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        positional: "list[str]" = []
        keywords: "dict[str, str]" = {}
        for raw in chunk.split(","):
            field_text = raw.strip()
            if not field_text:
                continue
            name, sep, value = field_text.partition("=")
            if sep and name in ("count", "rate", "delay_s", "seed", "match", "kind"):
                keywords[name] = value
            elif sep and len(positional) != 1:
                # An "=" is only tolerated inside the match slot: task
                # ids such as zoo entries ("0004:D1 K=1/8") contain it.
                raise ConfigurationError(
                    f"unknown fault-rule field {name!r} in {chunk!r}"
                )
            else:
                positional.append(field_text)
        if positional:
            keywords.setdefault("kind", positional[0])
        if len(positional) > 1:
            keywords.setdefault("match", positional[1])
        if len(positional) > 2:
            raise ConfigurationError(
                f"too many bare fields in fault rule {chunk!r}"
            )
        if "kind" not in keywords:
            raise ConfigurationError(f"fault rule {chunk!r} names no kind")
        try:
            rules.append(
                FaultRule(
                    kind=keywords["kind"],
                    match=keywords.get("match", "*"),
                    count=int(keywords.get("count", 1)),
                    rate=float(keywords.get("rate", 1.0)),
                    delay_s=float(keywords.get("delay_s", 0.0)),
                    seed=int(keywords.get("seed", 0)),
                )
            )
        except ValueError as exc:
            raise ConfigurationError(
                f"bad fault-rule value in {chunk!r}: {exc}"
            ) from None
    if not rules:
        raise ConfigurationError("fault plan text contains no rules")
    return FaultPlan(rules)


@lru_cache(maxsize=8)
def _parse_cached(text: str) -> FaultPlan:
    return parse_plan(text)


_INSTALLED: "FaultPlan | None" = None


def install(plan: "FaultPlan | None") -> "FaultPlan | None":
    """Install ``plan`` process-wide; returns the previous plan.

    The engines install their explicit plan for the duration of a run
    (restoring the previous one after) so store writes — which happen
    inside ``cache.put`` / ``store.put``, far from any executor kwarg —
    see the same chaos schedule as the tasks.
    """
    global _INSTALLED
    previous = _INSTALLED
    _INSTALLED = plan
    return previous


def active_plan(explicit: "FaultPlan | None" = None) -> "FaultPlan | None":
    """The plan in force: explicit, else installed, else the environment."""
    if explicit is not None:
        return explicit
    if _INSTALLED is not None:
        return _INSTALLED
    text = (knobs.read_knob(FAULTS_ENV, "") or "").strip()
    if not text:
        return None
    return _parse_cached(text)
