"""Pure task functions executed by the runtime workers.

Every function here takes a single parameter mapping and returns a
JSON-able (or at least picklable) result, with no reliance on process
state beyond memoization: datasets and trained models are cached
per process keyed by their full build recipe, which is safe because
both are deterministic functions of (spec, fidelity, seed).  A worker
that rebuilds instead of reusing gets bit-identical objects, so results
never depend on which worker ran what.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.config import Fidelity
from repro.errors import ConfigurationError
from repro.phy.link import LinkConfig, LinkSimulator

__all__ = [
    "run_point",
    "link_ber_point",
    "session_round",
    "network_round",
    "train_zoo_entry",
    "payload_probe",
    "clear_memos",
]

_DATASETS: dict = {}
_SCHEMES: dict = {}


def clear_memos() -> None:
    """Drop the per-process dataset/model/payload memos (benchmarks use this)."""
    from repro.runtime.payloads import clear_payload_cache

    # Read-through memos keyed purely on frozen specs: clearing them
    # only forces a bit-identical rebuild, never a different result.
    _DATASETS.clear()  # repro: allow[REP-PURE-TASK]
    _SCHEMES.clear()  # repro: allow[REP-PURE-TASK]
    clear_payload_cache()


def _fidelity(payload: Mapping) -> Fidelity:
    return Fidelity(**dict(payload))


def _freeze(payload: Mapping) -> tuple:
    return tuple(sorted(payload.items()))


def _get_dataset(dataset: Mapping, fidelity: Mapping):
    key = (_freeze(dataset), _freeze(fidelity))
    # Pure read-through memo: the key freezes every input, so a miss
    # rebuilds bit-identical state; clear_memos only forces that rebuild.
    if key not in _DATASETS:  # repro: allow[REP-PURE-TASK]
        from repro.datasets import build_dataset, dataset_spec

        _DATASETS[key] = build_dataset(
            dataset_spec(dataset["id"]),
            fidelity=_fidelity(fidelity),
            reset_interval=dataset.get("reset_interval"),
            seed=dataset["seed"],
        )
    return _DATASETS[key]


def _get_scheme(scheme: Mapping, dataset_spec_map: Mapping, fidelity: Mapping):
    """Build (or reuse) the feedback scheme a point asks for."""
    kind = scheme.get("kind")
    key = (_freeze(scheme), _freeze(dataset_spec_map), _freeze(fidelity))
    # Pure read-through memo (see _get_dataset): fully-keyed, rebuilds
    # bit-identically on a miss.
    if key in _SCHEMES:  # repro: allow[REP-PURE-TASK]
        return _SCHEMES[key]
    if kind == "dot11":
        from repro.baselines import Dot11Feedback

        built = Dot11Feedback()
    elif kind == "ideal":
        from repro.baselines import IdealSvdFeedback

        built = IdealSvdFeedback()
    elif kind == "splitbeam":
        from repro.core.pipeline import SplitBeamFeedback
        from repro.core.training import train_splitbeam

        built = SplitBeamFeedback(
            train_splitbeam(
                _get_dataset(dataset_spec_map, fidelity),
                compression=scheme["compression"],
                fidelity=_fidelity(fidelity),
                seed=scheme["seed"],
            )
        )
    elif kind == "lbscifi":
        from repro.baselines import train_lbscifi

        built = train_lbscifi(
            _get_dataset(dataset_spec_map, fidelity),
            compression=scheme["compression"],
            fidelity=_fidelity(fidelity),
            seed=scheme["seed"],
        )
    else:
        raise ConfigurationError(f"unknown scheme kind {kind!r}")
    _SCHEMES[key] = built
    return built


def run_point(params: Mapping) -> dict:
    """Measure one scenario point; the engine's task function.

    ``params`` is a scenario point merged with its fidelity (see
    :meth:`repro.runtime.spec.Scenario.task_specs`).
    """
    from repro.core.pipeline import evaluate_scheme

    fidelity = params["fidelity"]
    dataset = _get_dataset(params["dataset"], fidelity)
    eval_spec = params.get("eval_dataset")
    eval_dataset = (
        _get_dataset(eval_spec, fidelity) if eval_spec is not None else None
    )
    scheme = _get_scheme(params["scheme"], params["dataset"], fidelity)
    target = eval_dataset if eval_dataset is not None else dataset
    ber_samples = params.get("ber_samples")
    indices = target.splits.test
    if ber_samples is not None:
        indices = indices[:ber_samples]
    evaluation = evaluate_scheme(
        scheme,
        dataset,
        indices=indices,
        link_config=LinkConfig(**params.get("link", {})),
        eval_dataset=eval_dataset,
    )
    return {
        "scheme": evaluation.scheme_name,
        "ber": float(evaluation.ber),
        "sta_flops": float(evaluation.sta_flops),
        "feedback_bits": int(evaluation.feedback_bits),
        "n_samples": int(np.asarray(indices).size),
    }


def train_zoo_entry(params: Mapping) -> dict:
    """Train one zoo model; the zoo builder's task function.

    ``params`` is a training-grid entry merged with its fidelity and
    with the architecture widths already resolved (see
    :meth:`repro.runtime.spec.TrainingGrid.task_specs` and
    :mod:`repro.core.zoo_builder`).  Returns everything the coordinator
    needs to reconstruct the trained model without the dataset: the
    state dict, the architecture, the measured test BER, and a history
    summary.  Pure and fully seeded, so results are bit-identical
    whichever worker (or the coordinator itself) runs the training.
    """
    from repro.core.training import train_splitbeam
    from repro.nn.serialize import state_dict

    fidelity = params["fidelity"]
    dataset = _get_dataset(params["dataset"], fidelity)
    model_spec = params["model"]
    train_spec = params["train"]
    trained = train_splitbeam(
        dataset,
        widths=list(model_spec["widths"]),
        fidelity=_fidelity(fidelity),
        checkpoint_on=train_spec["checkpoint_on"],
        quantizer_bits=params["quantizer_bits"],
        activation=model_spec["activation"],
        qat_bits=model_spec["qat_bits"],
        seed=train_spec["seed"],
    )
    measured = trained.test_ber(
        link_config=LinkConfig(**params.get("link", {})),
        max_samples=params["ber_samples"],
    ).ber
    history = trained.history
    return {
        "state": state_dict(trained.model),
        "widths": list(trained.model.widths),
        "activation": trained.model.activation_name,
        "measured_ber": float(measured),
        "history": {
            "n_epochs": len(history),
            "best_epoch": int(history.best_epoch),
            "best_val_metric": float(history.best_val_metric),
            "final_train_loss": float(history.train_loss[-1]),
            "stopped_early": bool(history.stopped_early),
        },
    }


def payload_probe(params: Mapping) -> dict:
    """Digest-and-shape probe over a (possibly interned) array payload.

    Used by the dispatch benchmarks and the payload-store tests: the
    result depends only on the array *contents*, so it proves workers
    observed byte-identical data whether the payload travelled inline
    or as a content-addressed reference.

    ``params``: ``blob`` (an ndarray, or a resolved payload reference)
    and an optional ``row`` selecting one row to summarize.  The probe
    digests only the selected row (the whole blob when ``row`` is
    omitted), so the task itself stays trivially cheap — dispatch
    benchmarks measure transport, not hashing.
    """
    import hashlib

    blob = np.ascontiguousarray(params["blob"])
    row = params.get("row")
    out: dict = {"shape": list(blob.shape)}
    if row is None:
        out["digest"] = hashlib.sha256(blob.tobytes()).hexdigest()
    else:
        selected = np.ascontiguousarray(blob[int(row) % blob.shape[0]])
        out["row"] = int(row)
        out["digest"] = hashlib.sha256(selected.tobytes()).hexdigest()
        out["row_sum"] = float(np.sum(selected))
    return out


def link_ber_point(params: Mapping) -> dict:
    """One (config, seed) BER measurement for :func:`ber_sweep`.

    ``params``: ``config`` (a :class:`LinkConfig`), ``channels``
    ``(n, users, S, Nr, Nt)``, and ``bf`` ``(n, users, S, Nt)``.
    """
    result = LinkSimulator(params["config"]).measure_ber(
        params["channels"], params["bf"]
    )
    return {
        "ber": float(result.ber),
        "bit_errors": int(result.bit_errors),
        "total_bits": int(result.total_bits),
    }


def session_round(params: Mapping) -> dict:
    """One :class:`~repro.core.session.NetworkSession` sounding round.

    The payload carries only what the round touches (a few samples'
    worth of arrays plus, for DNN rounds, the model) — never the whole
    dataset, so parallel sessions don't pickle gigabytes per round.

    ``params``: ``channels`` ``(k, users, S, Nr, Nt)``, a
    ``link_config``, and ``scheme`` — either ``{"kind": "dot11",
    "bits": ..., "bf_true": (k, users, S, Nt)}`` or ``{"kind":
    "model", "label": ..., "bits": ..., "model": ..., "quantizer":
    ..., "x": model-input rows}``.
    """
    channels = params["channels"]
    scheme = params["scheme"]
    n_samples, n_users, n_sc = channels.shape[:3]
    n_tx = channels.shape[4]
    if scheme["kind"] == "model":
        from repro.core.training import bf_from_model_inputs

        bf = bf_from_model_inputs(
            scheme["model"],
            scheme["x"],
            n_users=n_users,
            n_subcarriers=n_sc,
            n_tx=n_tx,
            quantizer=scheme["quantizer"],
        )
        label = scheme["label"]
    elif scheme["kind"] == "dot11":
        from repro.baselines.dot11 import Dot11Feedback

        bf = Dot11Feedback().quantize_reconstruct(scheme["bf_true"])
        label = "802.11"
    else:
        raise ConfigurationError(f"unknown session scheme {scheme['kind']!r}")
    link = LinkSimulator(params["link_config"])
    ber = link.measure_ber(channels, bf).ber
    metrics = link.measure_metrics(channels, bf)
    return {
        "scheme": label,
        "feedback_bits": int(scheme["bits"]),
        "ber": float(ber),
        "mean_sinr_db": float(metrics.mean_sinr_db),
    }


def network_round(params: Mapping) -> dict:
    """One STA-round of a :class:`~repro.core.network.NetworkCampaign`.

    The same pure measurement as :func:`session_round`; the campaign
    coordinator additionally pins the round's mobility/aging-degraded
    operating SNR into ``link_config``, which is echoed back so the
    campaign manifest records the environment each BER was measured
    under.
    """
    measured = session_round(params)
    measured["effective_snr_db"] = float(params["link_config"].snr_db)
    return measured
