"""Content-addressed per-run payload interning for executor dispatch.

The dispatch-economics problem: a campaign ships hundreds of small
round tasks, and each task's parameter mapping used to carry its own
copy of every large object it touches — most wastefully the deployed
model, which is *identical* across all of one STA's rounds yet was
pickled by the coordinator and unpickled by a worker once per round.

A :class:`PayloadStore` fixes that.  The coordinator *interns* large
run-shared objects (deployed models, bottleneck quantizers): each is
pickled once, keyed by the sha256 of its pickle bytes, and replaced in
the task parameters by a tiny :class:`PayloadRef`.  (Data that is
unique per task — a round's CSI slice — ships inline: the store keeps
every interned object alive until ``close()``, so interning one-shot
arrays would trade transport it cannot improve for memory that grows
with run length.)  Execution then resolves refs back to objects:

- the in-process (serial) executor resolves from the store's own
  memory — nothing is ever written to disk, so 1-worker runs pay only
  one pickling pass per distinct object (for the digest);
- the worker-pool executor *spills* each referenced payload to a
  write-once spool file (``<root>/<digest>.pkl``, tmp+rename) the
  first time a wave ships it, and workers memoize unpickled objects
  per ``(spool root, digest)`` — so a worker deserializes a given
  model exactly once per run, however many round tasks reference it.

Lifetime: a store belongs to one run (create it, run, ``close()`` or
use it as a context manager); the spool directory lives under
``$REPRO_RUNTIME_PAYLOADS`` (default: the system temp dir) and is
deleted on close.  Keying is purely content-addressed, so two interns
of equal objects share one entry and one spool file.

Results are byte-identical with and without interning for any worker
count: refs are replaced by objects with the very same float64
contents before the task function runs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.trace import current_tracer
from repro.runtime import knobs

__all__ = [
    "PayloadRef",
    "PayloadStore",
    "collect_refs",
    "resolve_refs",
    "load_payload",
    "clear_payload_cache",
    "PAYLOADS_ENV",
]

#: Environment variable overriding where payload spools are created
#: (canonical home: :mod:`repro.runtime.knobs`; re-exported here).
PAYLOADS_ENV = knobs.PAYLOADS_ENV

#: Pickle protocol used for both digests and spool files.
_PROTOCOL = pickle.HIGHEST_PROTOCOL


@dataclass(frozen=True)
class PayloadRef:
    """A content address standing in for an interned object."""

    digest: str


class PayloadStore:
    """Per-run interning of large task payloads (see module docstring)."""

    def __init__(self, root: "str | None" = None) -> None:
        self._objects: dict = {}  # digest -> live object
        self._bytes: dict = {}  # digest -> pickle bytes (until spilled)
        # id(obj) -> (digest, obj).  The strong reference is essential:
        # without it a dead object's id could be recycled by a *new*
        # object and the memo would serve the stale digest.
        self._by_id: dict = {}
        self._root = root
        self._spool: "str | None" = None
        self._closed = False
        #: Spool files re-created after vanishing mid-run (see spill).
        self.rehydrated = 0

    # -- coordinator side -------------------------------------------------------

    def intern(self, obj) -> PayloadRef:
        """Intern ``obj`` and return its content-addressed reference.

        Repeated interns of the *same object* skip re-pickling (an
        identity memo); equal-but-distinct objects still converge on
        one entry via the content digest.
        """
        if self._closed:
            raise ConfigurationError("payload store is closed")
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.inc("payloads.interned")
        memo = self._by_id.get(id(obj))
        if memo is not None and memo[1] is obj:
            return PayloadRef(memo[0])
        data = pickle.dumps(obj, protocol=_PROTOCOL)
        digest = hashlib.sha256(data).hexdigest()
        if digest not in self._objects:
            self._objects[digest] = obj
            self._bytes[digest] = data
            if tracer is not None:
                tracer.metrics.inc("payloads.unique")
                tracer.metrics.inc("payloads.unique_bytes", len(data))
        self._by_id[id(obj)] = (digest, obj)
        return PayloadRef(digest)

    def get(self, ref: PayloadRef):
        """The live object behind ``ref`` (serial-executor path)."""
        return self._objects[ref.digest]

    def resolve(self, params):
        """``params`` with every :class:`PayloadRef` replaced in-memory."""
        return resolve_refs(params, self.get)

    def spill(self, digests) -> str:
        """Write the named payloads to spool files; returns the root.

        Write-once per digest (tmp+rename, so a half-written file is
        never observable); already-spilled digests are no-ops.  Called
        by the pool executor before a wave ships refs to workers.

        Self-healing: the store keeps every interned object alive, so
        an already-spilled file that has *vanished* (scratch cleaner,
        tmpwatch, operator error) is detected here and re-pickled from
        the coordinator's live object — the executor re-spills before
        every dispatch round, so a worker's file-not-found failure is
        retried against a rehydrated spool.
        """
        if self._closed:
            raise ConfigurationError("payload store is closed")
        tracer = current_tracer()
        if tracer is None:
            return self._spill(digests, None)
        with tracer.span(
            "payloads.spill", "store", requested=len(digests)
        ) as span:
            return self._spill(digests, span)

    def _spill(self, digests, span) -> str:
        if self._spool is None:
            base = self._root or knobs.read_knob(PAYLOADS_ENV) or None
            if base is not None:
                os.makedirs(base, exist_ok=True)
            self._spool = tempfile.mkdtemp(prefix="repro-payloads-", dir=base)
        written = 0
        written_bytes = 0
        for digest in digests:
            path = os.path.join(self._spool, f"{digest}.pkl")
            data = self._bytes.pop(digest, None)
            if data is None:
                if digest not in self._objects or os.path.exists(path):
                    continue  # unknown digest, or already spilled and intact
                data = pickle.dumps(self._objects[digest], protocol=_PROTOCOL)
                self.rehydrated += 1
                if span is not None:
                    current_tracer().metrics.inc("payloads.rehydrated")
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
            written += 1
            written_bytes += len(data)
        if span is not None:
            span.attrs["spilled"] = written
            span.attrs["spilled_bytes"] = written_bytes
            tracer = current_tracer()
            tracer.metrics.inc("payloads.spilled", written)
            tracer.metrics.inc("payloads.spilled_bytes", written_bytes)
        return self._spool

    def close(self) -> None:
        """Delete the spool directory and drop all interned objects."""
        if self._spool is not None:
            shutil.rmtree(self._spool, ignore_errors=True)
            self._spool = None
        self._objects.clear()
        self._bytes.clear()
        self._by_id.clear()
        self._closed = True

    def __enter__(self) -> "PayloadStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._objects)


def collect_refs(value, out: "set[str] | None" = None) -> "set[str]":
    """All payload digests referenced anywhere inside ``value``."""
    if out is None:
        out = set()
    if isinstance(value, PayloadRef):
        out.add(value.digest)
    elif isinstance(value, dict):
        for item in value.values():
            collect_refs(item, out)
    elif isinstance(value, (list, tuple)):
        for item in value:
            collect_refs(item, out)
    return out


def resolve_refs(value, lookup):
    """``value`` with every :class:`PayloadRef` swapped via ``lookup``.

    Containers are rebuilt only along paths that actually hold refs;
    arrays and other leaves pass through untouched.
    """
    if isinstance(value, PayloadRef):
        return lookup(value)
    if isinstance(value, dict):
        if not collect_refs(value):
            return value
        return {key: resolve_refs(item, lookup) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        if not collect_refs(value):
            return value
        resolved = [resolve_refs(item, lookup) for item in value]
        return type(value)(resolved) if isinstance(value, tuple) else resolved
    return value


#: Worker-side memo: (spool root, digest) -> unpickled object.  Pools
#: are created per run, so worker processes (and this cache) die with
#: the run; the serial path never touches it.
_WORKER_CACHE: dict = {}


def load_payload(root: str, digest: str):
    """Unpickle (once per process) a spilled payload."""
    key = (root, digest)
    if key not in _WORKER_CACHE:
        with open(os.path.join(root, f"{digest}.pkl"), "rb") as handle:
            # Worker processes are single-threaded; no lock needed.
            _WORKER_CACHE[key] = pickle.load(handle)  # repro: allow[REP-UNLOCKED-GLOBAL]
    return _WORKER_CACHE[key]


def clear_payload_cache() -> None:
    """Drop the per-process payload memo (benchmarks use this)."""
    # Worker processes are single-threaded; no lock needed.  Dropping
    # the memo only forces a re-read of the same immutable spill file,
    # so results are unchanged (pure read-through cache).
    _WORKER_CACHE.clear()  # repro: allow[REP-UNLOCKED-GLOBAL,REP-PURE-TASK]
