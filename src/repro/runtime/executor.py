"""Task-DAG execution: worker-pool sharding with a serial fallback.

A :class:`Task` names a *pure* function (an importable ``"module:name"``
string, or a picklable callable) and the parameters it receives as a
single mapping.  Because tasks are pure and fully seeded, the result of
:func:`run_tasks` is bit-identical whatever the worker count — the pool
only changes wall time, never values.

Dependencies form a DAG.  A dependent task may compute its parameters
from its dependencies' results through a ``resolve`` hook, which runs in
the coordinating process, in plan order — sequential logic (such as an
adaptive controller reacting round by round) stays deterministic while
the measurement itself still ships to a worker.

Sharding: tasks carrying the same ``shard`` label are executed by the
same worker in plan order, so per-process memoization (e.g. one worker
building one dataset that several tasks reuse) stays effective.

Dispatch economics: within a wave, shard chunks are *packed* into a
small bounded number of messages (at most 4 per worker, keeping the
pool's dynamic balancing effective), so a hundred small independent
tasks cost a handful of IPC round-trips instead of a hundred — and with a
:class:`~repro.runtime.payloads.PayloadStore` attached, large repeated
payloads (models, round slices) travel as content-addressed references
that each worker materializes once per run.  Both are pure transport
optimizations: parameters are computed in plan order either way and
results are byte-identical for any worker count.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import traceback
import warnings
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError, ReproError
from repro.runtime.payloads import PayloadStore, collect_refs, load_payload, resolve_refs

__all__ = [
    "Task",
    "TaskExecutionError",
    "run_tasks",
    "resolve_worker_count",
]

#: Environment variable consulted when ``n_workers`` is not given.
WORKERS_ENV = "REPRO_RUNTIME_WORKERS"


class TaskExecutionError(ReproError):
    """A task raised inside the executor (serial or worker process)."""


@dataclass(frozen=True)
class Task:
    """One pure unit of work in a DAG.

    Parameters
    ----------
    task_id:
        Unique name; dependency edges and the result dict use it.
    fn:
        ``"module:callable"`` or a picklable callable taking one mapping.
    params:
        The argument mapping (ignored when ``resolve`` is given).
    deps:
        Task ids that must complete first.
    resolve:
        Optional hook ``resolve({dep_id: result, ...}) -> params`` run in
        the coordinator, in plan order, once all ``deps`` completed.
    shard:
        Optional affinity label: tasks sharing a shard run serially on
        one worker (within a wave), preserving plan order.
    """

    task_id: str
    fn: "str | Callable[[Mapping], object]"
    params: Mapping | None = None
    deps: tuple[str, ...] = ()
    resolve: "Callable[[dict], Mapping] | None" = None
    shard: str | None = None


def resolve_worker_count(n_workers: "int | None") -> int:
    """Effective worker count: explicit value, else $REPRO_RUNTIME_WORKERS, else 1."""
    if n_workers is None:
        raw = os.environ.get(WORKERS_ENV, "1")
        try:
            n_workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if n_workers < 1:
        raise ConfigurationError("n_workers must be >= 1")
    return int(n_workers)


def _call(fn, params: Mapping | None):
    if isinstance(fn, str):
        module_name, _, attr = fn.partition(":")
        if not module_name or not attr:
            raise ConfigurationError(
                f"task fn must be 'module:callable', got {fn!r}"
            )
        fn = getattr(importlib.import_module(module_name), attr)
    return fn(dict(params or {}))


def _run_chunk(message):
    """Worker entry point: run one packed chunk serially, in plan order.

    ``message`` is ``(spool_root, [(task_id, fn, params), ...])``;
    parameters may contain :class:`PayloadRef` markers, resolved here
    against the spool (memoized per worker process, so a payload shared
    by many tasks is unpickled once).
    """
    spool_root, items = message
    out = []
    for task_id, fn, params in items:
        try:
            if spool_root is not None:
                params = resolve_refs(
                    params, lambda ref: load_payload(spool_root, ref.digest)
                )
            out.append((task_id, _call(fn, params)))
        except Exception:
            # Chain-free raise: the original exception (and its cause)
            # may not survive pickling back to the coordinator.
            raise TaskExecutionError(
                f"task {task_id!r} failed in worker:\n{traceback.format_exc()}"
            ) from None
    return out


def _topological(tasks: Sequence[Task]) -> list[Task]:
    """Kahn's algorithm preserving plan order; rejects cycles/bad edges."""
    by_id: dict[str, Task] = {}
    for task in tasks:
        if task.task_id in by_id:
            raise ConfigurationError(f"duplicate task id {task.task_id!r}")
        by_id[task.task_id] = task
    for task in tasks:
        for dep in task.deps:
            if dep not in by_id:
                raise ConfigurationError(
                    f"task {task.task_id!r} depends on unknown task {dep!r}"
                )
    ordered: list[Task] = []
    done: set[str] = set()
    pending = list(tasks)
    while pending:
        ready = [t for t in pending if set(t.deps) <= done]
        if not ready:
            cycle = sorted(t.task_id for t in pending)
            raise ConfigurationError(f"task graph has a cycle among {cycle}")
        ordered.extend(ready)
        done.update(t.task_id for t in ready)
        pending = [t for t in pending if t.task_id not in done]
    return ordered


def _params_for(task: Task, results: dict) -> Mapping | None:
    if task.resolve is None:
        return task.params
    return task.resolve({dep: results[dep] for dep in task.deps})


def _run_serial(ordered, on_result=None, payloads=None) -> dict:
    results: dict = {}
    for task in ordered:
        params = _params_for(task, results)
        if payloads is not None:
            params = payloads.resolve(params)
        try:
            results[task.task_id] = _call(task.fn, params)
        except (ConfigurationError, TaskExecutionError):
            raise
        except Exception as exc:
            raise TaskExecutionError(
                f"task {task.task_id!r} failed: {exc!r}"
            ) from exc
        if on_result is not None:
            on_result(task.task_id, results[task.task_id])
    return results


def _make_pool(n_workers: int):
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    context = multiprocessing.get_context(method)
    return context.Pool(processes=n_workers)


#: Messages per worker a packed wave may use.  1 would minimize IPC but
#: lose all dynamic load balancing (two expensive tasks round-robined
#: into one group serialize while other workers idle); a small
#: oversubscription keeps the pool's work-stealing effective while a
#: 100-round wave still costs ~4*workers messages instead of 100.
_PACK_OVERSUBSCRIPTION = 4


def _pack_wave(wave, wave_params, n_workers: int):
    """Pack a wave's shard chunks into at most ``4 * n_workers`` messages.

    Tasks sharing a shard stay contiguous (one worker, plan order);
    singleton chunks round-robin across the messages in plan order.
    Purely a transport decision — parameters were already computed, in
    plan order, by the caller.
    """
    chunks: dict = {}
    for task in wave:
        key = task.shard if task.shard is not None else ("", task.task_id)
        chunks.setdefault(key, []).append(task)
    n_groups = min(n_workers * _PACK_OVERSUBSCRIPTION, len(chunks))
    groups: list = [[] for _ in range(n_groups)]
    for index, chunk in enumerate(chunks.values()):
        groups[index % len(groups)].extend(chunk)
    return [
        [(t.task_id, t.fn, wave_params[t.task_id]) for t in group]
        for group in groups
        if group
    ]


def _run_pool(ordered, n_workers, on_result=None, payloads=None) -> dict:
    results: dict = {}
    done: set[str] = set()
    pending = list(ordered)
    try:
        pool = _make_pool(min(n_workers, len(pending)))
    except (OSError, ValueError, ImportError) as exc:
        warnings.warn(
            f"worker pool unavailable ({exc!r}); falling back to the "
            "deterministic in-process executor",
            RuntimeWarning,
            stacklevel=3,
        )
        return _run_serial(ordered, on_result, payloads)
    with pool:
        while pending:
            wave = [t for t in pending if set(t.deps) <= done]
            # Parameters resolve in plan order (hooks may consume
            # coordinator-side state, e.g. RNG draws), independent of
            # how the wave is later packed into worker messages.
            wave_params = {
                t.task_id: dict(_params_for(t, results) or {}) for t in wave
            }
            spool_root = None
            if payloads is not None:
                digests = collect_refs(list(wave_params.values()))
                if digests:
                    spool_root = payloads.spill(digests)
            messages = _pack_wave(wave, wave_params, n_workers)
            handles = [
                pool.apply_async(_run_chunk, ((spool_root, message),))
                for message in messages
            ]
            for handle in handles:
                for task_id, result in handle.get():
                    results[task_id] = result
                    if on_result is not None:
                        on_result(task_id, result)
            done.update(t.task_id for t in wave)
            pending = [t for t in pending if t.task_id not in done]
    return results


def run_tasks(
    tasks: Sequence[Task],
    n_workers: "int | None" = None,
    on_result: "Callable[[str, object], None] | None" = None,
    payloads: "PayloadStore | None" = None,
) -> dict:
    """Execute a task DAG; returns ``{task_id: result}``.

    ``n_workers=1`` (the default when ``$REPRO_RUNTIME_WORKERS`` is
    unset) runs everything in-process.  With more workers, independent
    tasks run on a process pool — results are identical either way.

    ``on_result(task_id, result)`` fires in the coordinator as each
    task completes, before the run finishes — the engine persists cache
    entries through it, so an interrupted run keeps its completed
    points.

    ``payloads`` (a :class:`~repro.runtime.payloads.PayloadStore`)
    resolves interned parameter references: in memory for the serial
    path, via the write-once spool for pool workers.
    """
    tasks = list(tasks)
    if not tasks:
        return {}
    ordered = _topological(tasks)
    n_workers = resolve_worker_count(n_workers)
    if n_workers <= 1 or len(tasks) == 1:
        return _run_serial(ordered, on_result, payloads)
    return _run_pool(ordered, n_workers, on_result, payloads)
