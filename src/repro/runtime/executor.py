"""Task-DAG execution: fault-tolerant worker pools with a serial fallback.

A :class:`Task` names a *pure* function (an importable ``"module:name"``
string, or a picklable callable) and the parameters it receives as a
single mapping.  Because tasks are pure and fully seeded, the result of
:func:`run_tasks` is bit-identical whatever the worker count — the pool
only changes wall time, never values.  The same purity powers the
fault-tolerance contract: a failed attempt can always be retried (and a
crashed worker's chunk replayed) with byte-identical results, so chaos
costs retries, never bytes.

Dependencies form a DAG.  A dependent task may compute its parameters
from its dependencies' results through a ``resolve`` hook, which runs in
the coordinating process, in plan order — sequential logic (such as an
adaptive controller reacting round by round) stays deterministic while
the measurement itself still ships to a worker.  Hooks run exactly once
per task, before its first dispatch; retries and crash replays reuse the
already-computed parameters, so coordinator state (RNG draws, controller
observations) is never consumed twice.

Sharding: tasks carrying the same ``shard`` label are executed by the
same worker in plan order, so per-process memoization (e.g. one worker
building one dataset that several tasks reuse) stays effective.

Dispatch economics: within a wave, shard chunks are *packed* into a
small bounded number of messages (at most 4 per worker, keeping the
pool's dynamic balancing effective), so a hundred small independent
tasks cost a handful of IPC round-trips instead of a hundred — and with a
:class:`~repro.runtime.payloads.PayloadStore` attached, large repeated
payloads (models, round slices) travel as content-addressed references
that each worker materializes once per run.  Both are pure transport
optimizations: parameters are computed in plan order either way and
results are byte-identical for any worker count.

Fault tolerance (see :mod:`repro.runtime.faults` for injection):

- every failed attempt is retried up to :attr:`RetryPolicy.retries`
  times with deterministic exponential backoff; the remote traceback is
  captured as a string in the worker and carried on
  :attr:`TaskExecutionError.remote_traceback`;
- a worker hard-crash (``os._exit``, OOM kill, segfault) breaks the
  pool; the coordinator salvages every chunk that already completed,
  rebuilds the pool, and replays only the in-flight chunks' unfinished
  tasks;
- a chunk that overruns its per-task timeout budget is treated the same
  way (pool killed + rebuilt, unfinished tasks replayed);
- after :attr:`RetryPolicy.max_pool_failures` consecutive pool
  failures the run degrades to the deterministic in-process executor
  for its remainder;
- everything is tallied in a :class:`RunHealth` object the engines
  thread into their run statistics.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import pickle
import time
import traceback
import warnings
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ReproError
from repro.obs.trace import current_tracer, span_id
from repro.perf.profile import merge_profiles, profile_snapshot
from repro.runtime import knobs
from repro.runtime.faults import FaultPlan, InjectedFaultError, active_plan
from repro.runtime.payloads import PayloadStore, collect_refs, load_payload, resolve_refs

__all__ = [
    "Task",
    "TaskExecutionError",
    "RetryPolicy",
    "RunHealth",
    "run_tasks",
    "resolve_worker_count",
]

#: Environment variable consulted when ``n_workers`` is not given
#: (canonical home: :mod:`repro.runtime.knobs`; re-exported here).
WORKERS_ENV = knobs.WORKERS_ENV


class TaskExecutionError(ReproError):
    """A task failed in the executor after exhausting its retries.

    ``remote_traceback`` carries the formatted traceback captured where
    the failure actually happened — inside a worker process, where the
    live exception object (and its ``__cause__`` chain) would not
    survive pickling back to the coordinator.
    """

    def __init__(
        self,
        message: str,
        task_id: "str | None" = None,
        remote_traceback: "str | None" = None,
        injected: bool = False,
    ) -> None:
        super().__init__(message)
        self.task_id = task_id
        self.remote_traceback = remote_traceback
        self.injected = injected

    def __reduce__(self):
        # Exception.__reduce__ would replay __init__ with args only,
        # dropping the remote traceback across pickling — the very
        # debuggability this class exists to preserve.
        return (
            type(self),
            (self.args[0], self.task_id, self.remote_traceback, self.injected),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry / timeout knobs for one :func:`run_tasks` call.

    Parameters
    ----------
    retries:
        Failed attempts each task may absorb beyond its first try.
    timeout_s:
        Per-task timeout budget; a packed chunk's budget is
        ``timeout_s * len(chunk)``.  ``None`` disables timeouts.  Only
        the pool path can preempt a stuck task — the in-process
        executor cannot interrupt itself and ignores this knob.
    backoff_s:
        Base of the deterministic exponential backoff between retry
        rounds (``backoff_s * 2**round``, capped at 2^6); no jitter,
        so runs with identical failures sleep identically.
    max_pool_failures:
        Consecutive pool crashes/timeouts tolerated before the run
        degrades to the in-process executor.
    """

    retries: int = 2
    timeout_s: "float | None" = None
    backoff_s: float = 0.05
    max_pool_failures: int = 3

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if self.backoff_s < 0:
            raise ConfigurationError("backoff_s must be >= 0")
        if self.max_pool_failures < 1:
            raise ConfigurationError("max_pool_failures must be >= 1")


DEFAULT_POLICY = RetryPolicy()


@dataclass
class RunHealth:
    """Fault-tolerance statistics for one executor run.

    The engines attach :meth:`to_dict` to their run statistics (and,
    opt-in, to JSON manifests).  Counter semantics: ``task_errors``
    counts failed *attempts* (``injected_faults`` of which the fault
    plan predicted or marked), ``retries`` counts re-dispatches that
    followed them, ``worker_crashes``/``timeouts`` count pool-level
    failures, ``pool_rebuilds``/``serial_fallbacks`` the recoveries.
    ``failed`` lists tasks that exhausted their retries (collect-error
    mode), ``skipped`` their never-attempted dependents.
    """

    retries: int = 0
    task_errors: int = 0
    injected_faults: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    fallback_reason: "str | None" = None
    failed: "list[dict]" = field(default_factory=list)
    skipped: "list[str]" = field(default_factory=list)

    @property
    def faulted(self) -> bool:
        """Whether anything at all went wrong (or was injected)."""
        return bool(
            self.task_errors
            or self.timeouts
            or self.worker_crashes
            or self.serial_fallbacks
            or self.failed
            or self.skipped
        )

    def to_dict(self) -> dict:
        """JSON-able summary (failure lists sorted for stable output)."""
        return {
            "retries": self.retries,
            "task_errors": self.task_errors,
            "injected_faults": self.injected_faults,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
            "fallback_reason": self.fallback_reason,
            "failed": sorted(self.failed, key=lambda row: row["task"]),
            "skipped": sorted(self.skipped),
        }


@dataclass(frozen=True)
class Task:
    """One pure unit of work in a DAG.

    Parameters
    ----------
    task_id:
        Unique name; dependency edges and the result dict use it.
    fn:
        ``"module:callable"`` or a picklable callable taking one mapping.
    params:
        The argument mapping (ignored when ``resolve`` is given).
    deps:
        Task ids that must complete first.
    resolve:
        Optional hook ``resolve({dep_id: result, ...}) -> params`` run in
        the coordinator, in plan order, once all ``deps`` completed.
    shard:
        Optional affinity label: tasks sharing a shard run serially on
        one worker (within a wave), preserving plan order.
    """

    task_id: str
    fn: "str | Callable[[Mapping], object]"
    params: Mapping | None = None
    deps: tuple[str, ...] = ()
    resolve: "Callable[[dict], Mapping] | None" = None
    shard: str | None = None


def resolve_worker_count(n_workers: "int | None") -> int:
    """Effective worker count: explicit value, else $REPRO_RUNTIME_WORKERS, else 1."""
    if n_workers is None:
        raw = knobs.read_knob(WORKERS_ENV, "1")
        try:
            n_workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if n_workers < 1:
        raise ConfigurationError("n_workers must be >= 1")
    return int(n_workers)


def _call(fn, params: Mapping | None):
    if isinstance(fn, str):
        module_name, _, attr = fn.partition(":")
        if not module_name or not attr:
            raise ConfigurationError(
                f"task fn must be 'module:callable', got {fn!r}"
            )
        fn = getattr(importlib.import_module(module_name), attr)
    return fn(dict(params or {}))


def _error_summary(exc: BaseException) -> str:
    """One stable line describing ``exc`` (class + message, no paths)."""
    return traceback.format_exception_only(type(exc), exc)[-1].strip()


#: Worker-process baseline of the ``@profiled`` registry.  Forked
#: workers inherit the coordinator's registry contents; the first chunk
#: snapshots them so only worker-observed time ships back, and each
#: later chunk ships the delta since the previous one.
_WORKER_PROFILE_BASE: "dict[str, tuple[int, float, float]] | None" = None


def _worker_profile_delta() -> "dict[str, tuple[int, float, float]]":
    global _WORKER_PROFILE_BASE
    snapshot = profile_snapshot()
    base = _WORKER_PROFILE_BASE or {}
    delta = {}
    for name, (calls, total_s, max_s) in snapshot.items():
        prev_calls, prev_total, _ = base.get(name, (0, 0.0, 0.0))
        if calls != prev_calls or total_s != prev_total:
            delta[name] = (calls - prev_calls, total_s - prev_total, max_s)
    _WORKER_PROFILE_BASE = snapshot
    return delta


def _run_chunk(message):
    """Worker entry point: run one packed chunk serially, in plan order.

    ``message`` is ``(spool_root, fault_plan, trace_ctx, [(task_id, fn,
    params, attempt), ...])``; parameters may contain
    :class:`PayloadRef` markers, resolved here against the spool
    (memoized per worker process, so a payload shared by many tasks is
    unpickled once).

    Failures never raise across the process boundary: each task yields
    an outcome tuple — ``("ok", task_id, result)`` or ``("error",
    task_id, formatted_traceback, summary, injected)`` — so one task's
    exception cannot take down its chunk-mates, and the original
    traceback travels as a plain string that survives pickling.

    The return value is ``(outcomes, profile_delta, spans)``:
    ``profile_delta`` is this worker's ``@profiled`` registry delta
    since its previous chunk (always shipped — without it, worker-side
    profiling is silently lost when the pool exits), and ``spans`` are
    per-task execute spans recorded when ``trace_ctx = (epoch,
    execute_parent_id)`` is set.  Span ids derive from the
    coordinator-supplied logical parent via :func:`~repro.obs.trace.
    span_id`, so the merged tree is identical whatever the worker count;
    timestamps use the coordinator's ``perf_counter`` epoch, which
    forked workers share.
    """
    global _WORKER_PROFILE_BASE
    spool_root, plan, trace_ctx, items = message
    if _WORKER_PROFILE_BASE is None:
        _WORKER_PROFILE_BASE = profile_snapshot()
    out = []
    spans = []
    pid = os.getpid()
    for task_id, fn, params, attempt in items:
        start = time.perf_counter()
        try:
            if plan is not None:
                plan.apply_task_faults(task_id, attempt, in_worker=True)
            if spool_root is not None:
                params = resolve_refs(
                    params, lambda ref: load_payload(spool_root, ref.digest)
                )
            out.append(("ok", task_id, _call(fn, params)))
        except Exception as exc:
            out.append(
                (
                    "error",
                    task_id,
                    traceback.format_exc(),
                    _error_summary(exc),
                    isinstance(exc, InjectedFaultError),
                )
            )
        if trace_ctx is not None:
            epoch, parent = trace_ctx
            name = f"task:{task_id}"
            spans.append(
                {
                    "type": "span",
                    "id": span_id(parent, name, attempt),
                    "parent": parent,
                    "name": name,
                    "cat": "task",
                    "start_s": start - epoch,
                    "end_s": time.perf_counter() - epoch,
                    "pid": pid,
                    "attrs": {"task": task_id, "attempt": attempt},
                }
            )
    return out, _worker_profile_delta(), spans


def _topological(tasks: Sequence[Task]) -> list[Task]:
    """Kahn's algorithm preserving plan order; rejects cycles/bad edges."""
    by_id: dict[str, Task] = {}
    for task in tasks:
        if task.task_id in by_id:
            raise ConfigurationError(f"duplicate task id {task.task_id!r}")
        by_id[task.task_id] = task
    for task in tasks:
        for dep in task.deps:
            if dep not in by_id:
                raise ConfigurationError(
                    f"task {task.task_id!r} depends on unknown task {dep!r}"
                )
    ordered: list[Task] = []
    done: set[str] = set()
    pending = list(tasks)
    while pending:
        ready = [t for t in pending if set(t.deps) <= done]
        if not ready:
            cycle = sorted(t.task_id for t in pending)
            raise ConfigurationError(f"task graph has a cycle among {cycle}")
        ordered.extend(ready)
        done.update(t.task_id for t in ready)
        pending = [t for t in pending if t.task_id not in done]
    return ordered


def _make_pool(n_workers: int) -> ProcessPoolExecutor:
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    context = multiprocessing.get_context(method)
    return ProcessPoolExecutor(max_workers=n_workers, mp_context=context)


#: Messages per worker a packed wave may use.  1 would minimize IPC but
#: lose all dynamic load balancing (two expensive tasks round-robined
#: into one group serialize while other workers idle); a small
#: oversubscription keeps the pool's work-stealing effective while a
#: 100-round wave still costs ~4*workers messages instead of 100.
_PACK_OVERSUBSCRIPTION = 4


def _pack_wave(wave, wave_params, n_workers: int, attempts=None):
    """Pack a wave's shard chunks into at most ``4 * n_workers`` messages.

    Tasks sharing a shard stay contiguous (one worker, plan order);
    singleton chunks round-robin across the messages in plan order.
    Purely a transport decision — parameters were already computed, in
    plan order, by the caller.  Each packed item carries the task's
    dispatch-attempt index so the (deterministic) fault plan can count
    occurrences without any cross-process state.
    """
    chunks: dict = {}
    for task in wave:
        key = task.shard if task.shard is not None else ("", task.task_id)
        chunks.setdefault(key, []).append(task)
    n_groups = min(n_workers * _PACK_OVERSUBSCRIPTION, len(chunks))
    groups: list = [[] for _ in range(n_groups)]
    for index, chunk in enumerate(chunks.values()):
        groups[index % len(groups)].extend(chunk)
    return [
        [
            (
                t.task_id,
                t.fn,
                wave_params[t.task_id],
                0 if attempts is None else attempts.get(t.task_id, 0),
            )
            for t in group
        ]
        for group in groups
        if group
    ]


class _Execution:
    """Coordinator-side state for one :func:`run_tasks` call."""

    def __init__(
        self,
        n_workers: int,
        on_result,
        payloads: "PayloadStore | None",
        policy: RetryPolicy,
        health: RunHealth,
        plan: "FaultPlan | None",
        collect_errors: bool,
    ) -> None:
        self.n_workers = n_workers
        self.on_result = on_result
        self.payloads = payloads
        self.policy = policy
        self.health = health
        self.plan = plan
        self.collect_errors = collect_errors
        self.results: dict = {}
        self.done: "set[str]" = set()
        self.failed: "dict[str, str]" = {}  # task_id -> summary
        self.skipped: "set[str]" = set()
        self.attempts: "dict[str, int]" = {}  # dispatches (fault occurrences)
        self.failures: "dict[str, int]" = {}  # observed failed attempts
        self.retry_round = 0
        self.pool_failures = 0
        self.serial_only = False
        self._pool: "ProcessPoolExecutor | None" = None
        self.tracer = current_tracer()
        # Task spans parent to the run's execute-phase span — a *logical*
        # parent, independent of which wave round or chunk the transport
        # happened to place the task in — so the span tree's shape is
        # identical whatever the worker count.
        self._task_parent = ""

    # -- tracing -----------------------------------------------------------------

    def _maybe_span(self, name: str, category: str = "executor", **attrs):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, category, **attrs)

    def _task_span(self, task: Task, attempt: int):
        """Coordinator-side task span, id-compatible with the worker's."""
        if self.tracer is None:
            return nullcontext()
        name = f"task:{task.task_id}"
        return self.tracer.span(
            name,
            "task",
            parent=self._task_parent,
            fixed_id=span_id(self._task_parent, name, attempt),
            task=task.task_id,
            attempt=attempt,
            deps=list(task.deps),
        )

    # -- shared bookkeeping ------------------------------------------------------

    def _complete(self, task_id: str, result) -> None:
        self.results[task_id] = result
        self.done.add(task_id)
        if self.on_result is not None:
            self.on_result(task_id, result)

    def _final_failure(
        self, task_id: str, remote_traceback: str, summary: str
    ) -> None:
        if not self.collect_errors:
            raise TaskExecutionError(
                f"task {task_id!r} failed after "
                f"{self.failures.get(task_id, 1)} attempt(s): {summary}\n"
                f"{remote_traceback}",
                task_id=task_id,
                remote_traceback=remote_traceback,
            )
        self.failed[task_id] = summary
        self.health.failed.append({"task": task_id, "summary": summary})

    def _record_error(self, task_id: str, injected: bool) -> bool:
        """Count one failed attempt; True when the task may retry."""
        self.health.task_errors += 1
        if injected:
            self.health.injected_faults += 1
        if self.tracer is not None:
            self.tracer.metrics.inc("executor.task_errors")
        self.failures[task_id] = self.failures.get(task_id, 0) + 1
        if self.failures[task_id] <= self.policy.retries:
            self.health.retries += 1
            if self.tracer is not None:
                self.tracer.metrics.inc("executor.retries")
                self.tracer.event("retry", "executor", task=task_id)
            return True
        return False

    def _backoff(self) -> None:
        if self.policy.backoff_s > 0:
            delay = self.policy.backoff_s * (2 ** min(self.retry_round, 6))
            if self.tracer is not None:
                with self.tracer.span("backoff", "executor", seconds=delay):
                    time.sleep(delay)
            else:
                time.sleep(delay)
        self.retry_round += 1

    def _dispatch_attempt(self, task_id: str, in_worker: bool) -> int:
        """The attempt index of the next dispatch; advances the counter."""
        attempt = self.attempts.get(task_id, 0)
        self.attempts[task_id] = attempt + 1
        if self.plan is not None:
            # Pool-path crashes and delays leave no error outcome to
            # count on the coordinator side, so tally them when they are
            # scheduled — the plan is deterministic, so the prediction
            # matches what the worker does.  Serial-path crashes
            # downgrade to errors and are counted on observation.
            for rule in self.plan.task_rules(task_id, attempt):
                if rule.kind == "delay" or (rule.kind == "crash" and in_worker):
                    self.health.injected_faults += 1
        return attempt

    def _skip_blocked(self, pending: "list[Task]") -> "list[Task]":
        """Drop (and record) tasks whose dependencies failed or skipped."""
        if not self.failed and not self.skipped:
            return pending
        remaining = []
        for task in pending:
            unrunnable = self.failed.keys() | self.skipped
            if any(dep in unrunnable for dep in task.deps):
                self.skipped.add(task.task_id)
                self.health.skipped.append(task.task_id)
            else:
                remaining.append(task)
        # A newly skipped task may block another later in plan order;
        # the list is topologically ordered, so one forward pass per
        # call plus the caller's wave loop reaches the fixed point.
        if len(remaining) != len(pending):
            return self._skip_blocked(remaining)
        return remaining

    def _wave_params(self, wave: "list[Task]") -> dict:
        """Resolve parameters in plan order, exactly once per task."""
        params = {}
        for task in wave:
            if task.resolve is None:
                computed = task.params
            else:
                computed = task.resolve(
                    {dep: self.results[dep] for dep in task.deps}
                )
            params[task.task_id] = dict(computed or {})
        return params

    # -- serial path -------------------------------------------------------------

    def _run_task_serial(self, task: Task, params) -> None:
        while True:
            attempt = self._dispatch_attempt(task.task_id, in_worker=False)
            try:
                with self._task_span(task, attempt):
                    if self.plan is not None:
                        self.plan.apply_task_faults(
                            task.task_id, attempt, in_worker=False
                        )
                    resolved = params
                    if self.payloads is not None:
                        resolved = self.payloads.resolve(resolved)
                    result = _call(task.fn, resolved)
            except (ConfigurationError, TaskExecutionError):
                raise
            except Exception as exc:
                injected = isinstance(exc, InjectedFaultError)
                if self._record_error(task.task_id, injected):
                    self._backoff()
                    continue
                remote = traceback.format_exc()
                summary = _error_summary(exc)
                if not self.collect_errors:
                    raise TaskExecutionError(
                        f"task {task.task_id!r} failed after "
                        f"{self.failures[task.task_id]} attempt(s): "
                        f"{summary}",
                        task_id=task.task_id,
                        remote_traceback=remote,
                        injected=injected,
                    ) from exc
                self._final_failure(task.task_id, remote, summary)
                return
            self._complete(task.task_id, result)
            return

    def _run_wave_serial(self, wave: "list[Task]", params: dict) -> None:
        for task in wave:
            self._run_task_serial(task, params[task.task_id])

    # -- pool path ---------------------------------------------------------------

    def _ensure_pool(self) -> bool:
        """Create the pool if needed; False -> degrade to serial."""
        if self._pool is not None:
            return True
        try:
            self._pool = _make_pool(self.n_workers)
        except (OSError, ValueError, ImportError) as exc:
            reason = (
                f"worker pool unavailable ({exc!r}); falling back to the "
                "deterministic in-process executor"
            )
            warnings.warn(reason, RuntimeWarning, stacklevel=4)
            self.health.serial_fallbacks += 1
            if self.health.fallback_reason is None:
                self.health.fallback_reason = reason
            self.serial_only = True
            return False
        return True

    def _kill_pool(self) -> None:
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _consume_chunk(self, chunk_result, remaining: dict, deps_by_id: dict) -> None:
        """Fold one worker chunk's outcomes + telemetry into the run.

        Profile deltas merge unconditionally — that wall time genuinely
        elapsed even if the chunk is a salvaged replay.  Worker spans
        are absorbed only for tasks still outstanding (their deps
        stamped in from the plan, which never crosses the IPC boundary)
        so a replayed chunk cannot duplicate a task's timeline row.
        """
        outcomes, profile_delta, spans = chunk_result
        if profile_delta:
            merge_profiles(profile_delta)
        if self.tracer is not None and spans:
            fresh = [s for s in spans if s["attrs"]["task"] in remaining]
            for span in fresh:
                span["attrs"]["deps"] = deps_by_id.get(
                    span["attrs"]["task"], []
                )
            self.tracer.absorb(fresh)
        self._handle_outcomes(outcomes, remaining)

    def _handle_outcomes(self, outcomes, remaining: dict) -> None:
        for outcome in outcomes:
            task_id = outcome[1]
            if task_id not in remaining:
                continue  # a salvaged duplicate from a replayed chunk
            if outcome[0] == "ok":
                del remaining[task_id]
                self._complete(task_id, outcome[2])
            else:
                _, _, remote, summary, injected = outcome
                if self._record_error(task_id, injected):
                    continue  # stays in remaining -> repacked next round
                del remaining[task_id]
                self._final_failure(task_id, remote, summary)

    def _salvage(self, futures, remaining: dict, deps_by_id: dict) -> None:
        """Collect every chunk that finished before the pool broke."""
        for future in futures:
            if not future.done():
                continue
            try:
                chunk_result = future.result(timeout=0)
            except Exception:
                continue  # the chunk that crashed/was cancelled
            self._consume_chunk(chunk_result, remaining, deps_by_id)

    def _on_pool_failure(self, kind: str, detail: str, remaining) -> None:
        """Count, rebuild (or degrade to serial), and let the wave replay."""
        if kind == "timeout":
            self.health.timeouts += 1
        else:
            self.health.worker_crashes += 1
        if self.tracer is not None:
            self.tracer.metrics.inc(
                "executor.timeouts" if kind == "timeout"
                else "executor.worker_crashes"
            )
        self._kill_pool()
        self.pool_failures += 1
        if self.pool_failures >= self.policy.max_pool_failures:
            self.health.serial_fallbacks += 1
            if self.health.fallback_reason is None:
                self.health.fallback_reason = (
                    f"{self.pool_failures} pool failure(s), last: {detail}; "
                    "degrading to the deterministic in-process executor"
                )
            warnings.warn(
                self.health.fallback_reason, RuntimeWarning, stacklevel=5
            )
            self.serial_only = True
            if self.tracer is not None:
                self.tracer.metrics.inc("executor.serial_fallbacks")
                self.tracer.event(
                    "serial_fallback", "executor", kind=kind, detail=detail
                )
        else:
            self.health.pool_rebuilds += 1
            if self.tracer is not None:
                self.tracer.metrics.inc("executor.pool_rebuilds")
                self.tracer.event(
                    "pool_rebuild", "executor", kind=kind, detail=detail
                )

    def _run_wave_pool(self, wave: "list[Task]", params: dict) -> None:
        remaining = {task.task_id: task for task in wave}
        deps_by_id = {task.task_id: list(task.deps) for task in wave}
        while remaining:
            if self.serial_only or not self._ensure_pool():
                pending_tasks = [
                    task for task in wave if task.task_id in remaining
                ]
                self._run_wave_serial(
                    pending_tasks, {t: params[t] for t in remaining}
                )
                return
            spool_root = None
            if self.payloads is not None:
                digests = collect_refs(
                    [params[task_id] for task_id in remaining]
                )
                if digests:
                    # spill() also rehydrates spool files that vanished
                    # since the last wave (see PayloadStore).
                    spool_root = self.payloads.spill(digests)
            attempts = {
                task_id: self._dispatch_attempt(task_id, in_worker=True)
                for task_id in remaining
            }
            messages = _pack_wave(
                [task for task in wave if task.task_id in remaining],
                params,
                self.n_workers,
                attempts=attempts,
            )
            trace_ctx = None
            if self.tracer is not None:
                trace_ctx = (self.tracer.epoch, self._task_parent)
                self.tracer.metrics.inc("executor.messages", len(messages))
                self.tracer.metrics.observe(
                    "executor.queue_depth", len(remaining)
                )
            with self._maybe_span(
                "dispatch",
                messages=len(messages),
                tasks=len(remaining),
            ):
                payloads_msgs = [
                    (spool_root, self.plan, trace_ctx, message)
                    for message in messages
                ]
                if self.tracer is not None:
                    self.tracer.metrics.inc(
                        "executor.message_bytes",
                        sum(len(pickle.dumps(m)) for m in payloads_msgs),
                    )
                futures = [
                    self._pool.submit(_run_chunk, payload)
                    for payload in payloads_msgs
                ]
                try:
                    for future, message in zip(futures, messages):
                        budget = None
                        if self.policy.timeout_s is not None:
                            budget = self.policy.timeout_s * len(message)
                        self._consume_chunk(
                            future.result(timeout=budget),
                            remaining,
                            deps_by_id,
                        )
                except BrokenProcessPool as exc:
                    self._salvage(futures, remaining, deps_by_id)
                    self._on_pool_failure("crash", repr(exc), remaining)
                except FuturesTimeoutError:
                    self._salvage(futures, remaining, deps_by_id)
                    self._on_pool_failure(
                        "timeout",
                        f"chunk exceeded its "
                        f"{self.policy.timeout_s:g}s/task budget",
                        remaining,
                    )
                else:
                    self.pool_failures = 0  # a clean round resets strikes
                    if remaining:
                        self._backoff()  # only retries left in the wave

    # -- the wave loop -----------------------------------------------------------

    def execute(self, ordered: "list[Task]") -> dict:
        if self.tracer is None:
            return self._execute(ordered)
        with self.tracer.span(
            "execute",
            "executor",
            n_tasks=len(ordered),
            n_workers=self.n_workers,
        ) as span:
            self._task_parent = span.span_id
            return self._execute(ordered)

    def _execute(self, ordered: "list[Task]") -> dict:
        pending = list(ordered)
        wave_index = 0
        while pending:
            pending = self._skip_blocked(pending)
            if not pending:
                break
            wave = [t for t in pending if set(t.deps) <= self.done]
            if not wave:
                # Only reachable if a dependency failed in raise mode —
                # which raised — or via skip_blocked; defensive guard.
                break
            with self._maybe_span(
                "wave", index=wave_index, size=len(wave)
            ):
                params = self._wave_params(wave)
                if self.serial_only or self.n_workers <= 1:
                    self._run_wave_serial(wave, params)
                else:
                    self._run_wave_pool(wave, params)
            wave_index += 1
            settled = self.done | self.failed.keys() | self.skipped
            pending = [t for t in pending if t.task_id not in settled]
        return self.results


def run_tasks(
    tasks: Sequence[Task],
    n_workers: "int | None" = None,
    on_result: "Callable[[str, object], None] | None" = None,
    payloads: "PayloadStore | None" = None,
    policy: "RetryPolicy | None" = None,
    faults: "FaultPlan | None" = None,
    health: "RunHealth | None" = None,
    collect_errors: bool = False,
) -> dict:
    """Execute a task DAG; returns ``{task_id: result}``.

    ``n_workers=1`` (the default when ``$REPRO_RUNTIME_WORKERS`` is
    unset) runs everything in-process.  With more workers, independent
    tasks run on a process pool — results are identical either way.

    ``on_result(task_id, result)`` fires in the coordinator as each
    task completes, before the run finishes — the engine persists cache
    entries through it, so an interrupted run keeps its completed
    points.

    ``payloads`` (a :class:`~repro.runtime.payloads.PayloadStore`)
    resolves interned parameter references: in memory for the serial
    path, via the write-once spool for pool workers.

    ``policy`` (a :class:`RetryPolicy`; default: 2 retries, no
    timeout) bounds retries/timeouts; ``faults`` (a
    :class:`~repro.runtime.faults.FaultPlan`; default: the installed
    plan or ``$REPRO_RUNTIME_FAULTS``) injects deterministic chaos;
    ``health`` (a :class:`RunHealth`) collects what happened.

    ``collect_errors=False`` (the default) raises
    :class:`TaskExecutionError` on the first task that exhausts its
    retries.  ``collect_errors=True`` instead records the failure in
    ``health.failed``, skips its dependents (``health.skipped``), and
    returns the results of every task that did complete — the campaign
    layer uses this so one broken STA chain cannot kill the other N-1.
    """
    tasks = list(tasks)
    if not tasks:
        return {}
    ordered = _topological(tasks)
    n_workers = resolve_worker_count(n_workers)
    execution = _Execution(
        n_workers=n_workers,
        on_result=on_result,
        payloads=payloads,
        policy=policy or DEFAULT_POLICY,
        health=health if health is not None else RunHealth(),
        plan=active_plan(faults),
        collect_errors=collect_errors,
    )
    try:
        return execution.execute(ordered)
    finally:
        execution.close()
