"""Content-addressed checkpoint store for trained model weights.

The zoo builder (``repro.core.zoo_builder``) persists every finished
training run here so a warm rebuild loads weights instead of spending
epochs.  Checkpoints are keyed by the training key (sha256 of the
canonical training spec — dataset, widths, training config — plus the
repro source digest, namespaced ``kind="train"`` so it can never
collide with a result-cache address) and persisted through the packed
segment store (:mod:`repro.runtime.store`).  One CRC-framed record per
checkpoint carries both halves of the old two-file layout::

    meta_len (u32) | metadata JSON | np.savez bytes

The metadata JSON records ``state_sha256``; :meth:`CheckpointStore.get`
refuses records whose weight bytes no longer hash to it, so a
half-written or corrupted checkpoint is a miss, never a wrong model.
Because the key embeds the source digest, any library edit silently
invalidates every checkpoint (exactly like the result cache); ``prune``
compacts unaddressable leftovers away.

Legacy layout: roots written by older versions hold ``<key>.npz`` +
``<key>.json`` file pairs.  ``get`` absorbs such pairs into the packed
store on first touch (validating them exactly as the legacy reader
did, quarantining corrupt pairs to ``<root>/quarantine/``), and
``python -m repro.runtime.store migrate <root>`` packs a whole root in
one shot.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.trace import current_tracer
from repro.runtime import knobs
from repro.runtime.cache import (
    StoreHealth,
    quarantine_files,
    sweep_stale_tmp,
    sweep_stale_tmp_once,
)
from repro.runtime.faults import active_plan
from repro.runtime.hashing import state_digest

__all__ = ["Checkpoint", "CheckpointStore", "default_checkpoint_root"]

SCHEMA_VERSION = 1

#: Namespace passed as ``task_key(..., kind=...)`` for training keys.
CHECKPOINT_KIND = "train"

#: Record prefix: little-endian length of the metadata JSON half.
_META_LEN = struct.Struct("<I")

#: Environment variable overriding the default store location.
CHECKPOINTS_ENV = knobs.CHECKPOINTS_ENV


def default_checkpoint_root(fallback: "str | None" = None) -> str:
    """$REPRO_RUNTIME_CHECKPOINTS, else ``fallback``, else the in-repo default."""
    configured = knobs.read_knob(CHECKPOINTS_ENV)
    if configured:
        return configured
    if fallback is not None:
        return fallback
    return os.path.join("benchmarks", "results", "checkpoint_store")


@dataclass
class Checkpoint:
    """One persisted training run: weights plus its recorded metadata.

    ``state_sha256`` is the integrity digest :meth:`CheckpointStore.get`
    already verified against the weight bytes — consumers (the zoo
    builder's manifest rows) reuse it instead of re-hashing the state.
    """

    key: str
    spec: dict
    state: "dict[str, np.ndarray]"
    meta: dict = field(default_factory=dict)
    state_sha256: str = ""


class CheckpointStore:
    """A packed, content-addressed store of trained-model checkpoints."""

    #: Fault-injection label for torn writes (``torn,checkpoint:<key>``).
    STORE_LABEL = "checkpoint"

    def __init__(self, root: "str | os.PathLike") -> None:
        from repro.runtime.store import SegmentStore

        if not str(root):
            raise ConfigurationError("checkpoint store root must be non-empty")
        self.root = Path(root)
        self.health = StoreHealth()
        self._store = SegmentStore(
            self.root, label=self.STORE_LABEL, health=self.health
        )

    def weight_path(self, key: str) -> Path:
        """The *legacy* per-file weight location (pre-packed layout)."""
        return self.root / f"{key}.npz"

    def meta_path(self, key: str) -> Path:
        """The *legacy* per-file metadata location (pre-packed layout)."""
        return self.root / f"{key}.json"

    # -- encoding --------------------------------------------------------------

    def _encode(
        self,
        key: str,
        spec,
        state: "dict[str, np.ndarray]",
        meta: "dict | None",
        state_sha256: "str | None",
    ) -> bytes:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "spec": spec,
            "state_sha256": state_sha256 or state_digest(state),
            "meta": dict(meta or {}),
        }
        meta_bytes = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode()
        buffer = io.BytesIO()
        np.savez(buffer, **state)
        return _META_LEN.pack(len(meta_bytes)) + meta_bytes + buffer.getvalue()

    def _decode(self, key: str, raw: bytes) -> "Checkpoint | None":
        """The validated checkpoint in ``raw``, or ``None`` if corrupt."""
        if len(raw) < _META_LEN.size:
            return None
        (meta_len,) = _META_LEN.unpack(raw[: _META_LEN.size])
        meta_end = _META_LEN.size + meta_len
        if meta_end > len(raw):
            return None
        try:
            payload = json.loads(raw[_META_LEN.size : meta_end].decode())
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None
        if payload.get("schema_version") != SCHEMA_VERSION:
            return None
        try:
            with np.load(io.BytesIO(raw[meta_end:])) as data:
                state = {name: data[name] for name in data.files}
        except (OSError, ValueError, EOFError, zipfile.BadZipFile):
            return None
        if state_digest(state) != payload.get("state_sha256"):
            return None
        return Checkpoint(
            key=key,
            spec=payload.get("spec", {}),
            state=state,
            meta=payload.get("meta", {}),
            state_sha256=payload["state_sha256"],
        )

    # -- read -----------------------------------------------------------------

    def get(self, key: str) -> "Checkpoint | None":
        tracer = current_tracer()
        if tracer is None:
            return self._get(key)
        with tracer.span("checkpoint.get", "store", key=key) as span:
            checkpoint = self._get(key)
            hit = checkpoint is not None
            span.attrs["hit"] = hit
            tracer.metrics.inc(
                "checkpoint.hits" if hit else "checkpoint.misses"
            )
            return checkpoint

    def _get(self, key: str) -> "Checkpoint | None":
        """The checkpoint for ``key``, or ``None`` on miss.

        A committed-but-corrupt record — CRC failure, garbled archive
        bytes, or weights whose bytes no longer hash to the recorded
        ``state_sha256`` — is quarantined (tombstoned and counted on
        :attr:`health`); the caller sees a miss and retrains.
        """
        raw = self._store.get(key)
        if raw is not None:
            checkpoint = self._decode(key, raw)
            if checkpoint is None:
                self._store.quarantine(key)
            return checkpoint
        if self._store.contains(key):
            return None  # tombstoned: clean miss, no legacy resurrection
        return self._legacy_get(key)

    def _legacy_get(self, key: str) -> "Checkpoint | None":
        """Absorb a legacy two-file checkpoint into the packed store."""
        try:
            payload = json.loads(self.meta_path(key).read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return self._quarantine_legacy(key)
        if not isinstance(payload, dict) or payload.get("key") != key:
            return self._quarantine_legacy(key)
        if payload.get("schema_version") != SCHEMA_VERSION:
            return self._quarantine_legacy(key)
        try:
            with np.load(self.weight_path(key)) as data:
                state = {name: data[name] for name in data.files}
        except (OSError, ValueError, EOFError, zipfile.BadZipFile):
            # A truncated/garbled .npz (torn write, partial copy), or
            # weights vanished after commit: BadZipFile and EOFError
            # are what np.load raises on mangled zip containers.
            return self._quarantine_legacy(key)
        if state_digest(state) != payload.get("state_sha256"):
            return self._quarantine_legacy(key)
        checkpoint = Checkpoint(
            key=key,
            spec=payload.get("spec", {}),
            state=state,
            meta=payload.get("meta", {}),
            state_sha256=payload["state_sha256"],
        )
        # Lazy migration: pack the pair, then retire the legacy files.
        self._store.put(
            key,
            self._encode(
                key,
                checkpoint.spec,
                state,
                checkpoint.meta,
                checkpoint.state_sha256,
            ),
        )
        self.meta_path(key).unlink(missing_ok=True)
        self.weight_path(key).unlink(missing_ok=True)
        return checkpoint

    def _quarantine_legacy(self, key: str):
        """Move a corrupt legacy checkpoint (both files) aside; miss."""
        moved = quarantine_files(
            self.root, [self.meta_path(key), self.weight_path(key)]
        )
        # One counter tick per entry (not per file), so cache and
        # checkpoint quarantine counts are comparable in health dicts.
        if moved:
            self.health.quarantined += 1
            tracer = current_tracer()
            if tracer is not None:
                tracer.metrics.inc("store.quarantined")
                tracer.event(
                    "quarantine", "store", store="checkpoint", key=key
                )
        return None

    # -- write ----------------------------------------------------------------

    def put(
        self,
        key: str,
        spec,
        state: "dict[str, np.ndarray]",
        meta: "dict | None" = None,
        state_sha256: "str | None" = None,
    ) -> Path:
        """Persist one finished training run (atomic append; last wins).

        The record's CRC frame is the commit marker: a crash mid-append
        leaves a torn tail the next open truncates, never a
        readable-but-wrong checkpoint.  ``state_sha256`` lets a caller
        that already digested ``state`` skip the re-hash.
        """
        tracer = current_tracer()
        if tracer is None:
            return self._put(key, spec, state, meta, state_sha256)
        with tracer.span("checkpoint.put", "store", key=key):
            tracer.metrics.inc("checkpoint.puts")
            return self._put(key, spec, state, meta, state_sha256)

    def _put(
        self,
        key: str,
        spec,
        state: "dict[str, np.ndarray]",
        meta: "dict | None" = None,
        state_sha256: "str | None" = None,
    ) -> Path:
        # First write into a root clears crashed legacy writers'
        # *.tmp.* leftovers; later puts skip the directory scan.
        sweep_stale_tmp_once(self.root)
        plan = active_plan()
        # Injected torn write: the record lands with a broken CRC under
        # an intact frame — the strongest corruption `get` must catch.
        corrupt = plan is not None and plan.tear("checkpoint", key)
        return self._store.put(
            key,
            self._encode(key, spec, state, meta, state_sha256),
            corrupt=corrupt,
        )

    # -- maintenance -----------------------------------------------------------

    def legacy_keys(self) -> "list[str]":
        """Keys still held as legacy two-file checkpoints (sorted)."""
        from repro.runtime.store import INDEX_NAME

        if not self.root.is_dir():
            return []
        return sorted(
            p.stem
            for p in self.root.glob("*.json")
            if p.name != INDEX_NAME and self.weight_path(p.stem).exists()
        )

    def keys(self) -> "list[str]":
        """Keys of every committed checkpoint (sorted, no dir scan when
        the root holds no legacy leftovers)."""
        packed = self._store.keys()
        legacy = self.legacy_keys()
        if not legacy:
            return packed
        return sorted(set(packed) | set(legacy))

    def __len__(self) -> int:
        legacy = self.legacy_keys()
        if not legacy:
            return len(self._store)
        return len(self.keys())

    def flush(self) -> None:
        """Publish the packed index (cheap; bounds the next recovery scan)."""
        self._store.flush()

    def prune(self, live_keys) -> int:
        """Compact away checkpoints not in ``live_keys``; returns removals.

        Packed dead entries are dropped by compaction; legacy leftovers
        (dead pairs, orphans, stale ``*.tmp.*`` residue of crashed
        pre-packed writers) are swept file by file as before.
        """
        live = set(live_keys)
        removed = 0
        if self.root.is_dir():
            for path in list(self.root.glob("*.json")) + list(
                self.root.glob("*.npz")
            ):
                name = path.name
                if ".tmp." in name or name == "index.json":
                    continue  # temp residue handled by the sweep below
                key = path.stem
                if key in live:
                    # Never touch a live key, even half-committed: a
                    # legacy writer may have died between its weight
                    # rename and its metadata commit, and the residue
                    # is harmless (get() misses; the next put wins).
                    continue
                path.unlink(missing_ok=True)
                removed += 1
        removed += self._store.compact(live)
        return removed + sweep_stale_tmp(self.root)
