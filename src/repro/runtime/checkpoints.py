"""Content-addressed checkpoint store for trained model weights.

The zoo builder (``repro.core.zoo_builder``) persists every finished
training run here so a warm rebuild loads weights instead of spending
epochs.  Layout: two files per checkpoint under the store root, named by
the training key (sha256 of the canonical training spec — dataset,
widths, training config — plus the repro source digest, namespaced
``kind="train"`` so it can never collide with a result-cache address):

    <root>/<key>.npz    ->  the model state dict (np.savez)
    <root>/<key>.json   ->  {"schema_version": 1, "key": ..., "spec": ...,
                             "state_sha256": ..., "meta": ...}

The metadata JSON is written *after* the weights and acts as the commit
marker: :meth:`CheckpointStore.get` refuses entries whose weights are
missing or whose bytes no longer hash to the recorded ``state_sha256``,
so a half-written or corrupted checkpoint is a miss, never a wrong
model.  Because the key embeds the source digest, any library edit
silently invalidates every checkpoint (exactly like the result cache);
``prune`` clears unaddressable leftovers and stale write-temp files.
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.trace import current_tracer
from repro.runtime import knobs
from repro.runtime.cache import (
    StoreHealth,
    quarantine_files,
    sweep_stale_tmp,
    sweep_stale_tmp_once,
)
from repro.runtime.faults import active_plan
from repro.runtime.hashing import state_digest

__all__ = ["Checkpoint", "CheckpointStore", "default_checkpoint_root"]

SCHEMA_VERSION = 1

#: Namespace passed as ``task_key(..., kind=...)`` for training keys.
CHECKPOINT_KIND = "train"

#: Environment variable overriding the default store location.
CHECKPOINTS_ENV = knobs.CHECKPOINTS_ENV


def default_checkpoint_root(fallback: "str | None" = None) -> str:
    """$REPRO_RUNTIME_CHECKPOINTS, else ``fallback``, else the in-repo default."""
    configured = knobs.read_knob(CHECKPOINTS_ENV)
    if configured:
        return configured
    if fallback is not None:
        return fallback
    return os.path.join("benchmarks", "results", "checkpoint_store")


@dataclass
class Checkpoint:
    """One persisted training run: weights plus its recorded metadata.

    ``state_sha256`` is the integrity digest :meth:`CheckpointStore.get`
    already verified against the ``.npz`` bytes — consumers (the zoo
    builder's manifest rows) reuse it instead of re-hashing the state.
    """

    key: str
    spec: dict
    state: "dict[str, np.ndarray]"
    meta: dict = field(default_factory=dict)
    state_sha256: str = ""


class CheckpointStore:
    """A directory of content-addressed trained-model checkpoints."""

    def __init__(self, root: "str | os.PathLike") -> None:
        if not str(root):
            raise ConfigurationError("checkpoint store root must be non-empty")
        self.root = Path(root)
        self.health = StoreHealth()

    def weight_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def meta_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- read -----------------------------------------------------------------

    def _quarantine(self, key: str):
        """Move a corrupt checkpoint (both files) aside; report a miss."""
        moved = quarantine_files(
            self.root, [self.meta_path(key), self.weight_path(key)]
        )
        # One counter tick per entry (not per file), so cache and
        # checkpoint quarantine counts are comparable in health dicts.
        if moved:
            self.health.quarantined += 1
            tracer = current_tracer()
            if tracer is not None:
                tracer.metrics.inc("store.quarantined")
                tracer.event(
                    "quarantine", "store", store="checkpoint", key=key
                )
        return None

    def get(self, key: str) -> "Checkpoint | None":
        tracer = current_tracer()
        if tracer is None:
            return self._get(key)
        with tracer.span("checkpoint.get", "store", key=key) as span:
            checkpoint = self._get(key)
            hit = checkpoint is not None
            span.attrs["hit"] = hit
            tracer.metrics.inc(
                "checkpoint.hits" if hit else "checkpoint.misses"
            )
            return checkpoint

    def _get(self, key: str) -> "Checkpoint | None":
        """The checkpoint for ``key``, or ``None`` on miss.

        A committed-but-corrupt entry — unreadable metadata, a
        truncated/garbled ``.npz``, or weights whose bytes no longer
        hash to the recorded ``state_sha256`` — is quarantined to
        ``<root>/quarantine/`` and counted on :attr:`health`; the
        caller sees a miss and retrains.  An absent metadata file is a
        plain miss (a concurrent writer may sit between its weight
        rename and its metadata commit).
        """
        try:
            payload = json.loads(self.meta_path(key).read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return self._quarantine(key)
        if not isinstance(payload, dict) or payload.get("key") != key:
            return self._quarantine(key)
        if payload.get("schema_version") != SCHEMA_VERSION:
            return self._quarantine(key)
        try:
            with np.load(self.weight_path(key)) as data:
                state = {name: data[name] for name in data.files}
        except (OSError, ValueError, EOFError, zipfile.BadZipFile):
            # A truncated/garbled .npz (torn write, partial copy), or
            # weights vanished after commit: BadZipFile and EOFError
            # are what np.load raises on mangled zip containers.
            return self._quarantine(key)
        if state_digest(state) != payload.get("state_sha256"):
            # Weights on disk no longer match what the metadata recorded
            # (torn write, manual edit): quarantine and retrain.
            return self._quarantine(key)
        return Checkpoint(
            key=key,
            spec=payload.get("spec", {}),
            state=state,
            meta=payload.get("meta", {}),
            state_sha256=payload["state_sha256"],
        )

    # -- write ----------------------------------------------------------------

    def put(
        self,
        key: str,
        spec,
        state: "dict[str, np.ndarray]",
        meta: "dict | None" = None,
        state_sha256: "str | None" = None,
    ) -> Path:
        """Persist one finished training run (atomic; last writer wins).

        The weights land first, the metadata JSON last — its presence is
        the commit marker ``get`` keys off, so a crash mid-write leaves
        only sweepable temp files or an unreferenced ``.npz``, never a
        readable-but-wrong checkpoint.  ``state_sha256`` lets a caller
        that already digested ``state`` skip the re-hash.
        """
        tracer = current_tracer()
        if tracer is None:
            return self._put(key, spec, state, meta, state_sha256)
        with tracer.span("checkpoint.put", "store", key=key):
            tracer.metrics.inc("checkpoint.puts")
            return self._put(key, spec, state, meta, state_sha256)

    def _put(
        self,
        key: str,
        spec,
        state: "dict[str, np.ndarray]",
        meta: "dict | None" = None,
        state_sha256: "str | None" = None,
    ) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        weight_path = self.weight_path(key)
        meta_path = self.meta_path(key)
        tmp_weights = weight_path.with_suffix(f".tmp.{os.getpid()}.npz")
        tmp_meta = meta_path.with_suffix(f".tmp.{os.getpid()}")
        # First put per (process, root): sweep dead writers' leftovers;
        # live pids — including our own in-flight files — are spared.
        sweep_stale_tmp_once(self.root)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "spec": spec,
            "state_sha256": state_sha256 or state_digest(state),
            "meta": dict(meta or {}),
        }
        np.savez(tmp_weights, **state)
        plan = active_plan()
        if plan is not None and plan.tear("checkpoint", key):
            # Injected torn write: commit a truncated .npz under intact
            # metadata — the strongest corruption `get` must catch.
            size = tmp_weights.stat().st_size
            with open(tmp_weights, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        os.replace(tmp_weights, weight_path)
        tmp_meta.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        os.replace(tmp_meta, meta_path)
        return meta_path

    # -- maintenance -----------------------------------------------------------

    def keys(self) -> "list[str]":
        """Keys of every committed checkpoint on disk (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.stem
            for p in self.root.glob("*.json")
            if self.weight_path(p.stem).exists()
        )

    def __len__(self) -> int:
        return len(self.keys())

    def prune(self, live_keys) -> int:
        """Delete checkpoints not in ``live_keys``; returns files removed.

        Also removes orphans (weights without metadata or vice versa)
        and stale ``*.tmp.*`` write-temp files of crashed writers.
        """
        live = set(live_keys)
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in list(self.root.glob("*.json")) + list(self.root.glob("*.npz")):
            name = path.name
            if ".tmp." in name:
                continue  # handled by the sweep below
            key = path.stem
            if key in live:
                # Never touch a live key, even half-committed: a
                # concurrent writer may sit between its weight rename
                # and its metadata commit, and a genuine crash residue
                # is harmless (get() misses; the next put overwrites).
                continue
            path.unlink(missing_ok=True)
            removed += 1
        return removed + sweep_stale_tmp(self.root)
