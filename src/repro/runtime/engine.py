"""The experiment engine: plan, cache-check, execute, store, report.

:class:`ExperimentEngine` is the orchestration entry point the figure
benchmarks and examples use::

    engine = ExperimentEngine(cache=ResultCache("benchmarks/results/runtime_cache"),
                              n_workers=4)
    run = engine.run(get_scenario("fig09"))
    engine.write_results(run, "benchmarks/results/fig09.json")

Determinism contract: ``run.to_dict()`` is byte-identical whatever the
worker count and whether points came from workers or the cache, because
every task is a pure seeded function and cache keys embed the code
version.  Wall-clock statistics live on the :class:`EngineRun` object
only — the JSON artifact carries no timestamps, so re-runs diff clean.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext as _null
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs import trace as trace_mod
from repro.obs.export import write_trace
from repro.runtime import faults as faults_mod
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    RetryPolicy,
    RunHealth,
    resolve_worker_count,
    run_tasks,
)
from repro.runtime.hashing import code_version
from repro.runtime.planner import plan_scenario
from repro.runtime.spec import Scenario
from repro.utils.artifacts import write_json_artifact

__all__ = ["EngineRun", "ExperimentEngine"]

#: Bump when the result-artifact layout changes incompatibly.
RESULT_SCHEMA_VERSION = 1


@dataclass
class EngineRun:
    """The outcome of one scenario execution."""

    scenario: str
    title: str
    fidelity: dict
    points: "list[dict]"  # {"label", "key", "result"} in scenario order
    n_tasks: int
    n_cached: int
    n_executed: int
    n_workers: int
    wall_s: float = 0.0
    code_version: str = ""
    health: dict = field(default_factory=dict)
    #: Directory the run's trace was written to (``None`` untraced).
    #: Telemetry, like ``wall_s`` — never part of :meth:`to_dict`.
    trace_dir: "str | None" = None

    def result(self, label: str) -> dict:
        """The result mapping for one point label."""
        for entry in self.points:
            if entry["label"] == label:
                return entry["result"]
        raise ConfigurationError(f"no point labelled {label!r}")

    def values(self, metric: str = "ber") -> "dict[str, float]":
        """``{label: result[metric]}`` over all points."""
        return {p["label"]: p["result"][metric] for p in self.points}

    def to_dict(self, include_health: bool = False) -> dict:
        """Deterministic artifact payload (no timestamps, no wall time).

        ``include_health=True`` appends the run's fault-tolerance
        statistics (:class:`~repro.runtime.executor.RunHealth` plus
        store counters).  The default omits them so the artifact stays
        byte-identical across worker counts, cold/warm caches, *and*
        fault schedules — injected chaos costs retries, never bytes.
        """
        payload = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "scenario": self.scenario,
            "title": self.title,
            "fidelity": self.fidelity,
            "code_version": self.code_version,
            "points": self.points,
        }
        if include_health:
            payload["health"] = self.health
        return payload

    def write_json(self, path: "str | os.PathLike") -> None:
        """Write the artifact (2-space indent, sorted keys, trailing \\n)."""
        write_json_artifact(path, self.to_dict())


class ExperimentEngine:
    """Runs scenarios through the planner, cache, and worker pool.

    Parameters
    ----------
    cache:
        A :class:`ResultCache` (or ``None`` to always recompute).
    n_workers:
        Worker processes; ``None`` reads ``$REPRO_RUNTIME_WORKERS``
        (default 1 = the deterministic in-process executor).
    policy:
        A :class:`~repro.runtime.executor.RetryPolicy` bounding
        retries/timeouts (``None`` = the default: 2 retries, no
        timeout).
    faults:
        A :class:`~repro.runtime.faults.FaultPlan` of injected chaos
        (``None`` = the installed plan or ``$REPRO_RUNTIME_FAULTS``).
    trace:
        Observability: a directory path (or a
        :class:`~repro.obs.trace.Tracer`) to record the run's span
        timeline and metrics into; ``None`` joins an already-installed
        tracer or honours ``$REPRO_RUNTIME_TRACE``; ``False`` disables
        tracing even under the environment variable.  Tracing never
        changes result bytes — see :mod:`repro.obs.trace`.
    """

    def __init__(
        self,
        cache: "ResultCache | None" = None,
        n_workers: "int | None" = None,
        policy: "RetryPolicy | None" = None,
        faults=None,
        trace=None,
    ) -> None:
        self.cache = cache
        self.n_workers = resolve_worker_count(n_workers)
        self.policy = policy
        self.faults = faults
        self.trace = trace

    def run(self, scenario: Scenario) -> EngineRun:
        """Execute every point of ``scenario`` (reusing cached ones)."""
        # Install the active plan (and tracer) for the run's duration so
        # store reads/writes — which happen far from any executor kwarg
        # — see the same chaos schedule and land in the same timeline.
        plan = faults_mod.active_plan(self.faults)
        previous = faults_mod.install(plan)
        tracer, owned = trace_mod.tracer_for_run(
            self.trace, f"engine:{scenario.name}"
        )
        prev_tracer = trace_mod.install_tracer(tracer) if tracer else None
        try:
            if tracer is None:
                return self._run(scenario, plan)
            with tracer.span(f"engine:{scenario.name}", "engine"):
                run = self._run(scenario, plan)
            self._finalize_trace(run, tracer, owned)
            return run
        finally:
            if tracer is not None:
                trace_mod.install_tracer(prev_tracer)
            faults_mod.install(previous)

    def _finalize_trace(self, run: EngineRun, tracer, owned: bool) -> None:
        """Fold run health into the metrics; export when we own the tracer."""
        metrics = tracer.metrics
        metrics.ratio_gauge("cache.hit_ratio", run.n_cached, run.n_tasks)
        for family, counters in run.health.items():
            if not isinstance(counters, dict):
                continue
            for key, value in counters.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    metrics.set_gauge(f"health.{family}.{key}", value)
        if owned:
            run.trace_dir = write_trace(tracer)
        else:
            run.trace_dir = tracer.out_dir

    def _run(self, scenario: Scenario, plan) -> EngineRun:
        start = time.perf_counter()
        tracer = trace_mod.current_tracer()
        version = code_version()
        health = RunHealth()
        if tracer is None:
            planned = plan_scenario(
                scenario, version=version, n_workers=self.n_workers
            )
        else:
            with tracer.span("plan", "engine", points=len(scenario.points)):
                planned = plan_scenario(
                    scenario, version=version, n_workers=self.n_workers
                )
        results: "dict[int, dict]" = {}
        to_run = []
        with tracer.span(
            "cache_check", "engine", tasks=len(planned)
        ) if tracer else _null():
            for entry in planned:
                # `is not None`, not truthiness: an *empty* cache is
                # falsy (__len__ == 0), which would silently skip gets
                # on every cold run — and with them the miss telemetry.
                cached = (
                    self.cache.get(entry.key)
                    if self.cache is not None
                    else None
                )
                if cached is not None:
                    results[entry.index] = cached
                else:
                    to_run.append(entry)

        by_task_id = {entry.task.task_id: entry for entry in to_run}

        def persist(task_id: str, result) -> None:
            # Store each point the moment it completes, so an
            # interrupted run resumes from every finished point.
            if self.cache is not None:
                entry = by_task_id[task_id]
                self.cache.put(entry.key, entry.spec, result)

        executed = run_tasks(
            [entry.task for entry in to_run],
            n_workers=self.n_workers,
            on_result=persist,
            policy=self.policy,
            faults=plan,
            health=health,
        )
        if self.cache is not None:
            # Publish the packed index so the next open recovers from a
            # snapshot instead of rescanning every segment tail.
            self.cache.flush()
        with tracer.span("assemble", "engine") if tracer else _null():
            run = self._assemble(
                scenario, plan, planned, to_run, results, executed,
                version, health, start,
            )
        return run

    def _assemble(
        self, scenario, plan, planned, to_run, results, executed,
        version, health, start,
    ) -> EngineRun:
        for entry in to_run:
            results[entry.index] = executed[entry.task.task_id]
        return EngineRun(
            scenario=scenario.name,
            title=scenario.title,
            fidelity=dict(scenario.fidelity),
            points=[
                {
                    "label": entry.label,
                    "key": entry.key,
                    "result": results[entry.index],
                }
                for entry in planned
            ],
            n_tasks=len(planned),
            n_cached=len(planned) - len(to_run),
            n_executed=len(to_run),
            n_workers=self.n_workers,
            wall_s=time.perf_counter() - start,
            code_version=version,
            health={
                "executor": health.to_dict(),
                "cache": (
                    self.cache.health.to_dict()
                    if self.cache is not None
                    else None
                ),
            },
        )

    def write_results(self, run: EngineRun, path: "str | os.PathLike") -> None:
        """Alias for :meth:`EngineRun.write_json` (symmetry with ``run``)."""
        run.write_json(path)
