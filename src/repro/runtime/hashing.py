"""Stable hashing for task specs and the repository's code version.

A cached result is only reusable if (a) the task spec is byte-for-byte
the same and (b) the code that produced it has not changed.  Specs are
hashed through a canonical JSON form (sorted keys, no whitespace), and
the code version is a digest over every ``repro`` source file, so any
edit to the library invalidates the cache wholesale — coarse, but it
can never serve a stale number.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import ConfigurationError

#: Re-exported because runtime stores address and verify weights by it;
#: the implementation lives next to ``state_dict`` in
#: :mod:`repro.nn.serialize` so the core/nn layers never import the
#: orchestration package.
from repro.nn.serialize import state_digest

__all__ = ["canonical_json", "code_version", "task_key", "state_digest"]


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    try:
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"spec is not canonically JSON-serializable: {exc}"
        ) from exc


_CODE_VERSION: str | None = None


def code_version() -> str:
    """Digest of every ``repro/**/*.py`` source file (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


def task_key(spec, version: str | None = None, *, kind: str | None = None) -> str:
    """Content address of one task: sha256 of (canonical spec, code version).

    ``kind`` namespaces the address space: stores holding different
    artifact families (measurement results vs training checkpoints) use
    distinct kinds so their keys can never collide, even for an
    identical spec.  ``None`` (the default) keeps the original
    result-cache addresses.
    """
    payload = {"spec": spec, "code": code_version() if version is None else version}
    if kind is not None:
        payload["kind"] = str(kind)
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


