"""Crash-safe packed segment store: the fleet-scale durability layer.

:class:`ResultCache` and :class:`~repro.runtime.checkpoints.
CheckpointStore` used to persist one file (pair) per content address —
perfect for resumability, fatal at 10^5-10^6 cached rounds (directory
scans on every ``keys()``, inode churn, O(n) prune).  This module packs
every entry into a handful of bounded, append-only **segment files**
behind an in-memory hash index, with a commit protocol that keeps the
interrupted-run resume guarantee byte-exact at fleet scale.

Layout (all under one store root)::

    <root>/segments/seg-<gen>-<seq>.seg   append-only record logs
    <root>/index.json                     atomic index snapshot
    <root>/.lock                          cross-process writer lock

Record framing: a fixed little-endian header (``magic | kind | key_len
| value_len | crc32``) followed by the key and value bytes.  The CRC
covers kind, key, and value, so a reader can always tell a committed
record from a torn or bit-rotted one.

Commit protocol
---------------

- ``put`` appends one framed record to the active segment under an
  exclusive ``flock`` and publishes it in the in-memory index.  The
  hot path is O(1): no directory scan, no per-entry file, one
  buffered ``write``.
- The index **snapshot** (``index.json``) is written atomically
  (temp + fsync + rename) and only after the active segment has been
  fsync'd — the index can lag the data, never lead it.  Snapshots
  happen every :data:`DEFAULT_SNAPSHOT_EVERY` puts, on segment roll,
  on ``flush``/``close``, and after compaction.
- **Recovery**: on open, the store loads the snapshot (a missing,
  torn, or stale one is fine) and scans every segment forward from its
  last committed offset.  Complete records are re-indexed; a torn tail
  — a record whose frame runs past end-of-file or whose CRC fails at
  the tail — is truncated and counted, never served.  A full-frame
  CRC failure *mid*-segment (bit rot) is skipped, not served.
- **Compaction** (:meth:`SegmentStore.compact`) replaces the per-file
  era's ``prune``: live records are copied forward into a new segment
  generation, the new index snapshot is renamed into place (the commit
  point), and only then are the dead generation's segments deleted.  A
  crash on either side of the rename leaves a store that opens clean:
  orphan segments from other generations are discarded because every
  committed record they held lives in the indexed generation.
- **Quarantine** (PR 6 semantics): a CRC-failing or mis-keyed record
  is *tombstoned* — a tombstone record is appended and the key
  reported as a miss — and counted on the store's health, so a
  corrupted entry costs one recompute, never a wrong number.

Concurrent writers on one root interleave safely: every append takes
the ``flock``, re-reads the segment size under it, and absorbs any
records other writers appended since its last look.  Reads are
lock-free (records are immutable once written).

Fault injection: the :mod:`repro.runtime.faults` ``torn`` kind targets
``segment:<segment-name>`` (this append lands as a torn tail, exactly
as if the writer was killed mid-``write``) and ``index:<store-label>``
(the snapshot lands corrupt, forcing a full rebuild scan on the next
open) in addition to the store-level ``cache:<key>`` /
``checkpoint:<key>`` labels.

``python -m repro.runtime.store migrate <root>`` migrates a legacy
per-file store root into packed segments in place (see :func:`migrate`).
"""

from __future__ import annotations

import io
import json
import os
import struct
import threading
import zlib
from contextlib import contextmanager
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (no flock)
    fcntl = None

from repro.errors import ConfigurationError
from repro.obs.trace import current_tracer
from repro.runtime import knobs
from repro.runtime.faults import active_plan

__all__ = [
    "SegmentStore",
    "RecordLocation",
    "migrate",
    "default_segment_bytes",
    "default_snapshot_every",
]

#: Bump when the on-disk record or index layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

#: Record-frame magic (also the quickest "is this a segment?" check).
MAGIC = b"RSG1"

#: kind byte: a live key->value record.
KIND_DATA = 1
#: kind byte: a tombstone (the key is dead until re-put).
KIND_TOMBSTONE = 2

#: magic | kind u8 | key_len u16 | value_len u32 | crc32 u32
_HEADER = struct.Struct("<4sBHII")
HEADER_SIZE = _HEADER.size

#: Reserved file names inside a store root (legacy per-file entries can
#: never collide: their stems are content hashes / caller keys).
INDEX_NAME = "index.json"
LOCK_NAME = ".lock"
SEGMENTS_DIR = "segments"

#: Sanity ceiling for a single record's value (a corrupted length field
#: must never make the scanner chase gigabytes past the torn tail).
MAX_VALUE_BYTES = 1 << 31

#: Segment files roll once they exceed this many bytes.
DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024
#: Index snapshot cadence (puts between snapshots); recovery scans at
#: most this many un-snapshotted records per segment on open.
DEFAULT_SNAPSHOT_EVERY = 4096


def default_segment_bytes() -> int:
    """$REPRO_RUNTIME_STORE_SEGMENT_BYTES, else the 64 MiB default."""
    configured = knobs.read_knob(knobs.STORE_SEGMENT_BYTES_ENV)
    if configured:
        try:
            value = int(configured)
        except ValueError:
            raise ConfigurationError(
                f"${knobs.STORE_SEGMENT_BYTES_ENV} must be an integer, "
                f"got {configured!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(
                f"${knobs.STORE_SEGMENT_BYTES_ENV} must be >= 1"
            )
        return value
    return DEFAULT_SEGMENT_BYTES


def default_snapshot_every() -> int:
    """$REPRO_RUNTIME_STORE_SNAPSHOT_EVERY, else the default cadence."""
    configured = knobs.read_knob(knobs.STORE_SNAPSHOT_EVERY_ENV)
    if configured:
        try:
            value = int(configured)
        except ValueError:
            raise ConfigurationError(
                f"${knobs.STORE_SNAPSHOT_EVERY_ENV} must be an integer, "
                f"got {configured!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(
                f"${knobs.STORE_SNAPSHOT_EVERY_ENV} must be >= 1"
            )
        return value
    return DEFAULT_SNAPSHOT_EVERY


def _segment_name(generation: int, seq: int) -> str:
    return f"seg-{generation:08d}-{seq:08d}.seg"


def _parse_segment_name(name: str) -> "tuple[int, int] | None":
    """``(generation, seq)`` for a well-formed segment file name."""
    if not name.startswith("seg-") or not name.endswith(".seg"):
        return None
    parts = name[4:-4].split("-")
    if len(parts) != 2:
        return None
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        return None


def _frame(kind: int, key: str, value: bytes) -> bytes:
    """One complete record frame (header + key + value)."""
    key_bytes = key.encode()
    if len(key_bytes) > 0xFFFF:
        raise ConfigurationError("store key exceeds 65535 bytes")
    crc = zlib.crc32(bytes([kind]) + key_bytes + value) & 0xFFFFFFFF
    header = _HEADER.pack(MAGIC, kind, len(key_bytes), len(value), crc)
    return header + key_bytes + value


class RecordLocation(tuple):
    """``(segment_name, offset, length)`` of one committed record."""

    __slots__ = ()

    def __new__(cls, segment: str, offset: int, length: int):
        return super().__new__(cls, (segment, offset, length))

    @property
    def segment(self) -> str:
        return self[0]

    @property
    def offset(self) -> int:
        return self[1]

    @property
    def length(self) -> int:
        return self[2]


class SegmentStore:
    """A packed, indexed, append-only map of string keys to bytes.

    Parameters
    ----------
    root:
        The store directory (created on first write).
    label:
        Short name used in fault-injection labels (``index:<label>``),
        tracer events, and the migration summary — ``"cache"`` or
        ``"checkpoint"`` for the built-in wrappers.
    health:
        A :class:`~repro.runtime.cache.StoreHealth` to tick counters
        on (quarantines, recovered records, truncated tails,
        compactions).  ``None`` allocates a private one.
    segment_bytes / snapshot_every:
        Segment roll threshold and snapshot cadence; ``None`` reads
        the ``$REPRO_RUNTIME_STORE_*`` knobs.
    """

    def __init__(
        self,
        root: "str | os.PathLike",
        *,
        label: str = "store",
        health=None,
        segment_bytes: "int | None" = None,
        snapshot_every: "int | None" = None,
    ) -> None:
        if not str(root):
            raise ConfigurationError("store root must be non-empty")
        from repro.runtime.cache import StoreHealth  # circular-safe

        self.root = Path(root)
        self.label = label
        self.health = health if health is not None else StoreHealth()
        self.segment_bytes = (
            default_segment_bytes() if segment_bytes is None else int(segment_bytes)
        )
        self.snapshot_every = (
            default_snapshot_every() if snapshot_every is None else int(snapshot_every)
        )
        if self.segment_bytes < 1 or self.snapshot_every < 1:
            raise ConfigurationError(
                "segment_bytes and snapshot_every must be >= 1"
            )
        self._mutex = threading.RLock()
        self._lock_fh = None
        self._lock_depth = 0
        self._opened = False
        self._generation = 0
        self._next_seq = 0
        self._active: "str | None" = None
        self._write_fh = None
        self._read_fhs: "dict[str, object]" = {}
        #: key -> RecordLocation, or None for a tombstoned key.
        self._entries: "dict[str, RecordLocation | None]" = {}
        #: segment name -> bytes scanned/validated so far.
        self._segments: "dict[str, int]" = {}
        self._dirty_puts = 0

    # -- paths -----------------------------------------------------------------

    @property
    def segments_dir(self) -> Path:
        return self.root / SEGMENTS_DIR

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    def _segment_path(self, name: str) -> Path:
        return self.segments_dir / name

    # -- locking ---------------------------------------------------------------

    @contextmanager
    def _locked(self):
        """Exclusive cross-process + cross-thread section (re-entrant)."""
        with self._mutex:
            self._lock_depth += 1
            try:
                if (
                    self._lock_depth == 1
                    and self._lock_fh is not None
                    and fcntl is not None
                ):
                    fcntl.flock(self._lock_fh.fileno(), fcntl.LOCK_EX)
                yield
            finally:
                self._lock_depth -= 1
                if (
                    self._lock_depth == 0
                    and self._lock_fh is not None
                    and fcntl is not None
                ):
                    fcntl.flock(self._lock_fh.fileno(), fcntl.LOCK_UN)

    # -- open / recovery -------------------------------------------------------

    def _ensure_open(self, create: bool) -> bool:
        """Open (and recover) the store; ``False`` if nothing exists yet."""
        if self._opened:
            return True
        with self._mutex:
            if self._opened:
                return True
            exists = self.segments_dir.is_dir() or self.index_path.exists()
            if not exists and not create:
                return False
            self._open(create=True)
            return True

    def _open(self, create: bool) -> None:
        if create:
            self.segments_dir.mkdir(parents=True, exist_ok=True)
        self._lock_fh = open(self.root / LOCK_NAME, "a+b")
        self._opened = True
        with self._locked():
            self._load_state()

    def _reopen(self) -> None:
        """Drop all in-memory state and recover from disk (under lock)."""
        self._close_handles()
        self._entries = {}
        self._segments = {}
        self._load_state()

    def _close_handles(self) -> None:
        if self._write_fh is not None:
            try:
                self._write_fh.close()
            except OSError:  # pragma: no cover - close of dying handle
                pass
            self._write_fh = None
        for handle in self._read_fhs.values():
            try:
                handle.close()
            except OSError:  # pragma: no cover
                pass
        self._read_fhs = {}
        self._active = None

    def _load_state(self) -> None:
        """Load the snapshot, reconcile segments, recover the tail."""
        snapshot = self._read_snapshot()
        on_disk = self._list_segments()
        if snapshot is None:
            # Lost/torn/absent index: rebuild everything from segments,
            # oldest generation first so the newest write of a key wins.
            self._generation = max((g for g, _ in on_disk.values()), default=0)
            self._entries = {}
            committed: "dict[str, int]" = {}
            rebuilt = True
        else:
            self._generation = snapshot["generation"]
            committed = snapshot["segments"]
            self._entries = snapshot["entries"]
            rebuilt = False
        recovered_before = self.health.recovered
        for name in sorted(on_disk, key=lambda n: on_disk[n]):
            generation, _ = on_disk[name]
            if not rebuilt and generation != self._generation:
                # Another generation's segment can only be compaction
                # residue (crashed before publish, or before cleanup):
                # every committed record lives in the indexed
                # generation, so the orphan is safe to discard.
                self._discard_segment(name)
                continue
            start = committed.get(name, 0)
            self._scan_segment(name, start)
        if rebuilt and on_disk:
            # Index was rebuilt by a full scan; records it re-indexed
            # are "recovered" only in the bookkeeping sense — surface
            # the rebuild itself to the tracer.
            self._trace_event(
                "index_rebuild",
                recovered=self.health.recovered - recovered_before,
            )
        # Resume appends on the newest segment of the live generation.
        live = [
            name
            for name in self._segments
            if _parse_segment_name(name)
            and _parse_segment_name(name)[0] == self._generation
        ]
        if live:
            newest = max(live, key=lambda n: _parse_segment_name(n)[1])
            self._next_seq = _parse_segment_name(newest)[1] + 1
            if self._segments[newest] < self.segment_bytes:
                self._active = newest
        else:
            self._next_seq = 0

    def _read_snapshot(self) -> "dict | None":
        try:
            payload = json.loads(self.index_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # A torn or unreadable snapshot is recoverable state, not an
            # error: fall back to the full rebuild scan.
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema_version") != STORE_SCHEMA_VERSION
            or not isinstance(payload.get("entries"), dict)
            or not isinstance(payload.get("segments"), dict)
        ):
            return None
        entries: "dict[str, RecordLocation | None]" = {}
        for key, loc in payload["entries"].items():
            if loc is None:
                entries[key] = None
            elif (
                isinstance(loc, list)
                and len(loc) == 3
                and isinstance(loc[0], str)
            ):
                entries[key] = RecordLocation(loc[0], int(loc[1]), int(loc[2]))
            else:
                return None  # malformed snapshot: rebuild
        return {
            "generation": int(payload.get("generation", 0)),
            "segments": {
                str(k): int(v) for k, v in payload["segments"].items()
            },
            "entries": entries,
        }

    def _list_segments(self) -> "dict[str, tuple[int, int]]":
        """``{name: (generation, seq)}`` for every segment on disk."""
        out: "dict[str, tuple[int, int]]" = {}
        if not self.segments_dir.is_dir():
            return out
        for path in self.segments_dir.iterdir():
            parsed = _parse_segment_name(path.name)
            if parsed is not None:
                out[path.name] = parsed
        return out

    def _discard_segment(self, name: str) -> None:
        handle = self._read_fhs.pop(name, None)
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover
                pass
        self._segment_path(name).unlink(missing_ok=True)
        self._segments.pop(name, None)

    def _scan_segment(self, name: str, start: int) -> None:
        """Re-index records in ``[start, EOF)``; truncate a torn tail.

        Caller holds the write lock.  Complete, CRC-valid records are
        published to the index (recovery of writes the snapshot never
        saw); a frame that runs past EOF or fails its CRC *at the tail*
        is truncated away; a full-frame CRC failure mid-segment (bit
        rot under a later valid record) is skipped and left for
        compaction to drop.
        """
        path = self._segment_path(name)
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            self._segments.pop(name, None)
            return
        if start >= size:
            self._segments[name] = size
            return
        recovered = 0
        with open(path, "rb") as handle:
            handle.seek(start)
            offset = start
            good_end = start
            while True:
                header = handle.read(HEADER_SIZE)
                if len(header) < HEADER_SIZE:
                    break  # torn tail (or clean EOF)
                magic, kind, key_len, value_len, crc = _HEADER.unpack(header)
                if magic != MAGIC or value_len > MAX_VALUE_BYTES:
                    break  # unrecognizable bytes: treat as torn tail
                body = handle.read(key_len + value_len)
                frame_end = offset + HEADER_SIZE + key_len + value_len
                if len(body) < key_len + value_len:
                    break  # frame runs past EOF: torn tail
                key = body[:key_len].decode(errors="replace")
                value = body[key_len:]
                if (
                    zlib.crc32(bytes([kind]) + body[:key_len] + value)
                    & 0xFFFFFFFF
                ) != crc:
                    if frame_end >= size:
                        break  # bad CRC at the tail: torn write
                    # Bad CRC mid-segment: framing is intact, so skip
                    # the rotted record and keep scanning.
                    offset = frame_end
                    good_end = frame_end
                    continue
                if kind == KIND_TOMBSTONE:
                    self._entries[key] = None
                elif kind == KIND_DATA:
                    self._entries[key] = RecordLocation(
                        name, offset, frame_end - offset
                    )
                    recovered += 1
                offset = frame_end
                good_end = frame_end
        if good_end < size:
            # Torn tail: drop it now so later appends (ours or another
            # writer's) never land after garbage.
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
            self.health.truncated += 1
            self._trace_event("torn_tail", segment=name, dropped=size - good_end)
        self._segments[name] = good_end
        self.health.recovered += recovered

    def _catch_up(self) -> None:
        """Absorb records other writers appended since our last look."""
        on_disk = self._list_segments()
        mine = set(self._segments)
        if mine and not any(
            generation == self._generation
            for generation, _ in on_disk.values()
        ) and on_disk:
            # Our whole generation vanished: another process compacted.
            self._reopen()
            return
        for name in sorted(on_disk, key=lambda n: on_disk[n]):
            generation, _ = on_disk[name]
            if generation != self._generation:
                continue
            self._scan_segment(name, self._segments.get(name, 0))

    # -- tracing ---------------------------------------------------------------

    def _trace_event(self, name: str, **attrs) -> None:
        tracer = current_tracer()
        if tracer is not None:
            tracer.event(name, "store", store=self.label, **attrs)
            tracer.metrics.inc(f"store.{name}")

    # -- write path ------------------------------------------------------------

    def _active_handle(self):
        if self._active is None:
            name = _segment_name(self._generation, self._next_seq)
            self._next_seq += 1
            self._segment_path(name).touch()
            self._segments.setdefault(name, 0)
            self._active = name
            self._write_fh = None
        if self._write_fh is None:
            self._write_fh = open(
                self._segment_path(self._active), "ab", buffering=0
            )
        return self._write_fh

    def _roll(self) -> None:
        if self._write_fh is not None:
            os.fsync(self._write_fh.fileno())
            self._write_fh.close()
            self._write_fh = None
        self._active = None

    def _append(self, kind: int, key: str, value: bytes, torn: str = "") -> RecordLocation:
        """Append one record under the lock; returns its location.

        ``torn`` injects corruption: ``"tail"`` writes only the first
        half of the frame and leaves it unindexed (the writer died
        mid-``write``); ``"value"`` writes a full-length frame whose
        value bytes are zeroed past the midpoint (framing intact, CRC
        broken — bit rot / a torn store-level write), still indexed so
        the next read quarantines it.
        """
        with self._locked():
            handle = self._active_handle()
            path = self._segment_path(self._active)
            try:
                offset = os.stat(path).st_size
            except FileNotFoundError:
                # Another process compacted our active segment away.
                self._reopen()
                handle = self._active_handle()
                path = self._segment_path(self._active)
                offset = os.stat(path).st_size
            if offset > self._segments.get(self._active, 0):
                # Another writer appended behind our back: absorb its
                # records so our next snapshot covers them.
                self._scan_segment(self._active, self._segments.get(self._active, 0))
                offset = os.stat(path).st_size
            if offset >= self.segment_bytes:
                self._roll()
                self._write_snapshot()
                handle = self._active_handle()
                path = self._segment_path(self._active)
                offset = 0
            name = self._active
            frame = _frame(kind, key, value)
            if torn == "tail":
                handle.write(frame[: max(1, len(frame) // 2)])
                # The "writer" died here: nothing indexed, and the next
                # append must not land after the garbage tail.
                self._roll()
                return RecordLocation(name, offset, len(frame))
            if torn == "value":
                body = bytearray(frame)
                half = HEADER_SIZE + (len(frame) - HEADER_SIZE) // 2
                for i in range(half, len(frame)):
                    body[i] = 0
                frame = bytes(body)
            handle.write(frame)
            location = RecordLocation(name, offset, len(frame))
            if kind == KIND_TOMBSTONE:
                self._entries[key] = None
            else:
                self._entries[key] = location
            self._segments[name] = offset + len(frame)
            self._dirty_puts += 1
            if self._dirty_puts >= self.snapshot_every:
                self._write_snapshot()
            return location

    def put(self, key: str, value: bytes, *, corrupt: bool = False) -> Path:
        """Store ``value`` under ``key`` (last writer wins).

        ``corrupt=True`` is the fault-injection hook used by the
        store wrappers' ``cache:<key>`` / ``checkpoint:<key>`` torn
        labels.  Returns the segment path the record landed in.
        """
        self._ensure_open(create=True)
        torn = "value" if corrupt else ""
        if not corrupt:
            plan = active_plan()
            if plan is not None:
                # The label names the segment the write starts on (the
                # active one, or the one the next append will create).
                with self._mutex:
                    name = self._active or _segment_name(
                        self._generation, self._next_seq
                    )
                if plan.tear("segment", name):
                    torn = "tail"
        location = self._append(KIND_DATA, key, value, torn=torn)
        return self._segment_path(location.segment)

    def quarantine(self, key: str) -> None:
        """Tombstone a corrupt entry and count it (PR 6 semantics)."""
        if not self._ensure_open(create=False):
            return
        self._append(KIND_TOMBSTONE, key, b"")
        self.health.quarantined += 1
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.inc("store.quarantined")
            tracer.event("quarantine", "store", store=self.label, key=key)

    def delete(self, key: str) -> bool:
        """Tombstone ``key`` (no health tick); ``True`` if it was live."""
        if not self._ensure_open(create=False):
            return False
        live = self._entries.get(key) is not None
        if live:
            self._append(KIND_TOMBSTONE, key, b"")
        return live

    # -- snapshot --------------------------------------------------------------

    def _write_snapshot(self) -> None:
        """Publish the index (record fsync strictly before the rename)."""
        with self._locked():
            self._catch_up()
            if self._write_fh is not None:
                os.fsync(self._write_fh.fileno())
            payload = {
                "schema_version": STORE_SCHEMA_VERSION,
                "label": self.label,
                "generation": self._generation,
                "segments": dict(sorted(self._segments.items())),
                "entries": {
                    key: (list(loc) if loc is not None else None)
                    for key, loc in sorted(self._entries.items())
                },
            }
            text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            plan = active_plan()
            if plan is not None and plan.tear("index", self.label):
                # Injected torn snapshot: the index lands unparseable,
                # forcing the next open into the full rebuild scan.
                text = text[: max(1, len(text) // 2)]
            tmp = self.index_path.with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.index_path)
            self._dirty_puts = 0

    def flush(self) -> None:
        """fsync the active segment and publish an index snapshot."""
        if not self._ensure_open(create=False):
            return
        self._write_snapshot()

    def close(self) -> None:
        """Flush and release every file handle (the store stays usable)."""
        if not self._opened:
            return
        self._write_snapshot()
        with self._mutex:
            self._close_handles()
            if self._lock_fh is not None:
                self._lock_fh.close()
                self._lock_fh = None
            self._opened = False

    def refresh(self) -> None:
        """Absorb other writers' records without writing anything."""
        if not self._ensure_open(create=False):
            return
        with self._locked():
            self._catch_up()

    # -- read path -------------------------------------------------------------

    def _read_handle(self, name: str):
        handle = self._read_fhs.get(name)
        if handle is None:
            handle = open(self._segment_path(name), "rb")
            self._read_fhs[name] = handle
        return handle

    def get(self, key: str) -> "bytes | None":
        """The committed value for ``key`` or ``None``.

        A record that fails its CRC or carries the wrong key is
        tombstoned + counted (:meth:`quarantine`) and reported as a
        miss: one recompute, never a wrong number.
        """
        if not self._ensure_open(create=False):
            return None
        with self._mutex:
            location = self._entries.get(key)
        if location is None:
            return None
        value = self._read_location(key, location)
        if value is None:
            self.quarantine(key)
        return value

    def _read_location(self, key: str, location: RecordLocation) -> "bytes | None":
        for attempt in (0, 1):
            try:
                with self._mutex:
                    handle = self._read_handle(location.segment)
                    handle.seek(location.offset)
                    raw = handle.read(location.length)
            except FileNotFoundError:
                # Segment vanished under us (another process compacted):
                # recover once, then re-resolve the key.
                if attempt:
                    return None
                with self._locked():
                    self._reopen()
                with self._mutex:
                    location = self._entries.get(key)
                if location is None:
                    return None
                continue
            break
        if len(raw) < HEADER_SIZE:
            return None
        magic, kind, key_len, value_len, crc = _HEADER.unpack(
            raw[:HEADER_SIZE]
        )
        if (
            magic != MAGIC
            or kind != KIND_DATA
            or HEADER_SIZE + key_len + value_len != len(raw)
        ):
            return None
        body = raw[HEADER_SIZE:]
        if (zlib.crc32(bytes([kind]) + body) & 0xFFFFFFFF) != crc:
            return None
        if body[:key_len].decode(errors="replace") != key:
            return None
        return body[key_len:]

    def contains(self, key: str) -> bool:
        """Whether ``key`` is indexed (live *or* tombstoned)."""
        if not self._ensure_open(create=False):
            return False
        with self._mutex:
            return key in self._entries

    def keys(self) -> "list[str]":
        """Sorted live keys (tombstoned ones excluded) — no dir scan."""
        if not self._ensure_open(create=False):
            return []
        with self._mutex:
            return sorted(
                key for key, loc in self._entries.items() if loc is not None
            )

    def __len__(self) -> int:
        if not self._ensure_open(create=False):
            return 0
        with self._mutex:
            return sum(1 for loc in self._entries.values() if loc is not None)

    # -- compaction ------------------------------------------------------------

    def compact(self, live_keys=None) -> int:
        """Copy live records forward; drop everything else atomically.

        ``live_keys`` restricts survival to the given keys (the
        ``prune`` contract); ``None`` keeps every live key and just
        drops tombstones and dead record versions.  Returns the number
        of live entries dropped because they were *not* in
        ``live_keys``.  The new index snapshot's rename is the commit
        point; a crash on either side leaves an openable store.
        """
        if not self._ensure_open(create=False):
            return 0
        live = None if live_keys is None else set(live_keys)
        tracer = current_tracer()
        span = (
            tracer.span("store.compact", "store", store=self.label)
            if tracer is not None
            else None
        )
        with span if span is not None else _nullcontext():
            dropped = self._compact(live)
        self.health.compactions += 1
        if tracer is not None:
            tracer.metrics.inc("store.compactions")
        return dropped

    def _compact(self, live: "set | None") -> int:
        with self._locked():
            self._catch_up()
            self._roll()
            old_segments = list(self._segments)
            new_generation = self._generation + 1
            dropped = 0
            new_entries: "dict[str, RecordLocation | None]" = {}
            new_segments: "dict[str, int]" = {}
            seq = 0
            out_name = None
            out_fh = None
            out_offset = 0
            try:
                for key in sorted(self._entries):
                    location = self._entries[key]
                    if location is None:
                        continue  # tombstone: compacted away
                    if live is not None and key not in live:
                        dropped += 1
                        continue
                    value = self._read_location(key, location)
                    if value is None:
                        # Corrupt record discovered during compaction:
                        # same contract as a get — tombstone-equivalent
                        # (simply not copied) and counted.
                        self.health.quarantined += 1
                        continue
                    frame = _frame(KIND_DATA, key, value)
                    if out_fh is None or out_offset >= self.segment_bytes:
                        if out_fh is not None:
                            os.fsync(out_fh.fileno())
                            out_fh.close()
                        out_name = _segment_name(new_generation, seq)
                        seq += 1
                        out_fh = open(
                            self._segment_path(out_name), "wb", buffering=0
                        )
                        out_offset = 0
                        new_segments[out_name] = 0
                    out_fh.write(frame)
                    new_entries[key] = RecordLocation(
                        out_name, out_offset, len(frame)
                    )
                    out_offset += len(frame)
                    new_segments[out_name] = out_offset
                if out_fh is not None:
                    os.fsync(out_fh.fileno())
                    out_fh.close()
                    out_fh = None
            finally:
                if out_fh is not None:  # pragma: no cover - error path
                    out_fh.close()
            # Publish: the rename of index.json is the commit point.
            self._generation = new_generation
            self._entries = new_entries
            self._segments = new_segments
            self._next_seq = seq
            self._active = None
            self._write_fh = None
            self._write_snapshot()
            # Only after the publish do the dead segments go away; a
            # crash before this point leaves them as discardable
            # orphans of a stale generation.
            for name in old_segments:
                self._discard_segment(name)
            return dropped


class _nullcontext:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


# -- migration -----------------------------------------------------------------


def migrate(root: "str | os.PathLike", kind: str = "auto") -> dict:
    """Migrate a legacy per-file store root into packed segments.

    ``kind`` is ``"cache"`` (``<key>.json`` result entries),
    ``"checkpoint"`` (``<key>.npz`` + ``<key>.json`` pairs), or
    ``"auto"`` (sniff: any ``.npz`` present means checkpoint).  Every
    readable legacy entry is absorbed into the packed store **through
    the same validation path ``get`` uses**, so results are
    byte-identical before and after; corrupt legacy entries are
    quarantined to ``<root>/quarantine/`` exactly as a legacy read
    would have.  Migrated source files are removed.  Returns a summary
    dict (``kind``, ``migrated``, ``quarantined``, ``remaining``).
    """
    from repro.runtime.cache import ResultCache
    from repro.runtime.checkpoints import CheckpointStore

    root = Path(root)
    if not root.is_dir():
        raise ConfigurationError(f"store root {str(root)!r} is not a directory")
    if kind == "auto":
        kind = (
            "checkpoint"
            if any(root.glob("*.npz"))
            else "cache"
        )
    if kind == "cache":
        store = ResultCache(root)
    elif kind == "checkpoint":
        store = CheckpointStore(root)
    else:
        raise ConfigurationError(
            f"unknown store kind {kind!r}; expected cache|checkpoint|auto"
        )
    legacy = store.legacy_keys()
    migrated = 0
    before = store.health.quarantined
    for key in legacy:
        if store.get(key) is not None:
            migrated += 1
    store.flush()
    return {
        "root": str(root),
        "kind": kind,
        "legacy_entries": len(legacy),
        "migrated": migrated,
        "quarantined": store.health.quarantined - before,
        "packed_entries": len(store),
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.store",
        description="packed segment store maintenance",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    mig = sub.add_parser(
        "migrate",
        help="pack a legacy per-file cache/checkpoint root into segments",
    )
    mig.add_argument("root", help="store root directory")
    mig.add_argument(
        "--kind",
        choices=("auto", "cache", "checkpoint"),
        default="auto",
        help="legacy layout to expect (default: sniff)",
    )
    args = parser.parse_args(argv)
    if args.command == "migrate":
        summary = migrate(args.root, kind=args.kind)
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys

    sys.exit(main())
