"""Content-addressed result store for completed experiment points.

Layout: one JSON file per task under the cache root, named by the task
key (sha256 of canonical spec + code version, see
:mod:`repro.runtime.hashing`):

    <root>/<key>.json   ->   {"schema_version": 1, "key": ..., "spec": ...,
                              "result": ...}

Because the key embeds the code version, a library change silently
invalidates every entry (old files are simply never addressed again);
``prune`` removes unaddressable leftovers.  Writes are atomic
(write-to-temp + rename), so a crashed run leaves a resumable cache:
the next run reuses every completed point and recomputes only the rest.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "ResultCache",
    "default_cache_root",
    "sweep_stale_tmp",
    "sweep_stale_tmp_once",
]

SCHEMA_VERSION = 1

#: Environment variable overriding the default cache location.
CACHE_ENV = "REPRO_RUNTIME_CACHE"


def _tmp_writer_alive(path: Path) -> bool:
    """Whether the pid embedded in a ``<stem>.tmp.<pid>[...]`` name is live.

    Write-temp files carry their writer's pid precisely so concurrent
    processes sharing one store never collide; a sweep must therefore
    only remove files whose writer is gone (crashed), never one that is
    mid-``put``.  Unparseable names count as dead (sweepable).
    """
    parts = path.name.split(".tmp.")
    if len(parts) != 2:
        return False
    try:
        pid = int(parts[1].split(".")[0])
    except ValueError:
        return False
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, PermissionError):  # pragma: no cover - exists, not ours
        return True
    return True


#: Temp files younger than this are never swept: their pid may belong
#: to a writer on *another host* sharing the store root (NFS scratch),
#: where local liveness checks say nothing.  Real writes finish in
#: milliseconds, so any genuinely in-flight file is far younger.
STALE_TMP_GRACE_S = 300.0


def sweep_stale_tmp(root: Path, pattern: str = "*.tmp.*") -> int:
    """Remove crashed writers' ``*.tmp.*`` leftovers under ``root``.

    Shared by :class:`ResultCache` and
    :class:`~repro.runtime.checkpoints.CheckpointStore`.  A file is
    only removed when it is both older than :data:`STALE_TMP_GRACE_S`
    (so a concurrent writer on another host is safe) and its pid names
    no locally running process (so a stuck local writer is safe).
    """
    import time

    removed = 0
    if not root.is_dir():
        return removed
    now = time.time()
    for stale in root.glob(pattern):
        try:
            age = now - stale.stat().st_mtime
        except OSError:
            continue  # vanished under us: someone else swept it
        if age < STALE_TMP_GRACE_S or _tmp_writer_alive(stale):
            continue
        stale.unlink(missing_ok=True)
        removed += 1
    return removed


_SWEPT_ROOTS: "set[str]" = set()


def sweep_stale_tmp_once(root: Path) -> int:
    """First-write sweep: clear a root's crash leftovers once per process.

    ``put`` hot paths call this instead of scanning the directory on
    every write — leftovers only appear when a *previous* process died
    mid-write, so one sweep per (process, root) recovers them without
    O(entries) work per stored result.  ``prune`` still sweeps
    unconditionally.
    """
    resolved = os.path.abspath(str(root))
    if resolved in _SWEPT_ROOTS:
        return 0
    _SWEPT_ROOTS.add(resolved)
    return sweep_stale_tmp(root)


def default_cache_root(fallback: "str | None" = None) -> str:
    """$REPRO_RUNTIME_CACHE, else ``fallback``, else the in-repo default.

    The benchmarks pass their results directory as ``fallback`` so the
    environment variable can redirect the cache (e.g. to scratch
    storage) without editing any bench.
    """
    configured = os.environ.get(CACHE_ENV)
    if configured:
        return configured
    if fallback is not None:
        return fallback
    return os.path.join("benchmarks", "results", "runtime_cache")


class ResultCache:
    """A directory of content-addressed task results."""

    def __init__(self, root: "str | os.PathLike") -> None:
        if not str(root):
            raise ConfigurationError("cache root must be non-empty")
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str):
        """The cached result for ``key``, or ``None`` on miss/corruption."""
        path = self.path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None
        return payload.get("result")

    def put(self, key: str, spec, result) -> Path:
        """Store one completed point (atomic write; last writer wins)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "spec": spec,
            "result": result,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        # A writer that crashed between write_text and os.replace leaves
        # its temp file behind; the first put per (process, root)
        # sweeps dead writers' leftovers — live pids, including our own
        # in-flight files, are never touched.
        sweep_stale_tmp_once(self.root)
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        os.replace(tmp, path)
        return path

    def keys(self) -> "list[str]":
        """Keys of every entry currently on disk (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def prune(self, live_keys) -> int:
        """Delete entries not in ``live_keys``; returns how many went.

        Also sweeps leftover ``*.tmp.*`` write-temp files — the residue
        of writers that crashed mid-:meth:`put`, which no key ever
        addresses again.  Temp files of still-running writers survive.
        """
        live = set(live_keys)
        removed = 0
        for key in self.keys():
            if key not in live:
                self.path(key).unlink(missing_ok=True)
                removed += 1
        return removed + sweep_stale_tmp(self.root)
