"""Content-addressed result store for completed experiment points.

Layout: one JSON file per task under the cache root, named by the task
key (sha256 of canonical spec + code version, see
:mod:`repro.runtime.hashing`):

    <root>/<key>.json   ->   {"schema_version": 1, "key": ..., "spec": ...,
                              "result": ...}

Because the key embeds the code version, a library change silently
invalidates every entry (old files are simply never addressed again);
``prune`` removes unaddressable leftovers.  Writes are atomic
(write-to-temp + rename), so a crashed run leaves a resumable cache:
the next run reuses every completed point and recomputes only the rest.

Integrity: every entry records ``result_sha256`` (the canonical-JSON
digest of its result), and ``get`` verifies it.  An entry that is
unreadable, truncated, mis-keyed, or fails the digest check is
**quarantined** — moved to ``<root>/quarantine/`` and counted on the
store's :class:`StoreHealth` — and reported as a miss, so a torn or
bit-rotted file costs one recompute, never a wrong number and never an
aborted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.trace import current_tracer
from repro.runtime import knobs
from repro.runtime.faults import active_plan

__all__ = [
    "ResultCache",
    "StoreHealth",
    "default_cache_root",
    "quarantine_files",
    "result_digest",
    "sweep_stale_tmp",
    "sweep_stale_tmp_once",
]

SCHEMA_VERSION = 1

#: Subdirectory (of a store root) where corrupt entries are moved.
QUARANTINE_DIR = "quarantine"


@dataclass
class StoreHealth:
    """Fault counters for one store instance.

    ``quarantined`` counts corrupt entries moved aside (each cost one
    recompute); ``rehydrated`` counts payload spool files re-created
    after vanishing mid-run (:meth:`PayloadStore.spill`).
    """

    quarantined: int = 0
    rehydrated: int = 0

    def to_dict(self) -> dict:
        return {"quarantined": self.quarantined, "rehydrated": self.rehydrated}


def quarantine_files(root: Path, paths) -> int:
    """Move ``paths`` into ``<root>/quarantine/``; returns files moved.

    Corrupt store entries are moved aside rather than deleted so a
    post-mortem can inspect exactly what was on disk; the store glob
    patterns never descend into the subdirectory, so quarantined files
    are unaddressable.  Vanished files count as already gone.
    """
    moved = 0
    target_dir = root / QUARANTINE_DIR
    for path in paths:
        path = Path(path)
        if not path.exists():
            continue
        target_dir.mkdir(parents=True, exist_ok=True)
        os.replace(path, target_dir / path.name)
        moved += 1
    return moved


def result_digest(result) -> str:
    """Canonical-JSON sha256 of a cached result (integrity marker)."""
    text = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()

#: Environment variable overriding the default cache location
#: (canonical home: :mod:`repro.runtime.knobs`; re-exported here).
CACHE_ENV = knobs.CACHE_ENV


def _tmp_writer_alive(path: Path) -> bool:
    """Whether the pid embedded in a ``<stem>.tmp.<pid>[...]`` name is live.

    Write-temp files carry their writer's pid precisely so concurrent
    processes sharing one store never collide; a sweep must therefore
    only remove files whose writer is gone (crashed), never one that is
    mid-``put``.  Unparseable names count as dead (sweepable).
    """
    parts = path.name.split(".tmp.")
    if len(parts) != 2:
        return False
    try:
        pid = int(parts[1].split(".")[0])
    except ValueError:
        return False
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, PermissionError):  # pragma: no cover - exists, not ours
        return True
    return True


#: Temp files younger than this are never swept: their pid may belong
#: to a writer on *another host* sharing the store root (NFS scratch),
#: where local liveness checks say nothing.  Real writes finish in
#: milliseconds, so any genuinely in-flight file is far younger.
STALE_TMP_GRACE_S = 300.0


def sweep_stale_tmp(root: Path, pattern: str = "*.tmp.*") -> int:
    """Remove crashed writers' ``*.tmp.*`` leftovers under ``root``.

    Shared by :class:`ResultCache` and
    :class:`~repro.runtime.checkpoints.CheckpointStore`.  A file is
    only removed when it is both older than :data:`STALE_TMP_GRACE_S`
    (so a concurrent writer on another host is safe) and its pid names
    no locally running process (so a stuck local writer is safe).
    """
    import time

    removed = 0
    if not root.is_dir():
        return removed
    now = time.time()
    for stale in root.glob(pattern):
        try:
            age = now - stale.stat().st_mtime
        except OSError:
            continue  # vanished under us: someone else swept it
        if age < STALE_TMP_GRACE_S or _tmp_writer_alive(stale):
            continue
        stale.unlink(missing_ok=True)
        removed += 1
    return removed


_SWEPT_ROOTS: "set[str]" = set()
# ``put`` can run on executor callback threads, so the once-per-root
# bookkeeping needs a real guard rather than relying on GIL luck.
_SWEPT_LOCK = threading.Lock()


def sweep_stale_tmp_once(root: Path) -> int:
    """First-write sweep: clear a root's crash leftovers once per process.

    ``put`` hot paths call this instead of scanning the directory on
    every write — leftovers only appear when a *previous* process died
    mid-write, so one sweep per (process, root) recovers them without
    O(entries) work per stored result.  ``prune`` still sweeps
    unconditionally.
    """
    resolved = os.path.abspath(str(root))
    with _SWEPT_LOCK:
        if resolved in _SWEPT_ROOTS:
            return 0
        _SWEPT_ROOTS.add(resolved)
    return sweep_stale_tmp(root)


def default_cache_root(fallback: "str | None" = None) -> str:
    """$REPRO_RUNTIME_CACHE, else ``fallback``, else the in-repo default.

    The benchmarks pass their results directory as ``fallback`` so the
    environment variable can redirect the cache (e.g. to scratch
    storage) without editing any bench.
    """
    configured = knobs.read_knob(CACHE_ENV)
    if configured:
        return configured
    if fallback is not None:
        return fallback
    return os.path.join("benchmarks", "results", "runtime_cache")


class ResultCache:
    """A directory of content-addressed task results."""

    def __init__(self, root: "str | os.PathLike") -> None:
        if not str(root):
            raise ConfigurationError("cache root must be non-empty")
        self.root = Path(root)
        self.health = StoreHealth()

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _quarantine(self, key: str):
        """Move a corrupt entry aside and report the miss."""
        self.health.quarantined += quarantine_files(self.root, [self.path(key)])
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.inc("store.quarantined")
            tracer.event("quarantine", "store", store="cache", key=key)
        return None

    def get(self, key: str):
        """The cached result for ``key``, or ``None`` on miss.

        A present-but-corrupt entry (unreadable, truncated JSON, wrong
        key, failed ``result_sha256`` check) is quarantined and counts
        on :attr:`health`; the caller just sees a miss and recomputes.
        """
        tracer = current_tracer()
        if tracer is None:
            return self._get(key)
        with tracer.span("cache.get", "store", key=key) as span:
            result = self._get(key)
            hit = result is not None
            span.attrs["hit"] = hit
            tracer.metrics.inc("cache.hits" if hit else "cache.misses")
            return result

    def _get(self, key: str):
        path = self.path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return self._quarantine(key)
        try:
            payload = json.loads(text)
        except ValueError:
            return self._quarantine(key)
        if not isinstance(payload, dict) or payload.get("key") != key:
            return self._quarantine(key)
        result = payload.get("result")
        recorded = payload.get("result_sha256")
        if recorded is not None and recorded != result_digest(result):
            return self._quarantine(key)
        return result

    def put(self, key: str, spec, result) -> Path:
        """Store one completed point (atomic write; last writer wins)."""
        tracer = current_tracer()
        if tracer is None:
            return self._put(key, spec, result)
        with tracer.span("cache.put", "store", key=key):
            tracer.metrics.inc("cache.puts")
            return self._put(key, spec, result)

    def _put(self, key: str, spec, result) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "spec": spec,
            "result": result,
            "result_sha256": result_digest(result),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        # A writer that crashed between write_text and os.replace leaves
        # its temp file behind; the first put per (process, root)
        # sweeps dead writers' leftovers — live pids, including our own
        # in-flight files, are never touched.
        sweep_stale_tmp_once(self.root)
        text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        plan = active_plan()
        if plan is not None and plan.tear("cache", key):
            # Injected torn write: the entry lands truncated, exactly as
            # if the writer died mid-write after the rename was queued.
            text = text[: max(1, len(text) // 2)]
        tmp.write_text(text)
        os.replace(tmp, path)
        return path

    def keys(self) -> "list[str]":
        """Keys of every entry currently on disk (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def prune(self, live_keys) -> int:
        """Delete entries not in ``live_keys``; returns how many went.

        Also sweeps leftover ``*.tmp.*`` write-temp files — the residue
        of writers that crashed mid-:meth:`put`, which no key ever
        addresses again.  Temp files of still-running writers survive.
        """
        live = set(live_keys)
        removed = 0
        for key in self.keys():
            if key not in live:
                self.path(key).unlink(missing_ok=True)
                removed += 1
        return removed + sweep_stale_tmp(self.root)
