"""Content-addressed result store for completed experiment points.

Layout: one JSON file per task under the cache root, named by the task
key (sha256 of canonical spec + code version, see
:mod:`repro.runtime.hashing`):

    <root>/<key>.json   ->   {"schema_version": 1, "key": ..., "spec": ...,
                              "result": ...}

Because the key embeds the code version, a library change silently
invalidates every entry (old files are simply never addressed again);
``prune`` removes unaddressable leftovers.  Writes are atomic
(write-to-temp + rename), so a crashed run leaves a resumable cache:
the next run reuses every completed point and recomputes only the rest.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["ResultCache", "default_cache_root"]

SCHEMA_VERSION = 1

#: Environment variable overriding the default cache location.
CACHE_ENV = "REPRO_RUNTIME_CACHE"


def default_cache_root(fallback: "str | None" = None) -> str:
    """$REPRO_RUNTIME_CACHE, else ``fallback``, else the in-repo default.

    The benchmarks pass their results directory as ``fallback`` so the
    environment variable can redirect the cache (e.g. to scratch
    storage) without editing any bench.
    """
    configured = os.environ.get(CACHE_ENV)
    if configured:
        return configured
    if fallback is not None:
        return fallback
    return os.path.join("benchmarks", "results", "runtime_cache")


class ResultCache:
    """A directory of content-addressed task results."""

    def __init__(self, root: "str | os.PathLike") -> None:
        if not str(root):
            raise ConfigurationError("cache root must be non-empty")
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str):
        """The cached result for ``key``, or ``None`` on miss/corruption."""
        path = self.path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None
        return payload.get("result")

    def put(self, key: str, spec, result) -> Path:
        """Store one completed point (atomic write; last writer wins)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "spec": spec,
            "result": result,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        os.replace(tmp, path)
        return path

    def keys(self) -> "list[str]":
        """Keys of every entry currently on disk (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def prune(self, live_keys) -> int:
        """Delete entries not in ``live_keys``; returns how many went."""
        live = set(live_keys)
        removed = 0
        for key in self.keys():
            if key not in live:
                self.path(key).unlink(missing_ok=True)
                removed += 1
        return removed
