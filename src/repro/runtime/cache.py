"""Content-addressed result store for completed experiment points.

Entries are keyed by the task key (sha256 of canonical spec + code
version, see :mod:`repro.runtime.hashing`) and persisted through the
crash-safe packed segment store (:mod:`repro.runtime.store`): CRC-framed
records appended to bounded segment files under ``<root>/segments/``,
with an atomic index snapshot at ``<root>/index.json``.  ``get``/``put``
are O(1) — no directory scans, no per-entry files — which is what keeps
the interrupted-run resume guarantee affordable at 10^5-10^6 cached
rounds.

Because the key embeds the code version, a library change silently
invalidates every entry (old records are simply never addressed again);
``prune`` compacts them away.  The packed commit protocol guarantees a
crashed run leaves a resumable cache: on the next open a torn tail is
truncated (never served) and every committed record is recovered, so the
next run reuses every completed point and recomputes only the rest.

Integrity: every entry records ``result_sha256`` (the canonical-JSON
digest of its result), and ``get`` verifies it on top of the record
CRC.  An entry that is truncated, mis-keyed, or fails either check is
**quarantined** — tombstoned in the packed store and counted on
:class:`StoreHealth` — and reported as a miss, so a torn or bit-rotted
record costs one recompute, never a wrong number and never an aborted
run.

Legacy layout: roots written by older versions hold one
``<key>.json`` file per entry.  ``get`` transparently absorbs such a
file into the packed store on first touch (validating it exactly as the
legacy reader did, quarantining corrupt files to ``<root>/quarantine/``),
and ``python -m repro.runtime.store migrate <root>`` packs a whole root
in one shot.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.trace import current_tracer
from repro.runtime import knobs

__all__ = [
    "ResultCache",
    "StoreHealth",
    "default_cache_root",
    "quarantine_files",
    "result_digest",
    "sweep_stale_tmp",
    "sweep_stale_tmp_once",
]

SCHEMA_VERSION = 1

#: Subdirectory (of a store root) where corrupt legacy entries are moved.
QUARANTINE_DIR = "quarantine"


@dataclass
class StoreHealth:
    """Fault counters for one store instance.

    ``quarantined`` counts corrupt entries tombstoned or moved aside
    (each cost one recompute); ``rehydrated`` counts payload spool
    files re-created after vanishing mid-run
    (:meth:`PayloadStore.spill`); ``recovered`` counts committed
    records the packed store re-indexed from segment tails or a full
    rebuild scan; ``truncated`` counts torn segment tails dropped by
    recovery; ``compactions`` counts compaction runs.
    """

    quarantined: int = 0
    rehydrated: int = 0
    recovered: int = 0
    truncated: int = 0
    compactions: int = 0

    def to_dict(self) -> dict:
        return {
            "quarantined": self.quarantined,
            "rehydrated": self.rehydrated,
            "recovered": self.recovered,
            "truncated": self.truncated,
            "compactions": self.compactions,
        }


def quarantine_files(root: Path, paths) -> int:
    """Move ``paths`` into ``<root>/quarantine/``; returns files moved.

    Corrupt legacy store entries are moved aside rather than deleted so
    a post-mortem can inspect exactly what was on disk; the store never
    addresses the subdirectory, so quarantined files are unreachable.
    Vanished files count as already gone.
    """
    moved = 0
    target_dir = root / QUARANTINE_DIR
    for path in paths:
        path = Path(path)
        if not path.exists():
            continue
        target_dir.mkdir(parents=True, exist_ok=True)
        os.replace(path, target_dir / path.name)
        moved += 1
    return moved


def result_digest(result) -> str:
    """Canonical-JSON sha256 of a cached result (integrity marker)."""
    text = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()

#: Environment variable overriding the default cache location
#: (canonical home: :mod:`repro.runtime.knobs`; re-exported here).
CACHE_ENV = knobs.CACHE_ENV


def _tmp_writer_alive(path: Path) -> bool:
    """Whether the pid embedded in a ``<stem>.tmp.<pid>[...]`` name is live.

    Write-temp files carry their writer's pid precisely so concurrent
    processes sharing one store never collide; a sweep must therefore
    only remove files whose writer is gone (crashed), never one that is
    mid-write.  Unparseable names count as dead (sweepable).
    """
    parts = path.name.split(".tmp.")
    if len(parts) != 2:
        return False
    try:
        pid = int(parts[1].split(".")[0])
    except ValueError:
        return False
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, PermissionError):  # pragma: no cover - exists, not ours
        return True
    return True


#: Temp files younger than this are never swept: their pid may belong
#: to a writer on *another host* sharing the store root (NFS scratch),
#: where local liveness checks say nothing.  Real writes finish in
#: milliseconds, so any genuinely in-flight file is far younger.
STALE_TMP_GRACE_S = 300.0


def sweep_stale_tmp(root: Path, pattern: str = "*.tmp.*") -> int:
    """Remove crashed writers' ``*.tmp.*`` leftovers under ``root``.

    Shared by the artifact writer (:mod:`repro.utils.artifacts`), the
    packed stores' legacy-root maintenance, and ``prune``.  A file is
    only removed when it is both older than :data:`STALE_TMP_GRACE_S`
    (so a concurrent writer on another host is safe) and its pid names
    no locally running process (so a stuck local writer is safe).
    """
    import time

    removed = 0
    if not root.is_dir():
        return removed
    now = time.time()
    for stale in root.glob(pattern):
        try:
            age = now - stale.stat().st_mtime
        except OSError:
            continue  # vanished under us: someone else swept it
        if age < STALE_TMP_GRACE_S or _tmp_writer_alive(stale):
            continue
        stale.unlink(missing_ok=True)
        removed += 1
    return removed


_SWEPT_ROOTS: "set[str]" = set()
# ``put`` can run on executor callback threads, so the once-per-root
# bookkeeping needs a real guard rather than relying on GIL luck.
_SWEPT_LOCK = threading.Lock()


def sweep_stale_tmp_once(root: Path) -> int:
    """First-write sweep: clear a root's crash leftovers once per process.

    Hot paths call this instead of scanning the directory on every
    write — leftovers only appear when a *previous* process died
    mid-write, so one sweep per (process, root) recovers them without
    O(entries) work per stored result.  ``prune`` still sweeps
    unconditionally.
    """
    resolved = os.path.abspath(str(root))
    with _SWEPT_LOCK:
        if resolved in _SWEPT_ROOTS:
            return 0
        _SWEPT_ROOTS.add(resolved)
    return sweep_stale_tmp(root)


def default_cache_root(fallback: "str | None" = None) -> str:
    """$REPRO_RUNTIME_CACHE, else ``fallback``, else the in-repo default.

    The benchmarks pass their results directory as ``fallback`` so the
    environment variable can redirect the cache (e.g. to scratch
    storage) without editing any bench.
    """
    configured = knobs.read_knob(CACHE_ENV)
    if configured:
        return configured
    if fallback is not None:
        return fallback
    return os.path.join("benchmarks", "results", "runtime_cache")


class ResultCache:
    """A packed, content-addressed store of task results."""

    #: Fault-injection label for torn writes (``torn,cache:<key>``).
    STORE_LABEL = "cache"

    def __init__(self, root: "str | os.PathLike") -> None:
        from repro.runtime.store import SegmentStore

        if not str(root):
            raise ConfigurationError("cache root must be non-empty")
        self.root = Path(root)
        self.health = StoreHealth()
        self._store = SegmentStore(
            self.root, label=self.STORE_LABEL, health=self.health
        )

    def path(self, key: str) -> Path:
        """The *legacy* per-file location for ``key`` (one file per
        entry, the pre-packed layout); used by the lazy migration path
        and tests that seed legacy roots."""
        return self.root / f"{key}.json"

    def _encode(self, key: str, spec, result) -> bytes:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "spec": spec,
            "result": result,
            "result_sha256": result_digest(result),
        }
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode()

    def _decode(self, key: str, raw: bytes):
        """The validated result in ``raw``, or ``None`` if corrupt."""
        try:
            payload = json.loads(raw.decode())
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None
        result = payload.get("result")
        recorded = payload.get("result_sha256")
        if recorded is not None and recorded != result_digest(result):
            return None
        return result

    def get(self, key: str):
        """The cached result for ``key``, or ``None`` on miss.

        A present-but-corrupt entry (CRC failure, wrong key, failed
        ``result_sha256`` check) is quarantined — tombstoned and
        counted on :attr:`health` — and the caller just sees a miss
        and recomputes.
        """
        tracer = current_tracer()
        if tracer is None:
            return self._get(key)
        with tracer.span("cache.get", "store", key=key) as span:
            result = self._get(key)
            hit = result is not None
            span.attrs["hit"] = hit
            tracer.metrics.inc("cache.hits" if hit else "cache.misses")
            return result

    def _get(self, key: str):
        raw = self._store.get(key)
        if raw is not None:
            result = self._decode(key, raw)
            if result is None:
                # Record bytes were intact (CRC passed) but the payload
                # fails validation — same contract: tombstone + miss.
                self._store.quarantine(key)
            return result
        if self._store.contains(key):
            # Tombstoned (just quarantined, or quarantined earlier):
            # a clean miss; never resurrect from a stale legacy file.
            return None
        return self._legacy_get(key)

    def _legacy_get(self, key: str):
        """Absorb a legacy per-file entry into the packed store."""
        path = self.path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return self._quarantine_legacy(key)
        try:
            payload = json.loads(text)
        except ValueError:
            return self._quarantine_legacy(key)
        if not isinstance(payload, dict) or payload.get("key") != key:
            return self._quarantine_legacy(key)
        result = payload.get("result")
        recorded = payload.get("result_sha256")
        if recorded is not None and recorded != result_digest(result):
            return self._quarantine_legacy(key)
        # Lazy migration: pack the entry, then retire the legacy file.
        self._store.put(key, self._encode(key, payload.get("spec"), result))
        path.unlink(missing_ok=True)
        return result

    def _quarantine_legacy(self, key: str):
        """Move a corrupt legacy entry aside and report the miss."""
        self.health.quarantined += quarantine_files(self.root, [self.path(key)])
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.inc("store.quarantined")
            tracer.event("quarantine", "store", store="cache", key=key)
        return None

    def put(self, key: str, spec, result) -> Path:
        """Store one completed point (atomic append; last writer wins)."""
        tracer = current_tracer()
        if tracer is None:
            return self._put(key, spec, result)
        with tracer.span("cache.put", "store", key=key):
            tracer.metrics.inc("cache.puts")
            return self._put(key, spec, result)

    def _put(self, key: str, spec, result) -> Path:
        from repro.runtime.faults import active_plan

        # First write into a root clears crashed legacy writers'
        # *.tmp.* leftovers; later puts skip the directory scan.
        sweep_stale_tmp_once(self.root)
        plan = active_plan()
        # Injected torn write: the record lands with a broken CRC,
        # exactly as if the writer died mid-write after the index
        # publish was queued; the next reader quarantines + recomputes.
        corrupt = plan is not None and plan.tear("cache", key)
        return self._store.put(
            key, self._encode(key, spec, result), corrupt=corrupt
        )

    def legacy_keys(self) -> "list[str]":
        """Keys still held as legacy per-file entries (sorted)."""
        from repro.runtime.store import INDEX_NAME

        if not self.root.is_dir():
            return []
        return sorted(
            p.stem
            for p in self.root.glob("*.json")
            if p.name != INDEX_NAME
        )

    def keys(self) -> "list[str]":
        """Keys of every entry currently stored (sorted).

        Packed entries come straight from the index (no directory
        scan); legacy per-file entries not yet absorbed are unioned in
        so a partially migrated root never under-reports.
        """
        packed = self._store.keys()
        legacy = self.legacy_keys()
        if not legacy:
            return packed
        return sorted(set(packed) | set(legacy))

    def __len__(self) -> int:
        legacy = self.legacy_keys()
        if not legacy:
            return len(self._store)
        return len(self.keys())

    def flush(self) -> None:
        """Publish the packed index (cheap; bounds the next recovery scan)."""
        self._store.flush()

    def prune(self, live_keys) -> int:
        """Compact away entries not in ``live_keys``; returns how many went.

        Replaces the per-file era's delete loop: live records are
        copied forward into a fresh segment generation and dead
        segments are removed atomically.  Legacy per-file leftovers
        (dead entries, crashed writers' ``*.tmp.*`` residue) are swept
        as before.
        """
        live = set(live_keys)
        removed = 0
        for key in self.legacy_keys():
            if key not in live:
                self.path(key).unlink(missing_ok=True)
                removed += 1
        removed += self._store.compact(live)
        return removed + sweep_stale_tmp(self.root)
