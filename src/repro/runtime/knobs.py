"""The single sanctioned reader for ``$REPRO_RUNTIME_*`` knobs.

Every environment read in the runtime routes through :func:`read_knob`
so ambient process state has exactly one auditable entry point — the
``REP-ENV-READ`` lint rule (see ``docs/static-analysis.md``) enforces
that no other module touches ``os.environ``.  The module is
deliberately dependency-free: it is imported from deep inside the
``repro.runtime`` package (and lazily from ``repro.obs.trace``, which
sits *below* the runtime in the import graph), so it must never import
anything that could re-enter the package cycle.

Knob constants live here and are re-exported from their historical
homes (``executor.WORKERS_ENV`` etc.) so existing imports keep working.
"""

from __future__ import annotations

import os

__all__ = [
    "WORKERS_ENV",
    "FAULTS_ENV",
    "PAYLOADS_ENV",
    "CACHE_ENV",
    "CHECKPOINTS_ENV",
    "TRACE_ENV",
    "STORE_SEGMENT_BYTES_ENV",
    "STORE_SNAPSHOT_EVERY_ENV",
    "KNOWN_KNOBS",
    "read_knob",
    "knob_snapshot",
]

#: Worker-pool size used when no explicit ``n_workers`` is passed.
WORKERS_ENV = "REPRO_RUNTIME_WORKERS"
#: Fault-injection plan grammar (see ``runtime/faults.py``).
FAULTS_ENV = "REPRO_RUNTIME_FAULTS"
#: Directory the payload store spills interned payloads under.
PAYLOADS_ENV = "REPRO_RUNTIME_PAYLOADS"
#: Result-cache root override.
CACHE_ENV = "REPRO_RUNTIME_CACHE"
#: Checkpoint-store root override.
CHECKPOINTS_ENV = "REPRO_RUNTIME_CHECKPOINTS"
#: Trace output directory; setting it traces every engine run.
TRACE_ENV = "REPRO_RUNTIME_TRACE"
#: Packed-store segment roll threshold in bytes (``runtime/store.py``).
STORE_SEGMENT_BYTES_ENV = "REPRO_RUNTIME_STORE_SEGMENT_BYTES"
#: Packed-store index-snapshot cadence in puts (``runtime/store.py``).
STORE_SNAPSHOT_EVERY_ENV = "REPRO_RUNTIME_STORE_SNAPSHOT_EVERY"

#: Every runtime knob, for documentation and diagnostics.
KNOWN_KNOBS = (
    WORKERS_ENV,
    FAULTS_ENV,
    PAYLOADS_ENV,
    CACHE_ENV,
    CHECKPOINTS_ENV,
    TRACE_ENV,
    STORE_SEGMENT_BYTES_ENV,
    STORE_SNAPSHOT_EVERY_ENV,
)


def read_knob(name: str, default: "str | None" = None) -> "str | None":
    """Read one environment knob (the only sanctioned environ access)."""
    return os.environ.get(name, default)


def knob_snapshot() -> "dict[str, str]":
    """The currently-set runtime knobs (for health/diagnostic reports)."""
    out: dict[str, str] = {}
    for name in KNOWN_KNOBS:
        value = read_knob(name)
        if value is not None:
            out[name] = value
    return out
