"""Fidelity presets scaling experiment cost (DESIGN.md Sec. 7).

The paper's settings (10,000 samples per dataset, 40 training epochs)
are hours of laptop compute across all experiments; ``FAST`` keeps every
pipeline identical but shrinks sample counts so the benchmark suite
finishes in minutes.  EXPERIMENTS.md records which preset produced each
reported number.

Two regimes matter (see DESIGN.md Sec. 3.3 and the cross-environment
notes in EXPERIMENTS.md):

- **single-environment** (``FAST``/``PAPER``): the paper's own protocol —
  train and test splits come from the same collection campaign, whose
  samples are temporally correlated.  A small ``reset_interval`` is not
  needed; models reach BERs close to 802.11.
- **transfer** (``TRANSFER``): cross-environment evaluation needs the
  model to learn the channel-to-beamforming *map* rather than the
  campaign's channel manifold, which requires more independent channel
  realizations (small ``reset_interval``), more samples, and more
  epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Fidelity", "PAPER", "FAST", "TRANSFER", "SMOKE", "fidelity"]


@dataclass(frozen=True)
class Fidelity:
    """Knobs that trade reproduction fidelity for runtime."""

    name: str
    n_samples: int  # CSI samples per dataset
    n_sessions: int  # measurement sessions per dataset
    epochs: int  # training epochs
    ber_samples: int  # CSI samples used per BER measurement
    ofdm_symbols: int  # OFDM symbols per BER frame
    reset_interval: int = 40  # packets between channel re-randomization

    def __post_init__(self) -> None:
        for field_name in (
            "n_samples",
            "n_sessions",
            "epochs",
            "ber_samples",
            "reset_interval",
        ):
            if getattr(self, field_name) < 1:
                raise ConfigurationError(f"{field_name} must be >= 1")


#: The paper's settings (Sec. IV-D, V-B).
PAPER = Fidelity(
    name="paper",
    n_samples=10_000,
    n_sessions=20,
    epochs=40,
    ber_samples=400,
    ofdm_symbols=2,
    reset_interval=25,
)

#: Default for benchmarks: same pipelines, laptop-scale runtime.  Keeps
#: the paper's 40 training epochs (they dominate final BER) and shrinks
#: only the dataset and BER-measurement sizes.
FAST = Fidelity(
    name="fast",
    n_samples=600,
    n_sessions=6,
    epochs=40,
    ber_samples=60,
    ofdm_symbols=1,
    reset_interval=40,
)

#: Cross-environment experiments: high channel-realization diversity so
#: the trained map generalizes beyond its own collection campaign.
TRANSFER = Fidelity(
    name="transfer",
    n_samples=3000,
    n_sessions=8,
    epochs=80,
    ber_samples=60,
    ofdm_symbols=1,
    reset_interval=8,
)

#: Minimal preset for unit tests.
SMOKE = Fidelity(
    name="smoke",
    n_samples=96,
    n_sessions=2,
    epochs=4,
    ber_samples=12,
    ofdm_symbols=1,
    reset_interval=40,
)

_PRESETS = {p.name: p for p in (PAPER, FAST, TRANSFER, SMOKE)}


def fidelity(name: str) -> Fidelity:
    """Look up a preset by name (``paper``, ``fast``, ``transfer``, ``smoke``)."""
    try:
        return _PRESETS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown fidelity {name!r}; options: {sorted(_PRESETS)}"
        ) from None
