"""Channel aging: why MU-MIMO must sound every ~10 ms.

The paper adopts the guidance that "MU-MIMO channel sounding should be
performed at least once every 10 ms to account for user mobility" [7]
and designs SplitBeam's latency budget around it.  This module makes
that number derivable instead of quoted:

- under the Jakes model, CSI measured ``tau`` seconds ago correlates
  with the current channel as ``rho = J0(2*pi*f_d*tau)``;
- a zero-forcing precoder built from stale CSI leaks the de-correlated
  channel component as inter-user interference, collapsing the
  post-beamforming SINR to
  ``rho^2 * S / ((1 - rho^2) * S * (Ns - 1) + N)``;
- sounding more often restores SINR but burns airtime (the campaign
  model), so goodput over the sounding interval has an interior
  optimum.

:func:`optimal_sounding_interval` locates that optimum; at pedestrian
Doppler it lands in the paper's single-digit-millisecond regime, and a
*smaller* feedback report (SplitBeam) shifts it toward more frequent
sounding at higher goodput — the system-level version of the paper's
airtime argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import j0

from repro.errors import ConfigurationError
from repro.phy.mcs import data_rate_bps, select_mcs
from repro.phy.noise import snr_db_to_linear, snr_linear_to_db
from repro.sounding.campaign import SoundingCampaign

__all__ = [
    "temporal_correlation",
    "stale_sinr_db",
    "AgingGoodputModel",
    "optimal_sounding_interval",
]


def temporal_correlation(doppler_hz: float, delay_s: float) -> float:
    """Jakes-model correlation ``J0(2 pi f_d tau)`` between CSI snapshots."""
    if doppler_hz < 0 or delay_s < 0:
        raise ConfigurationError("doppler_hz and delay_s must be non-negative")
    return float(j0(2.0 * np.pi * doppler_hz * delay_s))


def stale_sinr_db(
    fresh_sinr_db: float, correlation: float, n_users: int = 2
) -> float:
    """Post-ZF SINR with beamforming built from aged CSI.

    The channel decomposes as ``h = rho * h_old + sqrt(1 - rho^2) * e``;
    ZF nulls the ``h_old`` component of the other users' streams but the
    innovation ``e`` leaks through, contributing
    ``(1 - rho^2) * S`` interference per interfering stream.
    """
    if not -1.0 <= correlation <= 1.0:
        raise ConfigurationError("correlation must be in [-1, 1]")
    if n_users < 1:
        raise ConfigurationError("n_users must be >= 1")
    signal = snr_db_to_linear(fresh_sinr_db)
    rho_sq = correlation**2
    interference = (1.0 - rho_sq) * signal * max(n_users - 1, 0)
    effective = rho_sq * signal / (interference + 1.0)
    return snr_linear_to_db(max(effective, 1e-12))


@dataclass(frozen=True)
class AgingGoodputModel:
    """Goodput as a function of the sounding interval.

    Combines three effects for an ``n_users`` MU-MIMO group:

    - sounding occupancy rises as the interval shrinks (campaign model);
    - the *average* CSI age inside an interval is half the interval, so
      longer intervals mean staler beamforming and lower SINR;
    - the MCS (and hence the data rate) follows the degraded SINR.
    """

    n_users: int
    bandwidth_mhz: int
    feedback_bits_per_user: int
    doppler_hz: float
    fresh_sinr_db: float = 25.0
    mcs_backoff_db: float = 3.0

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ConfigurationError("n_users must be >= 1")
        if self.doppler_hz < 0:
            raise ConfigurationError("doppler_hz must be non-negative")

    def occupancy(self, interval_s: float) -> float:
        campaign = SoundingCampaign(
            n_users=self.n_users,
            bandwidth_mhz=self.bandwidth_mhz,
            feedback_bits=self.feedback_bits_per_user,
            interval_s=interval_s,
        )
        return campaign.report().occupancy

    def effective_sinr_db(self, interval_s: float) -> float:
        rho = temporal_correlation(self.doppler_hz, interval_s / 2.0)
        return stale_sinr_db(self.fresh_sinr_db, rho, self.n_users)

    def goodput_bps(self, interval_s: float) -> float:
        """Aggregate goodput at one sounding interval."""
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        occupancy = self.occupancy(interval_s)
        if occupancy >= 1.0:
            return 0.0
        sinr_db = self.effective_sinr_db(interval_s)
        mcs = select_mcs(sinr_db, backoff_db=self.mcs_backoff_db)
        rate = data_rate_bps(mcs.index, self.bandwidth_mhz)
        return rate * (1.0 - occupancy) * self.n_users


def optimal_sounding_interval(
    model: AgingGoodputModel,
    candidates_s: "Sequence[float] | None" = None,
) -> tuple[float, float]:
    """Grid-search the goodput-maximizing sounding interval.

    Returns ``(interval_s, goodput_bps)``.  The default grid spans
    0.5 ms to 100 ms logarithmically (the paper's SU guidance endpoint).
    """
    if candidates_s is None:
        candidates_s = np.logspace(np.log10(0.5e-3), np.log10(100e-3), 40)
    if len(candidates_s) == 0:
        raise ConfigurationError("need at least one candidate interval")
    best_interval = float(candidates_s[0])
    best_goodput = -1.0
    for interval in candidates_s:
        goodput = model.goodput_bps(float(interval))
        if goodput > best_goodput:
            best_interval, best_goodput = float(interval), goodput
    return best_interval, best_goodput
