"""Durations of the frames in the 802.11 MU-MIMO sounding exchange.

The exchange (paper Fig. 3) is: NDP Announcement, SIFS, NDP, then for
each STA a Beamforming Report Poll (BRP) and its Beamforming Matrix
Report (BMR), all separated by SIFS.  Control frames are short,
fixed-payload frames at a robust rate; the BMR payload is whatever the
feedback scheme produces (Givens angles for 802.11, the quantized
bottleneck for SplitBeam), so its duration depends on the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.phy.rates import PHY_PREAMBLE_S, VHT_LTF_S, frame_airtime_s

__all__ = [
    "FrameDurations",
    "ndpa_duration_s",
    "ndp_duration_s",
    "brp_duration_s",
    "bmr_duration_s",
]

#: MAC header + FCS bits carried by every management/control frame.
MAC_OVERHEAD_BITS: int = (24 + 4) * 8

#: NDPA per-STA info field (AID + feedback type + Nc index), bits.
NDPA_PER_STA_BITS: int = 4 * 8

#: BRP frame body bits (category, action, dialog token, segment info).
BRP_BODY_BITS: int = 8 * 8


def ndpa_duration_s(n_users: int, bandwidth_mhz: int) -> float:
    """NDP Announcement duration: grows with the number of polled STAs."""
    if n_users < 1:
        raise ConfigurationError("n_users must be >= 1")
    payload = MAC_OVERHEAD_BITS + n_users * NDPA_PER_STA_BITS
    return frame_airtime_s(payload, bandwidth_mhz)


def ndp_duration_s(n_streams: int, bandwidth_mhz: int) -> float:
    """Null Data Packet: preamble only, one VHT-LTF per spatial stream."""
    if n_streams < 1:
        raise ConfigurationError("n_streams must be >= 1")
    return PHY_PREAMBLE_S + n_streams * VHT_LTF_S


def brp_duration_s(bandwidth_mhz: int) -> float:
    """Beamforming Report Poll duration (fixed short control frame)."""
    return frame_airtime_s(MAC_OVERHEAD_BITS + BRP_BODY_BITS, bandwidth_mhz)


def bmr_duration_s(feedback_bits: int, bandwidth_mhz: int) -> float:
    """Beamforming Matrix Report: MAC overhead plus the feedback payload."""
    if feedback_bits < 0:
        raise ConfigurationError("feedback_bits must be non-negative")
    return frame_airtime_s(MAC_OVERHEAD_BITS + feedback_bits, bandwidth_mhz)


@dataclass(frozen=True)
class FrameDurations:
    """Precomputed frame durations for one sounding configuration."""

    ndpa_s: float
    ndp_s: float
    brp_s: float
    bmr_s: float
    sifs_s: float
