"""Channel-sounding protocol simulation (Fig. 3) and delay accounting."""

from repro.sounding.frames import (
    FrameDurations,
    ndpa_duration_s,
    ndp_duration_s,
    brp_duration_s,
    bmr_duration_s,
)
from repro.sounding.protocol import SoundingEvent, SoundingSchedule, simulate_sounding
from repro.sounding.delay import EndToEndDelay, bm_reporting_delay
from repro.sounding.campaign import (
    feedback_overhead_rate_bps,
    intro_example_bits,
    CampaignReport,
    SoundingCampaign,
    max_supportable_users,
    MU_MIMO_SOUNDING_INTERVAL_S,
    SU_SOUNDING_INTERVAL_S,
)
from repro.sounding.aging import (
    temporal_correlation,
    stale_sinr_db,
    AgingGoodputModel,
    optimal_sounding_interval,
)

__all__ = [
    "FrameDurations",
    "ndpa_duration_s",
    "ndp_duration_s",
    "brp_duration_s",
    "bmr_duration_s",
    "SoundingEvent",
    "SoundingSchedule",
    "simulate_sounding",
    "EndToEndDelay",
    "bm_reporting_delay",
    "feedback_overhead_rate_bps",
    "intro_example_bits",
    "CampaignReport",
    "SoundingCampaign",
    "max_supportable_users",
    "MU_MIMO_SOUNDING_INTERVAL_S",
    "SU_SOUNDING_INTERVAL_S",
    "temporal_correlation",
    "stale_sinr_db",
    "AgingGoodputModel",
    "optimal_sounding_interval",
]
