"""Event-level simulation of the multi-user sounding exchange (Fig. 3).

``simulate_sounding`` walks the exchange deterministically — NDPA, SIFS,
NDP, then per STA: (BRP, SIFS, *wait for the STA's compute if it is not
ready*, BMR, SIFS) — and returns a timestamped event schedule.  The
interesting interaction it captures: a slow STA (large head-model
execution time) can stall the poll sequence, so the *channel-occupancy*
cost and the *end-to-end delay* differ between feedback schemes with
different compute/airtime splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.phy.rates import SIFS_S
from repro.sounding.frames import (
    bmr_duration_s,
    brp_duration_s,
    ndp_duration_s,
    ndpa_duration_s,
)

__all__ = ["SoundingEvent", "SoundingSchedule", "simulate_sounding"]


@dataclass(frozen=True)
class SoundingEvent:
    """One frame (or wait) in the exchange."""

    kind: str  # "NDPA" | "NDP" | "BRP" | "WAIT" | "BMR" | "SIFS"
    start_s: float
    duration_s: float
    station: int | None = None  # STA index for BRP/WAIT/BMR

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class SoundingSchedule:
    """Full timeline of one sounding round."""

    events: list[SoundingEvent] = field(default_factory=list)

    @property
    def total_duration_s(self) -> float:
        return self.events[-1].end_s if self.events else 0.0

    @property
    def airtime_s(self) -> float:
        """Time the medium is actually occupied by frames."""
        return sum(
            e.duration_s for e in self.events if e.kind not in ("WAIT", "SIFS")
        )

    @property
    def feedback_airtime_s(self) -> float:
        """Airtime consumed by the BMR feedback frames only."""
        return sum(e.duration_s for e in self.events if e.kind == "BMR")

    def events_of(self, kind: str) -> list[SoundingEvent]:
        return [e for e in self.events if e.kind == kind]


def simulate_sounding(
    n_users: int,
    bandwidth_mhz: int,
    feedback_bits: Sequence[int],
    compute_times_s: Sequence[float],
    n_streams: int | None = None,
) -> SoundingSchedule:
    """Simulate one sounding round.

    Parameters
    ----------
    feedback_bits:
        Per-STA BMR payload size (scheme-dependent).
    compute_times_s:
        Per-STA time to produce the feedback after the NDP (SVD+GR time
        for 802.11, head-model time for SplitBeam).  If a STA is still
        computing when polled, the AP waits (modelled as a WAIT event).
    """
    if n_users < 1:
        raise ConfigurationError("n_users must be >= 1")
    if len(feedback_bits) != n_users or len(compute_times_s) != n_users:
        raise ConfigurationError(
            "feedback_bits and compute_times_s must have one entry per user"
        )
    streams = n_users if n_streams is None else n_streams

    schedule = SoundingSchedule()
    clock = 0.0

    def push(kind: str, duration: float, station: int | None = None) -> None:
        nonlocal clock
        schedule.events.append(
            SoundingEvent(
                kind=kind, start_s=clock, duration_s=duration, station=station
            )
        )
        clock += duration

    push("NDPA", ndpa_duration_s(n_users, bandwidth_mhz))
    push("SIFS", SIFS_S)
    push("NDP", ndp_duration_s(streams, bandwidth_mhz))
    ndp_end = clock  # STAs start computing once the NDP ends

    for station in range(n_users):
        push("SIFS", SIFS_S)
        push("BRP", brp_duration_s(bandwidth_mhz), station)
        push("SIFS", SIFS_S)
        ready_at = ndp_end + compute_times_s[station]
        if ready_at > clock:
            push("WAIT", ready_at - clock, station)
        push("BMR", bmr_duration_s(feedback_bits[station], bandwidth_mhz), station)
    return schedule
