"""Periodic sounding campaigns: airtime-overhead rate and medium occupancy.

The paper's opening argument is a *rate*, not a one-shot cost: "if BFs
are sent back every 10 ms ... the airtime overhead is 435,456 / 0.01 ≃
43.55 Mbit/s" for an 8x8 network at 160 MHz (Sec. I).  This module turns
the per-round sounding schedule into steady-state numbers:

- :func:`feedback_overhead_rate_bps` — the intro's raw bits/second
  figure for any feedback scheme;
- :func:`intro_example_bits` — the exact 435,456-bit worked example;
- :class:`SoundingCampaign` — repeats the Fig. 3 exchange every
  ``interval_s`` and reports what fraction of the medium the sounding
  consumes, the goodput left for data, and the maximum number of
  sounding-capable STAs the interval can sustain.

The campaign model exposes the claim SplitBeam's compression actually
buys: shorter BMR frames shrink the occupied fraction, which both frees
airtime for data and lets more users fit inside the 10 ms MU-MIMO
sounding deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.sounding.protocol import SoundingSchedule, simulate_sounding

__all__ = [
    "feedback_overhead_rate_bps",
    "intro_example_bits",
    "CampaignReport",
    "SoundingCampaign",
    "combine_reports",
    "max_supportable_users",
]

#: The intro's suggested MU-MIMO sounding interval (Sec. I / [7]).
MU_MIMO_SOUNDING_INTERVAL_S: float = 10e-3

#: SU/static sounding interval quoted by the paper's latency analysis.
SU_SOUNDING_INTERVAL_S: float = 100e-3


def feedback_overhead_rate_bps(feedback_bits: int, interval_s: float) -> float:
    """Steady-state feedback airtime overhead in bits/second.

    The intro's calculation: one BF of ``feedback_bits`` every
    ``interval_s`` costs ``feedback_bits / interval_s`` bit/s of the
    channel's capacity.
    """
    if feedback_bits < 0:
        raise ConfigurationError("feedback_bits must be non-negative")
    if interval_s <= 0:
        raise ConfigurationError("interval_s must be positive")
    return feedback_bits / interval_s


def intro_example_bits(
    n_subcarriers: int = 486,
    n_angles: int = 56,
    bits_per_angle: int = 16,
) -> int:
    """The paper's 8x8 @ 160 MHz worked example (Sec. I).

    486 subcarriers x 56 angles x 16 bits = 435,456 bits ≃ 54.43 kB;
    at a 10 ms reporting period that is ≃ 43.55 Mbit/s of overhead.
    """
    if min(n_subcarriers, n_angles, bits_per_angle) < 1:
        raise ConfigurationError("example factors must be >= 1")
    return n_subcarriers * n_angles * bits_per_angle


@dataclass(frozen=True)
class CampaignReport:
    """Steady-state cost of sounding every ``interval_s``."""

    interval_s: float
    round_duration_s: float  # one full Fig. 3 exchange
    round_airtime_s: float  # medium-occupied part of the exchange
    feedback_airtime_s: float  # BMR frames only
    feedback_bits_total: int

    @property
    def occupancy_ratio(self) -> float:
        """Unclamped airtime-to-interval ratio of the sounding exchange.

        Exceeds 1.0 when one round's airtime alone overflows the
        interval — the honest "how overloaded is this schedule" number
        that :attr:`occupancy` (a medium *fraction*, capped at 1.0)
        deliberately hides.  Downstream viability checks should look at
        this (or :attr:`feasible`), never at the clamped fraction.
        """
        return self.round_airtime_s / self.interval_s

    @property
    def occupancy(self) -> float:
        """Fraction of all airtime consumed by the sounding exchange."""
        return min(self.occupancy_ratio, 1.0)

    @property
    def feedback_occupancy(self) -> float:
        """Fraction of airtime consumed by BMR feedback frames alone."""
        return min(self.feedback_airtime_s / self.interval_s, 1.0)

    @property
    def overhead_rate_bps(self) -> float:
        """The intro-style bits/second feedback overhead figure."""
        return self.feedback_bits_total / self.interval_s

    @property
    def data_fraction(self) -> float:
        """Airtime fraction left over for actual data transmission."""
        return max(1.0 - self.occupancy, 0.0)

    def goodput_bps(self, data_rate_bps: float) -> float:
        """Residual application throughput at a given PHY data rate.

        An infeasible round (one sounding exchange does not fit inside
        the interval) yields 0.0: the schedule never reaches steady
        state, so reporting ``rate * data_fraction`` would describe a
        network that cannot exist.  Check :attr:`feasible` /
        :attr:`occupancy_ratio` for *why* the goodput vanished.
        """
        if data_rate_bps < 0:
            raise ConfigurationError("data_rate_bps must be non-negative")
        if not self.feasible:
            return 0.0
        return data_rate_bps * self.data_fraction

    @property
    def feasible(self) -> bool:
        """Does one sounding round fit inside the interval at all?"""
        return self.round_duration_s <= self.interval_s


class SoundingCampaign:
    """Periodic multi-user sounding with a fixed feedback scheme.

    Parameters
    ----------
    n_users:
        STAs polled each round.
    bandwidth_mhz:
        Channel bandwidth (sets frame durations).
    feedback_bits:
        Per-STA BMR payload (scalar broadcast, or one per STA).
    compute_times_s:
        Per-STA feedback computation time (scalar broadcast).
    interval_s:
        Sounding period; 10 ms is the MU-MIMO guidance the paper cites.
    """

    def __init__(
        self,
        n_users: int,
        bandwidth_mhz: int,
        feedback_bits: "Sequence[int] | int",
        compute_times_s: "Sequence[float] | float" = 0.0,
        interval_s: float = MU_MIMO_SOUNDING_INTERVAL_S,
        n_streams: int | None = None,
    ) -> None:
        if n_users < 1:
            raise ConfigurationError("n_users must be >= 1")
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if isinstance(feedback_bits, int):
            feedback_bits = [feedback_bits] * n_users
        if isinstance(compute_times_s, (int, float)):
            compute_times_s = [float(compute_times_s)] * n_users
        if len(feedback_bits) != n_users or len(compute_times_s) != n_users:
            raise ConfigurationError(
                "feedback_bits and compute_times_s must have one entry per user"
            )
        self.n_users = int(n_users)
        self.bandwidth_mhz = int(bandwidth_mhz)
        self.feedback_bits = [int(b) for b in feedback_bits]
        self.compute_times_s = [float(t) for t in compute_times_s]
        self.interval_s = float(interval_s)
        self.n_streams = n_streams

    def round_schedule(self) -> SoundingSchedule:
        """The event timeline of one sounding round."""
        return simulate_sounding(
            n_users=self.n_users,
            bandwidth_mhz=self.bandwidth_mhz,
            feedback_bits=self.feedback_bits,
            compute_times_s=self.compute_times_s,
            n_streams=self.n_streams,
        )

    def report(self) -> CampaignReport:
        """Steady-state occupancy/overhead summary."""
        schedule = self.round_schedule()
        return CampaignReport(
            interval_s=self.interval_s,
            round_duration_s=schedule.total_duration_s,
            round_airtime_s=schedule.airtime_s,
            feedback_airtime_s=schedule.feedback_airtime_s,
            feedback_bits_total=sum(self.feedback_bits),
        )


def combine_reports(reports: "Sequence[CampaignReport]") -> CampaignReport:
    """One steady-state report for several co-scheduled sounding groups.

    A heterogeneous network (STAs on different bandwidths, so different
    frame durations) sounds as one group per bandwidth, back to back on
    the shared medium within the same interval.  Durations, airtimes,
    and feedback bits therefore add; the interval must match across
    groups.
    """
    if not reports:
        raise ConfigurationError("need at least one report to combine")
    interval_s = reports[0].interval_s
    if any(r.interval_s != interval_s for r in reports):
        raise ConfigurationError(
            "combined groups must share one sounding interval"
        )
    return CampaignReport(
        interval_s=interval_s,
        round_duration_s=sum(r.round_duration_s for r in reports),
        round_airtime_s=sum(r.round_airtime_s for r in reports),
        feedback_airtime_s=sum(r.feedback_airtime_s for r in reports),
        feedback_bits_total=sum(r.feedback_bits_total for r in reports),
    )


def max_supportable_users(
    bandwidth_mhz: int,
    feedback_bits_per_user: int,
    compute_time_s: float = 0.0,
    interval_s: float = MU_MIMO_SOUNDING_INTERVAL_S,
    user_limit: int = 64,
) -> int:
    """Largest user count whose sounding round fits inside the interval.

    Every extra user appends a (SIFS, BRP, SIFS, BMR) block to the
    round, so the duration grows monotonically with the user count and
    feasibility is a monotone predicate: feasible at ``n`` implies
    feasible at every count below ``n``.  That licenses a
    doubling-then-bisection search — O(log limit) simulated rounds
    instead of the O(limit) linear walk (and O(limit^2) frame events,
    since each probe simulates all of its users).  Returns 0 when even
    a single user cannot be sounded in time.
    """
    if user_limit < 1:
        raise ConfigurationError("user_limit must be >= 1")

    def fits(n_users: int) -> bool:
        campaign = SoundingCampaign(
            n_users=n_users,
            bandwidth_mhz=bandwidth_mhz,
            feedback_bits=feedback_bits_per_user,
            compute_times_s=compute_time_s,
            interval_s=interval_s,
        )
        return campaign.report().feasible

    if not fits(1):
        return 0
    # Doubling phase: bracket the boundary with [low feasible, high
    # infeasible) probes, stopping early when the limit itself fits.
    low = 1
    high = 2
    while high <= user_limit and fits(high):
        low, high = high, high * 2
    if high > user_limit and low == user_limit:
        return user_limit
    high = min(high, user_limit + 1)
    # Bisection: invariant low feasible, high infeasible (or just past
    # the limit, which the clamp above makes equivalent).
    while high - low > 1:
        mid = (low + high) // 2
        if fits(mid):
            low = mid
        else:
            high = mid
    return low
