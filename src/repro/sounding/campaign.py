"""Periodic sounding campaigns: airtime-overhead rate and medium occupancy.

The paper's opening argument is a *rate*, not a one-shot cost: "if BFs
are sent back every 10 ms ... the airtime overhead is 435,456 / 0.01 ≃
43.55 Mbit/s" for an 8x8 network at 160 MHz (Sec. I).  This module turns
the per-round sounding schedule into steady-state numbers:

- :func:`feedback_overhead_rate_bps` — the intro's raw bits/second
  figure for any feedback scheme;
- :func:`intro_example_bits` — the exact 435,456-bit worked example;
- :class:`SoundingCampaign` — repeats the Fig. 3 exchange every
  ``interval_s`` and reports what fraction of the medium the sounding
  consumes, the goodput left for data, and the maximum number of
  sounding-capable STAs the interval can sustain.

The campaign model exposes the claim SplitBeam's compression actually
buys: shorter BMR frames shrink the occupied fraction, which both frees
airtime for data and lets more users fit inside the 10 ms MU-MIMO
sounding deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.sounding.protocol import SoundingSchedule, simulate_sounding

__all__ = [
    "feedback_overhead_rate_bps",
    "intro_example_bits",
    "CampaignReport",
    "SoundingCampaign",
    "max_supportable_users",
]

#: The intro's suggested MU-MIMO sounding interval (Sec. I / [7]).
MU_MIMO_SOUNDING_INTERVAL_S: float = 10e-3

#: SU/static sounding interval quoted by the paper's latency analysis.
SU_SOUNDING_INTERVAL_S: float = 100e-3


def feedback_overhead_rate_bps(feedback_bits: int, interval_s: float) -> float:
    """Steady-state feedback airtime overhead in bits/second.

    The intro's calculation: one BF of ``feedback_bits`` every
    ``interval_s`` costs ``feedback_bits / interval_s`` bit/s of the
    channel's capacity.
    """
    if feedback_bits < 0:
        raise ConfigurationError("feedback_bits must be non-negative")
    if interval_s <= 0:
        raise ConfigurationError("interval_s must be positive")
    return feedback_bits / interval_s


def intro_example_bits(
    n_subcarriers: int = 486,
    n_angles: int = 56,
    bits_per_angle: int = 16,
) -> int:
    """The paper's 8x8 @ 160 MHz worked example (Sec. I).

    486 subcarriers x 56 angles x 16 bits = 435,456 bits ≃ 54.43 kB;
    at a 10 ms reporting period that is ≃ 43.55 Mbit/s of overhead.
    """
    if min(n_subcarriers, n_angles, bits_per_angle) < 1:
        raise ConfigurationError("example factors must be >= 1")
    return n_subcarriers * n_angles * bits_per_angle


@dataclass(frozen=True)
class CampaignReport:
    """Steady-state cost of sounding every ``interval_s``."""

    interval_s: float
    round_duration_s: float  # one full Fig. 3 exchange
    round_airtime_s: float  # medium-occupied part of the exchange
    feedback_airtime_s: float  # BMR frames only
    feedback_bits_total: int

    @property
    def occupancy(self) -> float:
        """Fraction of all airtime consumed by the sounding exchange."""
        return min(self.round_airtime_s / self.interval_s, 1.0)

    @property
    def feedback_occupancy(self) -> float:
        """Fraction of airtime consumed by BMR feedback frames alone."""
        return min(self.feedback_airtime_s / self.interval_s, 1.0)

    @property
    def overhead_rate_bps(self) -> float:
        """The intro-style bits/second feedback overhead figure."""
        return self.feedback_bits_total / self.interval_s

    @property
    def data_fraction(self) -> float:
        """Airtime fraction left over for actual data transmission."""
        return max(1.0 - self.occupancy, 0.0)

    def goodput_bps(self, data_rate_bps: float) -> float:
        """Residual application throughput at a given PHY data rate."""
        if data_rate_bps < 0:
            raise ConfigurationError("data_rate_bps must be non-negative")
        return data_rate_bps * self.data_fraction

    @property
    def feasible(self) -> bool:
        """Does one sounding round fit inside the interval at all?"""
        return self.round_duration_s <= self.interval_s


class SoundingCampaign:
    """Periodic multi-user sounding with a fixed feedback scheme.

    Parameters
    ----------
    n_users:
        STAs polled each round.
    bandwidth_mhz:
        Channel bandwidth (sets frame durations).
    feedback_bits:
        Per-STA BMR payload (scalar broadcast, or one per STA).
    compute_times_s:
        Per-STA feedback computation time (scalar broadcast).
    interval_s:
        Sounding period; 10 ms is the MU-MIMO guidance the paper cites.
    """

    def __init__(
        self,
        n_users: int,
        bandwidth_mhz: int,
        feedback_bits: "Sequence[int] | int",
        compute_times_s: "Sequence[float] | float" = 0.0,
        interval_s: float = MU_MIMO_SOUNDING_INTERVAL_S,
        n_streams: int | None = None,
    ) -> None:
        if n_users < 1:
            raise ConfigurationError("n_users must be >= 1")
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if isinstance(feedback_bits, int):
            feedback_bits = [feedback_bits] * n_users
        if isinstance(compute_times_s, (int, float)):
            compute_times_s = [float(compute_times_s)] * n_users
        if len(feedback_bits) != n_users or len(compute_times_s) != n_users:
            raise ConfigurationError(
                "feedback_bits and compute_times_s must have one entry per user"
            )
        self.n_users = int(n_users)
        self.bandwidth_mhz = int(bandwidth_mhz)
        self.feedback_bits = [int(b) for b in feedback_bits]
        self.compute_times_s = [float(t) for t in compute_times_s]
        self.interval_s = float(interval_s)
        self.n_streams = n_streams

    def round_schedule(self) -> SoundingSchedule:
        """The event timeline of one sounding round."""
        return simulate_sounding(
            n_users=self.n_users,
            bandwidth_mhz=self.bandwidth_mhz,
            feedback_bits=self.feedback_bits,
            compute_times_s=self.compute_times_s,
            n_streams=self.n_streams,
        )

    def report(self) -> CampaignReport:
        """Steady-state occupancy/overhead summary."""
        schedule = self.round_schedule()
        return CampaignReport(
            interval_s=self.interval_s,
            round_duration_s=schedule.total_duration_s,
            round_airtime_s=schedule.airtime_s,
            feedback_airtime_s=schedule.feedback_airtime_s,
            feedback_bits_total=sum(self.feedback_bits),
        )


def max_supportable_users(
    bandwidth_mhz: int,
    feedback_bits_per_user: int,
    compute_time_s: float = 0.0,
    interval_s: float = MU_MIMO_SOUNDING_INTERVAL_S,
    user_limit: int = 64,
) -> int:
    """Largest user count whose sounding round fits inside the interval.

    Rounds grow linearly with users (each adds a BRP/BMR pair), so this
    walks up until the round no longer fits.  Returns 0 when even a
    single user cannot be sounded in time.
    """
    if user_limit < 1:
        raise ConfigurationError("user_limit must be >= 1")
    supported = 0
    for n_users in range(1, user_limit + 1):
        campaign = SoundingCampaign(
            n_users=n_users,
            bandwidth_mhz=bandwidth_mhz,
            feedback_bits=feedback_bits_per_user,
            compute_times_s=compute_time_s,
            interval_s=interval_s,
        )
        if not campaign.report().feasible:
            break
        supported = n_users
    return supported
