"""End-to-end beamforming-matrix reporting delay (Eq. (7d), Table III).

Combines the pieces the paper's latency analysis counts: the head-model
execution at the slowest STA, the feedback airtime, and the tail-model
reconstruction at the AP:

``delay = max_i(T^H_i + T^A_i) + T^T``

``bm_reporting_delay`` wires the protocol simulator into this
computation so the airtime term includes the real polling overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.sounding.protocol import SoundingSchedule, simulate_sounding

__all__ = ["EndToEndDelay", "bm_reporting_delay"]


@dataclass(frozen=True)
class EndToEndDelay:
    """Breakdown of one scheme's BM reporting delay."""

    head_s: float  # slowest STA compute
    airtime_s: float  # full sounding exchange duration
    tail_s: float  # AP-side reconstruction (all users)
    schedule: SoundingSchedule

    @property
    def total_s(self) -> float:
        return self.airtime_s + self.tail_s

    def meets(self, budget_s: float) -> bool:
        """Eq. (7d): is the delay strictly below the budget?"""
        return self.total_s < budget_s


def bm_reporting_delay(
    n_users: int,
    bandwidth_mhz: int,
    feedback_bits: Sequence[int] | int,
    head_time_s: Sequence[float] | float,
    tail_time_s: float,
    n_streams: int | None = None,
) -> EndToEndDelay:
    """End-to-end delay of one sounding round for one feedback scheme.

    Scalars for ``feedback_bits``/``head_time_s`` are broadcast to all
    users.  ``tail_time_s`` is the total AP-side reconstruction time for
    all users (the AP reconstructs after the last report arrives).
    """
    if n_users < 1:
        raise ConfigurationError("n_users must be >= 1")
    if isinstance(feedback_bits, int):
        feedback_bits = [feedback_bits] * n_users
    if isinstance(head_time_s, (int, float)):
        head_time_s = [float(head_time_s)] * n_users
    if tail_time_s < 0:
        raise ConfigurationError("tail_time_s must be non-negative")

    schedule = simulate_sounding(
        n_users=n_users,
        bandwidth_mhz=bandwidth_mhz,
        feedback_bits=list(feedback_bits),
        compute_times_s=list(head_time_s),
        n_streams=n_streams,
    )
    return EndToEndDelay(
        head_s=max(head_time_s),
        airtime_s=schedule.total_duration_s,
        tail_s=float(tail_time_s),
        schedule=schedule,
    )
